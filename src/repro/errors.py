"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError`` etc.) from modelled
failures (guard failures, consensus denials, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AltBlockFailure(ReproError):
    """Raised when every alternative in an alternative block fails.

    This corresponds to the ``FAIL`` arm of the ``ALTBEGIN`` construct in
    section 2 of the paper: the conditional probability of failure is 1 only
    when all alternatives have failed.
    """


class GuardFailure(ReproError):
    """Raised inside an alternative whose guard condition does not hold."""


class SynchronizationError(ReproError):
    """Raised when the at-most-once synchronization protocol is violated
    or when a child attempts to synchronize after a sibling has won
    ("too late" in the paper's terminology)."""


class TooLate(SynchronizationError):
    """The synchronization point was already consumed by a sibling."""


class AltTimeout(ReproError):
    """``alt_wait(TIMEOUT)`` expired before any alternative synchronized.

    Executors attach ``partial_reports`` -- a list of per-arm snapshots
    ``{"index", "name", "state", "elapsed"}`` describing what the race was
    doing when the deadline expired -- so callers can log the block's
    final state instead of a bare timeout.
    """

    partial_reports: tuple = ()


class Eliminated(ReproError):
    """Raised inside an alternative's body at a cooperative cancellation
    point after the sibling termination instruction (section 3.2.1) has
    been delivered: a sibling won the rendezvous, so this loser should
    stop burning CPU instead of running to completion."""


class FaultInjected(ReproError):
    """An armed :class:`~repro.resilience.FaultInjector` rule fired at a
    named fault point -- a deterministic stand-in for an arm crashing,
    wedging, or corrupting its result in production."""


class PageFault(ReproError):
    """An access touched an address outside the mapped address space."""


class PageApplyError(ReproError):
    """Replaying shipped page images into an address space failed (a
    malformed image, or an injected ``page-apply-fail`` fault); the
    target space is left untouched."""


class ProcessStateError(ReproError):
    """An operation was attempted on a process in an incompatible state
    (e.g. synchronizing a process that was already eliminated)."""


class PredicateConflict(ReproError):
    """A world's predicate set became self-contradictory (some process is
    required both to complete and to not complete)."""


class SideEffectViolation(ReproError):
    """A process with unresolved predicates attempted a non-idempotent
    (source) operation, which section 3.4.2 of the paper forbids."""


class ConsensusUnavailable(ReproError):
    """A majority of consensus nodes could not be reached."""


class NetworkError(ReproError):
    """A simulated network operation failed (unknown node, partition)."""


class ChannelError(ReproError):
    """An at-least-once channel gave up: a message exhausted its
    retransmission budget without being acknowledged."""


class CheckpointError(ReproError):
    """Checkpoint or restart of a simulated process failed."""


class PrologError(ReproError):
    """Base class for Prolog front-end errors."""


class PrologSyntaxError(PrologError):
    """The Prolog reader encountered invalid syntax."""


class PrologTypeError(PrologError):
    """A Prolog builtin was applied to arguments of the wrong type
    (e.g. arithmetic on an unbound variable)."""
