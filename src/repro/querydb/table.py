"""Tables: named, typed, append-only row stores."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Sequence, Tuple

from repro.errors import ReproError


class SchemaError(ReproError):
    """A row or query did not match the table's schema."""


Row = Tuple[Any, ...]


class Table:
    """An append-only table with named columns.

    Rows are tuples in column order; :meth:`insert` also accepts dicts.
    """

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if not columns:
            raise SchemaError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError("column names must be unique")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self._positions: Dict[str, int] = {
            column: index for index, column in enumerate(self.columns)
        }
        self.rows: List[Row] = []

    # ------------------------------------------------------------------

    def column_position(self, column: str) -> int:
        """Index of ``column`` within a row tuple."""
        try:
            return self._positions[column]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def insert(self, row) -> None:
        """Append one row (tuple in column order, or a dict)."""
        if isinstance(row, dict):
            missing = set(self.columns) - set(row)
            extra = set(row) - set(self.columns)
            if missing or extra:
                raise SchemaError(
                    f"row keys mismatch: missing={sorted(missing)} "
                    f"extra={sorted(extra)}"
                )
            row = tuple(row[column] for column in self.columns)
        else:
            row = tuple(row)
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"row of {len(row)} values for {len(self.columns)} columns"
                )
        self.rows.append(row)

    def insert_many(self, rows) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def scan(self) -> Iterator[Row]:
        """Iterate every row in insertion order."""
        return iter(self.rows)

    def value(self, row: Row, column: str) -> Any:
        """A named column of a row."""
        return row[self.column_position(column)]

    def as_dicts(self, rows) -> List[Dict[str, Any]]:
        """Render rows as dicts for display."""
        return [dict(zip(self.columns, row)) for row in rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, columns={list(self.columns)}, rows={len(self)})"
