"""Hash and sorted indexes over one column."""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Tuple

from repro.querydb.table import Row, Table


class HashIndex:
    """Exact-match index: column value -> row list."""

    def __init__(self, table: Table, column: str) -> None:
        self.table = table
        self.column = column
        self._position = table.column_position(column)
        self._buckets: Dict[Any, List[Row]] = {}
        for row in table.rows:
            self._buckets.setdefault(row[self._position], []).append(row)
        self._built_rows = len(table.rows)

    def refresh(self) -> None:
        """Index rows inserted since the last build."""
        for row in self.table.rows[self._built_rows:]:
            self._buckets.setdefault(row[self._position], []).append(row)
        self._built_rows = len(self.table.rows)

    def lookup(self, value: Any) -> List[Row]:
        """All rows whose column equals ``value``."""
        return list(self._buckets.get(value, ()))

    @property
    def distinct_keys(self) -> int:
        """Number of distinct indexed values."""
        return len(self._buckets)

    def __repr__(self) -> str:
        return f"HashIndex({self.table.name}.{self.column})"


class SortedIndex:
    """Ordered index supporting range scans."""

    def __init__(self, table: Table, column: str) -> None:
        self.table = table
        self.column = column
        position = table.column_position(column)
        decorated: List[Tuple[Any, int]] = sorted(
            (row[position], index) for index, row in enumerate(table.rows)
        )
        self._keys = [key for key, _ in decorated]
        self._row_ids = [row_id for _, row_id in decorated]

    def range(self, low: Any = None, high: Any = None,
              include_low: bool = True, include_high: bool = True) -> List[Row]:
        """Rows with column value in the (possibly open) interval."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif include_high:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        rows = self.table.rows
        return [rows[self._row_ids[i]] for i in range(start, max(start, stop))]

    def equal(self, value: Any) -> List[Row]:
        """Rows with column value exactly ``value``."""
        return self.range(low=value, high=value)

    def __repr__(self) -> str:
        return f"SortedIndex({self.table.name}.{self.column})"
