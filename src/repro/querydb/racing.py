"""The planner that refuses to choose: race every applicable plan.

A conventional optimizer estimates costs and commits to one plan --
section 4.2's 'synthetic computation' built from a partition of the input
domain, with all its hazards ('it's rarely as simple to delimit
performance boundaries').  The racing engine instead runs every
applicable access path as a copy-on-write alternative: each plan's
*measured* work becomes its simulated duration, the fastest plan's rows
are committed, and the others are eliminated.

A Scheme B baseline (commit to one plan at random) and a static baseline
(always the first plan) are provided for the comparisons the paper's
analysis needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.alternative import AltContext, Alternative
from repro.core.concurrent import ConcurrentExecutor
from repro.core.result import AltResult
from repro.errors import ReproError
from repro.querydb.index import HashIndex, SortedIndex
from repro.querydb.plans import CostMeter, Plan, candidate_plans
from repro.querydb.query import Query
from repro.querydb.table import Row, Table
from repro.sim.costs import CostModel, MODERN_COMMODITY


@dataclass
class QueryRaceResult:
    """Rows plus the race that produced them."""

    rows: List[Tuple]
    winning_plan: str
    alt_result: AltResult

    @property
    def elapsed(self) -> float:
        """Simulated time to the answer, overheads included."""
        return self.alt_result.elapsed


class RacingQueryEngine:
    """Execute queries by racing all applicable access paths."""

    def __init__(
        self,
        table: Table,
        cost_model: CostModel = MODERN_COMMODITY,
        row_cost: float = 1e-5,
        probe_cost: float = 2e-5,
        seed: int = 0,
    ) -> None:
        self.table = table
        self.cost_model = cost_model
        self.row_cost = row_cost
        self.probe_cost = probe_cost
        self.seed = seed
        self.hash_indexes: List[HashIndex] = []
        self.sorted_indexes: List[SortedIndex] = []

    # ------------------------------------------------------------------
    # index management

    def create_hash_index(self, column: str) -> HashIndex:
        """Build and register a hash index."""
        index = HashIndex(self.table, column)
        self.hash_indexes.append(index)
        return index

    def create_sorted_index(self, column: str) -> SortedIndex:
        """Build and register a sorted index."""
        index = SortedIndex(self.table, column)
        self.sorted_indexes.append(index)
        return index

    def plans_for(self, query: Query) -> List[Plan]:
        """Every applicable access path for ``query``."""
        return candidate_plans(
            self.table, query, self.hash_indexes, self.sorted_indexes
        )

    # ------------------------------------------------------------------
    # execution strategies

    def _meter(self) -> CostMeter:
        return CostMeter(row_cost=self.row_cost, probe_cost=self.probe_cost)

    def _plan_alternative(self, plan: Plan, query: Query) -> Alternative:
        def body(context: AltContext):
            meter = self._meter()
            rows = plan.execute(query, meter)
            context.charge(meter.seconds)
            context.put("rows_examined", meter.rows_examined)
            return query.project(self.table, rows)

        return Alternative(name=plan.name, body=body)

    def plan_alternatives(self, query: Query) -> List[Alternative]:
        """The racing arms for ``query``: one per applicable plan.

        What :meth:`execute_racing` builds internally, exposed so a
        front end (the :class:`~repro.server.RaceServer`) can submit the
        same race as an alternative block of its own.
        """
        return [
            self._plan_alternative(plan, query)
            for plan in self.plans_for(query)
        ]

    def execute_racing(self, query: Query) -> QueryRaceResult:
        """Race every applicable plan; fastest correct answer wins."""
        plans = self.plans_for(query)
        executor = ConcurrentExecutor(cost_model=self.cost_model, seed=self.seed)
        alt_result = executor.run(
            [self._plan_alternative(plan, query) for plan in plans]
        )
        return QueryRaceResult(
            rows=alt_result.value,
            winning_plan=alt_result.winner.name,
            alt_result=alt_result,
        )

    def execute_static(self, query: Query, plan: Optional[Plan] = None):
        """Run one chosen plan (a conventional optimizer's commitment).

        Returns ``(rows, simulated_seconds)``.
        """
        chosen = plan if plan is not None else self.plans_for(query)[0]
        if not chosen.applicable(query):
            raise ReproError(f"{chosen.name} cannot serve {query}")
        meter = self._meter()
        rows = chosen.execute(query, meter)
        return query.project(self.table, rows), meter.seconds

    def execute_random(self, query: Query, rng: Optional[random.Random] = None):
        """Scheme B: commit to a uniformly random applicable plan."""
        rng = rng if rng is not None else random.Random(self.seed)
        plans = self.plans_for(query)
        return self.execute_static(query, rng.choice(plans))
