"""A miniature relational engine with racing access paths.

The paper's abstract names the motivating workload: 'for problems where
the required execution time is unpredictable, such as database queries,
this method can show substantial execution time performance increases.'
This package is that workload, built out rather than assumed:

- :mod:`repro.querydb.table` -- tables, rows, and typed columns;
- :mod:`repro.querydb.index` -- hash and sorted indexes;
- :mod:`repro.querydb.query` -- conjunctive selection queries;
- :mod:`repro.querydb.plans` -- access-path operators (full scan, hash
  probe, sorted-range scan) with per-operation cost accounting;
- :mod:`repro.querydb.racing` -- the planner that *refuses to choose*:
  every applicable access path races as an alternative, and the fastest
  one to produce the (guard-checked) result set wins.
"""

from repro.querydb.index import HashIndex, SortedIndex
from repro.querydb.plans import CostMeter, FullScan, HashProbe, Plan, RangeScan
from repro.querydb.query import Condition, Query
from repro.querydb.racing import QueryRaceResult, RacingQueryEngine
from repro.querydb.table import Table

__all__ = [
    "Condition",
    "CostMeter",
    "FullScan",
    "HashIndex",
    "HashProbe",
    "Plan",
    "Query",
    "QueryRaceResult",
    "RacingQueryEngine",
    "RangeScan",
    "SortedIndex",
    "Table",
]
