"""Conjunctive selection queries."""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.errors import ReproError
from repro.querydb.table import Row, Table

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Condition:
    """One comparison ``column OP value``."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ReproError(f"unsupported operator {self.op!r}")

    def matches(self, table: Table, row: Row) -> bool:
        """Evaluate the condition on a row."""
        return _OPS[self.op](table.value(row, self.column), self.value)

    @property
    def is_equality(self) -> bool:
        return self.op == "=="

    @property
    def is_range(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")

    def __str__(self) -> str:
        return f"{self.column} {self.op} {self.value!r}"


@dataclass(frozen=True)
class Query:
    """``SELECT [projection] FROM table WHERE cond AND cond AND ...``."""

    conditions: Tuple[Condition, ...]
    projection: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "conditions", tuple(self.conditions))
        if self.projection is not None:
            object.__setattr__(self, "projection", tuple(self.projection))

    @staticmethod
    def where(*conditions: Condition, projection=None) -> "Query":
        """Build a query from condition objects."""
        return Query(conditions=tuple(conditions), projection=projection)

    def matches(self, table: Table, row: Row) -> bool:
        """True when the row satisfies every condition."""
        return all(c.matches(table, row) for c in self.conditions)

    def project(self, table: Table, rows: List[Row]) -> List[Tuple]:
        """Apply the projection (identity when none)."""
        if self.projection is None:
            return list(rows)
        positions = [table.column_position(c) for c in self.projection]
        return [tuple(row[p] for p in positions) for row in rows]

    def condition_on(self, column: str) -> Optional[Condition]:
        """The first condition mentioning ``column``, if any."""
        for condition in self.conditions:
            if condition.column == column:
                return condition
        return None

    def __str__(self) -> str:
        where = " AND ".join(str(c) for c in self.conditions) or "TRUE"
        select = ", ".join(self.projection) if self.projection else "*"
        return f"SELECT {select} WHERE {where}"
