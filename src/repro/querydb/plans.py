"""Access-path operators with explicit cost accounting.

Each plan executes a :class:`~repro.querydb.query.Query` against a table
and charges a :class:`CostMeter` for the work it actually does -- rows
scanned, index probes, comparisons.  The meter's simulated-seconds total
is what the racing planner feeds to the alternatives framework, so plan
costs are *measured from the data*, not estimated: exactly the 'cannot
reasonably precompute tau(C_i, x)' regime of section 4.2 relation 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError
from repro.querydb.index import HashIndex, SortedIndex
from repro.querydb.query import Query
from repro.querydb.table import Row, Table


@dataclass
class CostMeter:
    """Counts the primitive operations a plan performs."""

    row_cost: float = 1e-5
    """Seconds to fetch + test one row."""

    probe_cost: float = 2e-5
    """Seconds for one index probe (hash bucket or bisect descent)."""

    rows_examined: int = 0
    probes: int = 0

    def charge_rows(self, count: int) -> None:
        self.rows_examined += count

    def charge_probe(self, count: int = 1) -> None:
        self.probes += count

    @property
    def seconds(self) -> float:
        """Total simulated time for the metered work."""
        return self.rows_examined * self.row_cost + self.probes * self.probe_cost


class Plan:
    """Abstract access path."""

    name = "plan"

    def applicable(self, query: Query) -> bool:
        """Can this path serve the query at all?"""
        raise NotImplementedError

    def execute(self, query: Query, meter: CostMeter) -> List[Row]:
        """Run the query, charging the meter; returns matching rows."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name


class FullScan(Plan):
    """Examine every row.  Always applicable; cost = |table|."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.name = f"full-scan({table.name})"

    def applicable(self, query: Query) -> bool:
        return True

    def execute(self, query: Query, meter: CostMeter) -> List[Row]:
        matches = []
        for row in self.table.scan():
            meter.charge_rows(1)
            if query.matches(self.table, row):
                matches.append(row)
        return matches


class HashProbe(Plan):
    """Probe a hash index on an equality condition, then re-check the
    residual conditions on the bucket."""

    def __init__(self, index: HashIndex) -> None:
        self.index = index
        self.table = index.table
        self.name = f"hash-probe({self.table.name}.{index.column})"

    def applicable(self, query: Query) -> bool:
        condition = query.condition_on(self.index.column)
        return condition is not None and condition.is_equality

    def execute(self, query: Query, meter: CostMeter) -> List[Row]:
        condition = query.condition_on(self.index.column)
        if condition is None or not condition.is_equality:
            raise ReproError(f"{self.name} cannot serve {query}")
        meter.charge_probe()
        bucket = self.index.lookup(condition.value)
        meter.charge_rows(len(bucket))
        return [row for row in bucket if query.matches(self.table, row)]


class RangeScan(Plan):
    """Walk a sorted index over the narrowest range the query allows."""

    def __init__(self, index: SortedIndex) -> None:
        self.index = index
        self.table = index.table
        self.name = f"range-scan({self.table.name}.{index.column})"

    def applicable(self, query: Query) -> bool:
        condition = query.condition_on(self.index.column)
        return condition is not None and (
            condition.is_equality or condition.is_range
        )

    def execute(self, query: Query, meter: CostMeter) -> List[Row]:
        low = high = None
        include_low = include_high = True
        column_conditions = [
            c for c in query.conditions if c.column == self.index.column
        ]
        if not column_conditions:
            raise ReproError(f"{self.name} cannot serve {query}")
        for condition in column_conditions:
            if condition.is_equality:
                low = high = condition.value
            elif condition.op in (">", ">="):
                low = condition.value
                include_low = condition.op == ">="
            elif condition.op in ("<", "<="):
                high = condition.value
                include_high = condition.op == "<="
        meter.charge_probe(2)  # two bisect descents
        candidates = self.index.range(low, high, include_low, include_high)
        meter.charge_rows(len(candidates))
        return [row for row in candidates if query.matches(self.table, row)]


def candidate_plans(
    table: Table,
    query: Query,
    hash_indexes: Optional[List[HashIndex]] = None,
    sorted_indexes: Optional[List[SortedIndex]] = None,
) -> List[Plan]:
    """Every access path that can serve ``query``, full scan included."""
    plans: List[Plan] = []
    for index in hash_indexes or ():
        plan = HashProbe(index)
        if plan.applicable(query):
            plans.append(plan)
    for index in sorted_indexes or ():
        plan = RangeScan(index)
        if plan.applicable(query):
            plans.append(plan)
    plans.append(FullScan(table))
    return plans
