"""AltTalk: the paper's ALGOL-like alternative-block language (Figure 1).

Section 2 presents the construct::

    ALTBEGIN
        ENSURE guard1 WITH method1 OR
        ENSURE guard2 WITH method2 OR
        ...
        FAIL
    END

and section 3.2 sketches 'a language preprocessor applied to a program
with mutually exclusive alternatives' that lowers it onto ``alt_spawn`` /
``alt_wait``.  This package is that front end, made executable:

- :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` read a small
  imperative language (assignment, arithmetic, if/while, ``print``,
  explicit ``charge`` for simulated time) with ``altbegin`` blocks;
- :mod:`repro.lang.interpreter` runs programs with variables living in a
  COW address space, so alternative arms are isolated exactly as the
  design requires;
- :mod:`repro.lang.preprocessor` emits the paper's pseudo-C lowering of
  an ``altbegin`` block, reproducing the section 3.2 listing.
"""

from repro.lang.interpreter import Interpreter, ProgramResult, run_program
from repro.lang.parser import parse_program
from repro.lang.preprocessor import lower_to_pseudo_c

__all__ = [
    "Interpreter",
    "ProgramResult",
    "lower_to_pseudo_c",
    "parse_program",
    "run_program",
]
