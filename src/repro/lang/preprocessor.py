"""The section 3.2 preprocessor lowering, rendered as pseudo-C.

The paper sketches what 'a language preprocessor applied to a program
with mutually exclusive alternatives would generate'::

    switch ( alt_spawn( n ) )
    {
    case 0:
        alt_wait( TIMEOUT );
        fail();   /* if returned */
    case 1:
        /* first alternate */
        ...
        alt_wait( 0 );
    ...
    }

:func:`lower_to_pseudo_c` reproduces that listing for any parsed
``altbegin`` block, so the transformation the executors perform is
visible as text.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast
from repro.lang.parser import parse_program


def _expr_to_c(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Literal):
        if isinstance(expr.value, bool):
            return "1" if expr.value else "0"
        if isinstance(expr.value, str):
            return f'"{expr.value}"'
        return str(expr.value)
    if isinstance(expr, ast.Name):
        return expr.identifier
    if isinstance(expr, ast.Unary):
        operator = "!" if expr.operator == "not" else expr.operator
        return f"{operator}({_expr_to_c(expr.operand)})"
    if isinstance(expr, ast.Binary):
        operator = {"and": "&&", "or": "||", "%": "%"}.get(
            expr.operator, expr.operator
        )
        return f"({_expr_to_c(expr.left)} {operator} {_expr_to_c(expr.right)})"
    raise TypeError(f"not an expression: {expr!r}")


def _stmt_to_c(statement: ast.Stmt, indent: str) -> List[str]:
    if isinstance(statement, ast.Assign):
        return [f"{indent}{statement.target} = {_expr_to_c(statement.value)};"]
    if isinstance(statement, ast.Print):
        return [f"{indent}printf({_expr_to_c(statement.value)});"]
    if isinstance(statement, ast.Charge):
        return [f"{indent}/* charge {_expr_to_c(statement.amount)} */"]
    if isinstance(statement, ast.Fail):
        return [f"{indent}abort_alternative();"]
    if isinstance(statement, ast.If):
        lines = [f"{indent}if ({_expr_to_c(statement.condition)}) {{"]
        for inner in statement.then_body:
            lines.extend(_stmt_to_c(inner, indent + "    "))
        if statement.else_body:
            lines.append(f"{indent}}} else {{")
            for inner in statement.else_body:
                lines.extend(_stmt_to_c(inner, indent + "    "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(statement, ast.While):
        lines = [f"{indent}while ({_expr_to_c(statement.condition)}) {{"]
        for inner in statement.body:
            lines.extend(_stmt_to_c(inner, indent + "    "))
        lines.append(f"{indent}}}")
        return lines
    if isinstance(statement, ast.AltBlock):
        return [f"{indent}/* nested ALTBEGIN lowered separately */"]
    raise TypeError(f"not a statement: {statement!r}")


def lower_to_pseudo_c(block: ast.AltBlock, timeout_name: str = "TIMEOUT") -> str:
    """Render the paper's alt_spawn/alt_wait switch for ``block``."""
    n = len(block.arms)
    lines = [
        f"switch ( alt_spawn( {n} ) )",
        "{",
        "case 0:",
        f"    alt_wait( {timeout_name} );",
        "    fail();   /* if returned */",
    ]
    for number, arm in enumerate(block.arms, start=1):
        lines.append(f"case {number}:")
        lines.append(f"    /* {arm.label} */")
        for statement in arm.body:
            lines.extend(_stmt_to_c(statement, "    "))
        lines.append(
            f"    if (!({_expr_to_c(arm.guard)})) abort_alternative();"
        )
        lines.append("    alt_wait( 0 );")
    lines.append("}")
    return "\n".join(lines)


def lower_source(source: str) -> List[str]:
    """Lower every top-level ``altbegin`` block in a program."""
    program = parse_program(source)
    listings = []
    for statement in program.body:
        if isinstance(statement, ast.AltBlock):
            listings.append(lower_to_pseudo_c(statement))
    return listings
