"""Abstract syntax for AltTalk."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

Value = Union[int, float, bool, str]


# ----------------------------------------------------------------------
# expressions


class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: Value


@dataclass(frozen=True)
class Name(Expr):
    identifier: str


@dataclass(frozen=True)
class Unary(Expr):
    operator: str  # '-' or 'not'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    operator: str
    left: Expr
    right: Expr


# ----------------------------------------------------------------------
# statements


class Stmt:
    """Base class for statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    target: str
    value: Expr


@dataclass(frozen=True)
class Print(Stmt):
    value: Expr


@dataclass(frozen=True)
class Charge(Stmt):
    """Accrue simulated execution time explicitly."""

    amount: Expr


@dataclass(frozen=True)
class Fail(Stmt):
    """Abort the enclosing alternative (or the program)."""

    reason: Optional[Expr] = None


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Arm:
    """One ``ENSURE guard WITH method`` arm."""

    guard: Expr
    body: Tuple[Stmt, ...]
    label: str = ""


@dataclass(frozen=True)
class AltBlock(Stmt):
    """``ALTBEGIN arm (OR arm)* END``."""

    arms: Tuple[Arm, ...]


@dataclass(frozen=True)
class Program:
    body: Tuple[Stmt, ...]
