"""Recursive-descent parser for AltTalk.

Grammar (EBNF)::

    program  := stmt*
    stmt     := NAME ':=' expr ';'
              | 'print' expr ';'
              | 'charge' expr ';'
              | 'fail' [expr] ';'
              | 'if' expr 'then' stmt* ['else' stmt*] 'end'
              | 'while' expr 'do' stmt* 'end'
              | 'altbegin' arm ('or' arm)* 'end'
    arm      := 'ensure' expr 'with' stmt*
    expr     := or_expr
    or_expr  := and_expr ('or' and_expr)*        # inside expressions only
    and_expr := not_expr ('and' not_expr)*
    not_expr := 'not' not_expr | comparison
    comparison := sum (('<'|'<='|'>'|'>='|'=='|'!=') sum)?
    sum      := term (('+'|'-') term)*
    term     := factor (('*'|'/'|'%') factor)*
    factor   := NUM | STRING | 'true' | 'false' | NAME | '-' factor
              | '(' expr ')'

Note: ``or`` is both the arm separator inside an ``altbegin`` block and a
logical operator inside expressions.  There is no ambiguity because arm
separators only occur where a statement is expected.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang.ast import (
    AltBlock,
    Arm,
    Assign,
    Binary,
    Charge,
    Expr,
    Fail,
    If,
    Literal,
    Name,
    Print,
    Program,
    Stmt,
    Unary,
    While,
)
from repro.lang.lexer import LangSyntaxError, Token, tokenize

_STOP_KEYWORDS = {"end", "else", "or", "ensure"}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def _error(self, message: str) -> LangSyntaxError:
        token = self.peek()
        return LangSyntaxError(
            f"line {token.line}: {message} (at {token.text!r})"
        )

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            raise self._error(f"expected {text if text is not None else kind!r}")
        return self.advance()

    def at(self, kind: str, text: str) -> bool:
        token = self.peek()
        return token.kind == kind and token.text == text

    # ------------------------------------------------------------------
    # statements

    def parse_program(self) -> Program:
        body = self.parse_statements()
        if self.peek().kind != "end":
            raise self._error("unexpected trailing input")
        return Program(body=body)

    def parse_statements(self) -> Tuple[Stmt, ...]:
        statements: List[Stmt] = []
        while True:
            token = self.peek()
            if token.kind == "end":
                return tuple(statements)
            if token.kind == "kw" and token.text in _STOP_KEYWORDS:
                return tuple(statements)
            statements.append(self.parse_statement())

    def parse_statement(self) -> Stmt:
        token = self.peek()
        if token.kind == "name":
            return self._parse_assign()
        if token.kind == "kw":
            if token.text == "print":
                self.advance()
                value = self.parse_expr()
                self.expect("op", ";")
                return Print(value)
            if token.text == "charge":
                self.advance()
                amount = self.parse_expr()
                self.expect("op", ";")
                return Charge(amount)
            if token.text == "fail":
                self.advance()
                reason = None
                if not self.at("op", ";"):
                    reason = self.parse_expr()
                self.expect("op", ";")
                return Fail(reason)
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "altbegin":
                return self._parse_altblock()
        raise self._error("expected a statement")

    def _parse_assign(self) -> Assign:
        target = self.expect("name").text
        self.expect("op", ":=")
        value = self.parse_expr()
        self.expect("op", ";")
        return Assign(target, value)

    def _parse_if(self) -> If:
        self.expect("kw", "if")
        condition = self.parse_expr()
        self.expect("kw", "then")
        then_body = self.parse_statements()
        else_body: Tuple[Stmt, ...] = ()
        if self.at("kw", "else"):
            self.advance()
            else_body = self.parse_statements()
        self.expect("kw", "end")
        return If(condition, then_body, else_body)

    def _parse_while(self) -> While:
        self.expect("kw", "while")
        condition = self.parse_expr()
        self.expect("kw", "do")
        body = self.parse_statements()
        self.expect("kw", "end")
        return While(condition, body)

    def _parse_altblock(self) -> AltBlock:
        self.expect("kw", "altbegin")
        arms = [self._parse_arm(1)]
        while self.at("kw", "or"):
            self.advance()
            arms.append(self._parse_arm(len(arms) + 1))
        self.expect("kw", "end")
        return AltBlock(tuple(arms))

    def _parse_arm(self, number: int) -> Arm:
        self.expect("kw", "ensure")
        guard = self.parse_expr()
        self.expect("kw", "with")
        body = self.parse_statements()
        return Arm(guard=guard, body=body, label=f"method{number}")

    # ------------------------------------------------------------------
    # expressions

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.at("kw", "or") and self._or_is_operator():
            self.advance()
            right = self._parse_and()
            left = Binary("or", left, right)
        return left

    def _or_is_operator(self) -> bool:
        # 'or' followed by 'ensure' separates altblock arms, not operands.
        nxt = self.tokens[self.index + 1]
        return not (nxt.kind == "kw" and nxt.text == "ensure")

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.at("kw", "and"):
            self.advance()
            right = self._parse_not()
            left = Binary("and", left, right)
        return left

    def _parse_not(self) -> Expr:
        if self.at("kw", "not"):
            self.advance()
            return Unary("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_sum()
        token = self.peek()
        if token.kind == "op" and token.text in ("<", "<=", ">", ">=", "==", "!="):
            self.advance()
            right = self._parse_sum()
            return Binary(token.text, left, right)
        return left

    def _parse_sum(self) -> Expr:
        left = self._parse_term()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            operator = self.advance().text
            right = self._parse_term()
            left = Binary(operator, left, right)
        return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while self.peek().kind == "op" and self.peek().text in ("*", "/", "%"):
            operator = self.advance().text
            right = self._parse_factor()
            left = Binary(operator, left, right)
        return left

    def _parse_factor(self) -> Expr:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            value = float(token.text) if "." in token.text else int(token.text)
            return Literal(value)
        if token.kind == "str":
            self.advance()
            return Literal(token.text)
        if token.kind == "kw" and token.text in ("true", "false"):
            self.advance()
            return Literal(token.text == "true")
        if token.kind == "name":
            self.advance()
            return Name(token.text)
        if token.kind == "op" and token.text == "-":
            self.advance()
            return Unary("-", self._parse_factor())
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.parse_expr()
            self.expect("op", ")")
            return inner
        raise self._error("expected an expression")


def parse_program(source: str) -> Program:
    """Parse AltTalk source into a :class:`~repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()
