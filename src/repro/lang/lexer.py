"""Tokenizer for AltTalk.

Keywords are case-insensitive so programs can be written in the paper's
shouting ALGOL style (``ALTBEGIN ... ENSURE ... WITH ... OR ... END``) or
in lowercase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ReproError


class LangSyntaxError(ReproError):
    """Invalid AltTalk source."""


KEYWORDS = {
    "altbegin",
    "and",
    "charge",
    "do",
    "else",
    "end",
    "ensure",
    "fail",
    "false",
    "if",
    "not",
    "or",
    "print",
    "then",
    "true",
    "while",
    "with",
}

_TWO_CHAR_OPS = {":=", "<=", ">=", "==", "!="}
_ONE_CHAR_OPS = {"+", "-", "*", "/", "<", ">", "(", ")", ";", "%"}


@dataclass(frozen=True)
class Token:
    kind: str  # 'kw', 'name', 'num', 'str', 'op', 'end'
    text: str
    line: int


def tokenize(source: str) -> List[Token]:
    """Split AltTalk source into tokens."""
    tokens: List[Token] = []
    position = 0
    line = 1
    n = len(source)
    while position < n:
        ch = source[position]
        if ch == "\n":
            line += 1
            position += 1
            continue
        if ch in " \t\r":
            position += 1
            continue
        if ch == "#":
            newline = source.find("\n", position)
            position = n if newline < 0 else newline
            continue
        if source[position:position + 2] in _TWO_CHAR_OPS:
            tokens.append(Token("op", source[position:position + 2], line))
            position += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("op", ch, line))
            position += 1
            continue
        if ch == '"':
            end = source.find('"', position + 1)
            if end < 0:
                raise LangSyntaxError(f"line {line}: unterminated string")
            tokens.append(Token("str", source[position + 1:end], line))
            position = end + 1
            continue
        if ch.isdigit():
            start = position
            while position < n and source[position].isdigit():
                position += 1
            if position < n - 1 and source[position] == "." and source[position + 1].isdigit():
                position += 1
                while position < n and source[position].isdigit():
                    position += 1
            tokens.append(Token("num", source[start:position], line))
            continue
        if ch.isalpha() or ch == "_":
            start = position
            while position < n and (source[position].isalnum() or source[position] == "_"):
                position += 1
            word = source[start:position]
            kind = "kw" if word.lower() in KEYWORDS else "name"
            text = word.lower() if kind == "kw" else word
            tokens.append(Token(kind, text, line))
            continue
        raise LangSyntaxError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("end", "", line))
    return tokens
