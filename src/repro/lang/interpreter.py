"""Tree-walking interpreter for AltTalk.

Program variables live in a COW :class:`~repro.pages.AddressSpace`
(through :class:`~repro.core.AltContext`), so when an ``altbegin`` block
spawns its arms, each arm mutates its own forked world and only the
selected arm's writes survive -- the construct's semantics come directly
from the executor machinery rather than being re-implemented here.

Costs: every statement executed accrues ``statement_cost`` simulated
seconds, and ``charge e;`` adds ``e`` more, so alternative arms have
data-dependent durations the race can discriminate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

from repro.core.alternative import AltContext, Alternative
from repro.core.concurrent import ConcurrentExecutor
from repro.core.result import AltResult
from repro.core.sequential import SequentialExecutor
from repro.errors import GuardFailure, ReproError
from repro.lang import ast
from repro.lang.parser import parse_program


class LangRuntimeError(ReproError):
    """An AltTalk program misbehaved at run time."""


Executor = Union[SequentialExecutor, ConcurrentExecutor]


@dataclass
class ProgramResult:
    """What running a program produced."""

    output: List[str] = field(default_factory=list)
    charged: float = 0.0
    alt_results: List[AltResult] = field(default_factory=list)
    variables: dict = field(default_factory=dict)


class Interpreter:
    """Execute AltTalk programs over an alternative-block executor."""

    def __init__(
        self,
        executor: Optional[Executor] = None,
        statement_cost: float = 0.001,
        max_loop_iterations: int = 100_000,
    ) -> None:
        self.executor = (
            executor if executor is not None else SequentialExecutor()
        )
        self.statement_cost = statement_cost
        self.max_loop_iterations = max_loop_iterations

    # ------------------------------------------------------------------

    def run(
        self, program: Union[str, ast.Program], space_size: int = 64 * 1024
    ) -> ProgramResult:
        """Run a program; returns output, charges, and final variables."""
        if isinstance(program, str):
            program = parse_program(program)
        parent = self.executor.new_parent()
        context = AltContext(parent.space, name="main", process=parent)
        result = ProgramResult()
        self._exec_block(program.body, context, result)
        result.charged += context.charged
        result.variables = {
            name: context.get(name) for name in context.space.names()
        }
        return result

    # ------------------------------------------------------------------
    # statements

    def _exec_block(self, statements, context: AltContext, result: ProgramResult) -> None:
        for statement in statements:
            self._exec_statement(statement, context, result)

    def _exec_statement(self, statement, context: AltContext, result: ProgramResult) -> None:
        context.charge(self.statement_cost)
        if isinstance(statement, ast.Assign):
            context.put(statement.target, self._eval(statement.value, context))
        elif isinstance(statement, ast.Print):
            result.output.append(_stringify(self._eval(statement.value, context)))
        elif isinstance(statement, ast.Charge):
            amount = self._eval(statement.amount, context)
            if not isinstance(amount, (int, float)) or isinstance(amount, bool):
                raise LangRuntimeError("charge needs a numeric amount")
            context.charge(float(amount))
        elif isinstance(statement, ast.Fail):
            reason = (
                _stringify(self._eval(statement.reason, context))
                if statement.reason is not None
                else "fail statement"
            )
            raise GuardFailure(reason)
        elif isinstance(statement, ast.If):
            if _truthy(self._eval(statement.condition, context)):
                self._exec_block(statement.then_body, context, result)
            else:
                self._exec_block(statement.else_body, context, result)
        elif isinstance(statement, ast.While):
            iterations = 0
            while _truthy(self._eval(statement.condition, context)):
                iterations += 1
                if iterations > self.max_loop_iterations:
                    raise LangRuntimeError(
                        f"loop exceeded {self.max_loop_iterations} iterations"
                    )
                self._exec_block(statement.body, context, result)
                context.charge(self.statement_cost)
        elif isinstance(statement, ast.AltBlock):
            self._exec_altblock(statement, context, result)
        else:  # pragma: no cover - parser produces only the above
            raise LangRuntimeError(f"unknown statement {statement!r}")

    # ------------------------------------------------------------------
    # the alternative block

    def _exec_altblock(
        self, block: ast.AltBlock, context: AltContext, result: ProgramResult
    ) -> None:
        if context.process is None:
            raise LangRuntimeError(
                "this executor does not expose processes; cannot nest"
            )
        alternatives = [
            self._lower_arm(arm, result) for arm in block.arms
        ]
        if isinstance(self.executor, ConcurrentExecutor):
            inner: Executor = ConcurrentExecutor(
                cost_model=self.executor.cost_model,
                cpus=self.executor.cpus,
                elimination=self.executor.elimination,
                guard_placement=self.executor.guard_placement,
                timeout=self.executor.timeout,
                seed=self.executor.seed,
                manager=self.executor.manager,
            )
        else:
            inner = SequentialExecutor(
                policy=self.executor.policy,
                try_all=self.executor.try_all,
                seed=self.executor.seed,
                manager=self.executor.manager,
            )
        alt_result = inner.run(alternatives, parent=context.process)
        result.alt_results.append(alt_result)
        context.charge(alt_result.elapsed)
        # The winner's prints surface in program order after selection.
        winner_output = alt_result.value
        if winner_output:
            result.output.extend(winner_output)

    def _lower_arm(self, arm: ast.Arm, result: ProgramResult) -> Alternative:
        def body(context: AltContext) -> List[str]:
            arm_result = ProgramResult()
            self._exec_block(arm.body, context, arm_result)
            if not _truthy(self._eval(arm.guard, context)):
                raise GuardFailure(f"{arm.label}: ENSURE condition false")
            return arm_result.output

        return Alternative(name=arm.label, body=body, cost=None)

    # ------------------------------------------------------------------
    # expressions

    def _eval(self, expr, context: AltContext) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Name):
            value = context.get(expr.identifier, _MISSING)
            if value is _MISSING:
                raise LangRuntimeError(
                    f"undefined variable {expr.identifier!r}"
                )
            return value
        if isinstance(expr, ast.Unary):
            operand = self._eval(expr.operand, context)
            if expr.operator == "-":
                _require_number(operand, "-")
                return -operand
            return not _truthy(operand)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, context)
        raise LangRuntimeError(f"unknown expression {expr!r}")  # pragma: no cover

    def _eval_binary(self, expr: ast.Binary, context: AltContext) -> Any:
        operator = expr.operator
        if operator == "and":
            return _truthy(self._eval(expr.left, context)) and _truthy(
                self._eval(expr.right, context)
            )
        if operator == "or":
            return _truthy(self._eval(expr.left, context)) or _truthy(
                self._eval(expr.right, context)
            )
        left = self._eval(expr.left, context)
        right = self._eval(expr.right, context)
        if operator == "+":
            if isinstance(left, str) or isinstance(right, str):
                return _stringify(left) + _stringify(right)
            _require_number(left, "+")
            _require_number(right, "+")
            return left + right
        if operator in ("-", "*", "/", "%"):
            _require_number(left, operator)
            _require_number(right, operator)
            if operator == "-":
                return left - right
            if operator == "*":
                return left * right
            if operator == "%":
                if right == 0:
                    raise LangRuntimeError("modulo by zero")
                return left % right
            if right == 0:
                raise LangRuntimeError("division by zero")
            return left / right
        if operator == "==":
            return left == right
        if operator == "!=":
            return left != right
        if operator in ("<", "<=", ">", ">="):
            try:
                if operator == "<":
                    return left < right
                if operator == "<=":
                    return left <= right
                if operator == ">":
                    return left > right
                return left >= right
            except TypeError:
                raise LangRuntimeError(
                    f"cannot compare {type(left).__name__} with "
                    f"{type(right).__name__}"
                ) from None
        raise LangRuntimeError(f"unknown operator {operator!r}")  # pragma: no cover


_MISSING = object()


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    raise LangRuntimeError(f"no truth value for {value!r}")


def _require_number(value: Any, operator: str) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise LangRuntimeError(
            f"operator {operator!r} needs numbers, got {value!r}"
        )


def _stringify(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def run_program(
    source: str,
    executor: Optional[Executor] = None,
    statement_cost: float = 0.001,
) -> ProgramResult:
    """Parse and run AltTalk source in one call."""
    interpreter = Interpreter(executor=executor, statement_cost=statement_cost)
    return interpreter.run(source)
