"""Distributed execution of recovery blocks (paper section 5.1).

A recovery block [Horning 1974] gathers several alternative software
versions and a boolean acceptance test.  Sequentially, alternates are
tried in order with rollback between failures.  Concurrently, the
alternates race under the fastest-first mechanism with the acceptance test
as the guard; majority-consensus synchronization keeps the mechanism from
introducing a new single point of failure, and eager full-copy state
management avoids depending on a failed sibling's frames.
"""

from repro.recovery.block import RecoveryAlternate, RecoveryBlock
from repro.recovery.concurrent import (
    ConcurrentRecoveryExecutor,
    RecoveryRunResult,
    SyncMode,
)
from repro.recovery.control_loop import ControlLoopResult, run_control_loop
from repro.recovery.distributed import DistributedRecoveryExecutor
from repro.recovery.faults import flaky_body, scripted_body
from repro.recovery.sequential import SequentialRecoveryExecutor

__all__ = [
    "ConcurrentRecoveryExecutor",
    "ControlLoopResult",
    "DistributedRecoveryExecutor",
    "RecoveryAlternate",
    "RecoveryBlock",
    "RecoveryRunResult",
    "SequentialRecoveryExecutor",
    "SyncMode",
    "flaky_body",
    "run_control_loop",
    "scripted_body",
]
