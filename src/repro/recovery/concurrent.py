"""Concurrent (distributed) execution of recovery-block alternates.

Section 5.1.2's two special concerns are both modelled:

1. *No new failure modes from shared state*: optionally 'copy all of the
   state rather than copying as necessary, in order that the state not
   become inaccessible and so cause a failure'.  With
   ``eager_full_copy=True`` every alternate is charged the copy of the
   whole parent image up front instead of per-page COW faults.
2. *No single point of failure in synchronization*: with
   ``SyncMode.MAJORITY_CONSENSUS`` the winner must win a
   :class:`~repro.consensus.MajorityConsensusSemaphore` round, whose
   round-trip latency is added to the selection overhead -- 'the
   additional communication and protocol of multiple-node synchronization
   is the price paid for increased robustness'.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.consensus.majority import MajorityConsensusSemaphore
from repro.consensus.node import ConsensusNode
from repro.consensus.semaphore import SyncSemaphore
from repro.core.alternative import Alternative, GuardPlacement
from repro.core.concurrent import ConcurrentExecutor
from repro.core.result import AltResult, OverheadBreakdown
from repro.errors import SynchronizationError
from repro.process.primitives import EliminationMode, ProcessManager
from repro.process.process import SimProcess
from repro.recovery.block import RecoveryBlock
from repro.sim.costs import CostModel, MODERN_COMMODITY
from repro.sim.distributions import Deterministic, Distribution, Shifted


class SyncMode(enum.Enum):
    """How the at-most-once synchronization is implemented."""

    LOCAL = "local"
    """A single synchronization point (fast; a single point of failure)."""

    MAJORITY_CONSENSUS = "majority_consensus"
    """Replicated across voting nodes (robust; one round trip slower)."""


@dataclass
class RecoveryRunResult:
    """An :class:`AltResult` plus the synchronization detail."""

    result: AltResult
    sync_mode: SyncMode
    sync_latency: float
    consensus_winner: Optional[str] = None

    @property
    def elapsed(self) -> float:
        """Total simulated time including synchronization."""
        return self.result.elapsed

    @property
    def value(self):
        """The accepted alternate's result value."""
        return self.result.value


class ConcurrentRecoveryExecutor:
    """Race recovery-block alternates, fastest acceptable first."""

    def __init__(
        self,
        cost_model: CostModel = MODERN_COMMODITY,
        cpus: Optional[int] = None,
        sync_mode: SyncMode = SyncMode.LOCAL,
        consensus_nodes: Optional[Sequence[ConsensusNode]] = None,
        eager_full_copy: bool = False,
        elimination: EliminationMode = EliminationMode.ASYNCHRONOUS,
        guard_placement: GuardPlacement = GuardPlacement.IN_CHILD,
        acceptance_cost: float = 0.0,
        seed: int = 0,
        manager: Optional[ProcessManager] = None,
        space_size: int = 64 * 1024,
    ) -> None:
        self.cost_model = cost_model
        self.sync_mode = sync_mode
        self.eager_full_copy = eager_full_copy
        self.acceptance_cost = acceptance_cost
        if sync_mode is SyncMode.MAJORITY_CONSENSUS:
            nodes = (
                list(consensus_nodes)
                if consensus_nodes is not None
                else [ConsensusNode(f"voter-{i}") for i in range(3)]
            )
            self.consensus: Optional[MajorityConsensusSemaphore] = (
                MajorityConsensusSemaphore(nodes)
            )
        else:
            self.consensus = None
        self._executor = ConcurrentExecutor(
            cost_model=cost_model,
            cpus=cpus,
            elimination=elimination,
            guard_placement=guard_placement,
            seed=seed,
            manager=manager,
            space_size=space_size,
        )
        self._decisions = itertools.count(1)

    @property
    def manager(self) -> ProcessManager:
        """The underlying process manager."""
        return self._executor.manager

    def new_parent(self) -> SimProcess:
        """A fresh root process whose space callers may preload."""
        return self._executor.new_parent()

    # ------------------------------------------------------------------

    def run(
        self, block: RecoveryBlock, parent: Optional[SimProcess] = None
    ) -> RecoveryRunResult:
        """Execute ``block`` concurrently.

        Raises :class:`~repro.errors.AltBlockFailure` when every alternate
        fails its acceptance test, and
        :class:`~repro.errors.SynchronizationError` when the winning
        alternate cannot complete the (replicated) synchronization.
        """
        parent = parent if parent is not None else self.new_parent()
        arms = block.as_alternatives()
        if self.acceptance_cost:
            for arm in arms:
                arm.guard_cost = self.acceptance_cost
        if self.eager_full_copy:
            arms = [self._with_full_copy(arm, parent) for arm in arms]
        result = self._executor.run(arms, parent=parent)
        return self._synchronize(block, result)

    def _with_full_copy(self, arm: Alternative, parent: SimProcess) -> Alternative:
        """Charge the whole parent image to the alternate up front."""
        full_copy = self.cost_model.page_copy_time(parent.space.num_pages)
        if arm.cost is None:
            cost: Distribution = Deterministic(full_copy)
        elif isinstance(arm.cost, Distribution):
            cost = Shifted(arm.cost, full_copy)
        else:
            cost = Deterministic(float(arm.cost) + full_copy)
        return Alternative(
            name=arm.name,
            body=arm.body,
            guard=arm.guard,
            pre_guard=arm.pre_guard,
            cost=cost,
            guard_cost=arm.guard_cost,
            metadata=arm.metadata,
        )

    def _synchronize(
        self, block: RecoveryBlock, result: AltResult
    ) -> RecoveryRunResult:
        decision = (block.name, next(self._decisions))
        if self.consensus is None:
            semaphore = SyncSemaphore(name=str(decision))
            if not semaphore.try_acquire(result.winner.name):
                raise SynchronizationError("local 0-1 semaphore refused")
            # Local sync latency is already inside the executor's
            # selection overhead; nothing further to charge.
            return RecoveryRunResult(
                result=result,
                sync_mode=SyncMode.LOCAL,
                sync_latency=self.cost_model.sync_latency,
            )
        won = self.consensus.try_acquire(decision, result.winner.name)
        if not won:
            raise SynchronizationError(
                f"{result.winner.name} lost the consensus round for "
                f"{decision}"
            )
        extra = self.consensus.latency(self.cost_model)
        result.elapsed += extra
        result.overhead = result.overhead + OverheadBreakdown(selection=extra)
        result.timeline.append((result.elapsed, "majority consensus granted"))
        return RecoveryRunResult(
            result=result,
            sync_mode=SyncMode.MAJORITY_CONSENSUS,
            sync_latency=extra,
            consensus_winner=str(self.consensus.winner(decision)),
        )
