"""Fault injection for recovery-block experiments.

The paper's recovery-block discussion (and the Kim/Welch experiments it
cites) hinges on alternates that sometimes fail their acceptance test.
These helpers build bodies with controlled failure behaviour, as thin
adapters over :mod:`repro.resilience`: the schedule/probability lives in
a :class:`~repro.resilience.FaultRule` (one validation path for the
whole codebase), while the *manifestation* stays semantic -- a
``ctx.fail`` guard failure, never an abnormal death, so the recovery
machinery (not the supervisor) handles it.

- :func:`flaky_body` fails with a fixed probability per execution, drawn
  from the alternative's own seeded RNG (so runs are reproducible per
  executor seed -- the keyed injector RNG would instead vary with the
  call number across block re-executions);
- :func:`scripted_body` fails on an explicit set of invocation numbers,
  decided by a private :class:`~repro.resilience.FaultInjector`, for
  deterministic tests of rollback chains.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Optional

from repro.core.alternative import AltContext
from repro.resilience.injector import FaultInjector, FaultRule


def flaky_body(
    value: Any,
    failure_prob: float,
    side_effect: Optional[Callable[[AltContext], None]] = None,
) -> Callable[[AltContext], Any]:
    """A body computing ``value`` that fails with ``failure_prob``.

    The failure decision uses ``ctx.rng``, which executors seed per
    (executor seed, alternative index), so results are reproducible.
    ``side_effect`` runs before the failure decision, modelling versions
    that dirty state before their acceptance test rejects them.
    """
    # The rule carries (and validates) the probability; the decision uses
    # the context's executor-seeded RNG to keep per-run reproducibility.
    rule = FaultRule(point="arm-raise", probability=failure_prob, times=None)

    def body(context: AltContext) -> Any:
        if side_effect is not None:
            side_effect(context)
        if context.rng.random() < rule.probability:
            context.fail("injected fault")
        return value

    return body


def scripted_body(
    value: Any,
    fail_on_calls: Iterable[int],
) -> Callable[[AltContext], Any]:
    """A body that fails on the given 1-based invocation numbers.

    Shared across block executions (the counter lives in a private
    :class:`~repro.resilience.FaultInjector`), so a control loop can
    make, say, the primary fail on exactly its 3rd and 7th iterations.
    """
    schedule = FaultInjector(
        rules=[
            FaultRule(
                point="arm-raise",
                times=None,
                on_calls=frozenset(fail_on_calls),
            )
        ]
    )
    counter = itertools.count(1)

    def body(context: AltContext) -> Any:
        call = next(counter)
        if schedule.draw("arm-raise") is not None:
            context.fail(f"scripted fault on call {call}")
        return value

    return body


def always_accept(context: AltContext, value: Any) -> bool:
    """An acceptance test that passes anything (bodies signal their own
    failures through ``ctx.fail``)."""
    return True


def accept_if(predicate: Callable[[Any], bool]) -> Callable[[AltContext, Any], bool]:
    """Build an acceptance test from a plain predicate on the value."""

    def acceptance(context: AltContext, value: Any) -> bool:
        return predicate(value)

    return acceptance
