"""Fault injection for recovery-block experiments.

The paper's recovery-block discussion (and the Kim/Welch experiments it
cites) hinges on alternates that sometimes fail their acceptance test.
These helpers build bodies with controlled failure behaviour:

- :func:`flaky_body` fails with a fixed probability per execution, drawn
  from the alternative's own seeded RNG (so runs are reproducible);
- :func:`scripted_body` fails on an explicit set of invocation numbers,
  for deterministic tests of rollback chains.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterable, Optional

from repro.core.alternative import AltContext


def flaky_body(
    value: Any,
    failure_prob: float,
    side_effect: Optional[Callable[[AltContext], None]] = None,
) -> Callable[[AltContext], Any]:
    """A body computing ``value`` that fails with ``failure_prob``.

    The failure decision uses ``ctx.rng``, which executors seed per
    (executor seed, alternative index), so results are reproducible.
    ``side_effect`` runs before the failure decision, modelling versions
    that dirty state before their acceptance test rejects them.
    """
    if not 0.0 <= failure_prob <= 1.0:
        raise ValueError("failure probability must be in [0, 1]")

    def body(context: AltContext) -> Any:
        if side_effect is not None:
            side_effect(context)
        if context.rng.random() < failure_prob:
            context.fail("injected fault")
        return value

    return body


def scripted_body(
    value: Any,
    fail_on_calls: Iterable[int],
) -> Callable[[AltContext], Any]:
    """A body that fails on the given 1-based invocation numbers.

    Shared across block executions (the counter lives in the closure), so
    a control loop can make, say, the primary fail on exactly its 3rd and
    7th iterations.
    """
    failures = frozenset(fail_on_calls)
    counter = itertools.count(1)

    def body(context: AltContext) -> Any:
        call = next(counter)
        if call in failures:
            context.fail(f"scripted fault on call {call}")
        return value

    return body


def always_accept(context: AltContext, value: Any) -> bool:
    """An acceptance test that passes anything (bodies signal their own
    failures through ``ctx.fail``)."""
    return True


def accept_if(predicate: Callable[[Any], bool]) -> Callable[[AltContext, Any], bool]:
    """Build an acceptance test from a plain predicate on the value."""

    def acceptance(context: AltContext, value: Any) -> bool:
        return predicate(value)

    return acceptance
