"""Sequential recovery-block execution.

The classical semantics: run the primary, apply the acceptance test; on
failure roll the program state back to the block entry and try the next
alternate; if the last alternate fails the test, the block as a whole
fails.  Rollback comes for free from the COW fork underneath
:class:`~repro.core.SequentialExecutor`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.result import AltResult
from repro.core.selection import OrderedPolicy
from repro.core.sequential import SequentialExecutor
from repro.process.primitives import ProcessManager
from repro.process.process import SimProcess
from repro.recovery.block import RecoveryBlock


class SequentialRecoveryExecutor:
    """Ordered, rollback-between-failures execution of recovery blocks."""

    def __init__(
        self,
        seed: int = 0,
        manager: Optional[ProcessManager] = None,
        space_size: int = 64 * 1024,
    ) -> None:
        self._executor = SequentialExecutor(
            policy=OrderedPolicy(),
            try_all=True,
            seed=seed,
            manager=manager,
            space_size=space_size,
        )

    @property
    def manager(self) -> ProcessManager:
        """The underlying process manager (shared state lives here)."""
        return self._executor.manager

    def new_parent(self) -> SimProcess:
        """A fresh root process whose space callers may preload."""
        return self._executor.new_parent()

    def run(
        self, block: RecoveryBlock, parent: Optional[SimProcess] = None
    ) -> AltResult:
        """Execute ``block``; raises
        :class:`~repro.errors.AltBlockFailure` when every alternate fails
        its acceptance test."""
        return self._executor.run(block.as_alternatives(), parent=parent)
