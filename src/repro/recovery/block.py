"""The recovery block construct.

Section 5.1.1 notes two differences from the alternative block of section
2: the recovery block has *one* guard (the acceptance test) applied to all
alternates, and the guard runs *after* the body.  Neither is a problem:
'the computation can be viewed as part of the guard, with the body
consisting solely of updates to external variables'.  Concretely, we map
each alternate to an :class:`~repro.core.Alternative` whose post-``guard``
is the shared acceptance test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Union

from repro.core.alternative import AltContext, Alternative
from repro.sim.distributions import Distribution

AcceptanceTest = Callable[[AltContext, Any], bool]
Body = Callable[[AltContext], Any]


@dataclass
class RecoveryAlternate:
    """One software version inside a recovery block.

    Alternates 'are typically ordered on the basis of observed or
    estimated characteristics such as reliability and execution speed';
    the order of the list passed to :class:`RecoveryBlock` is that order.
    """

    name: str
    body: Body
    cost: Optional[Union[float, Distribution]] = None
    metadata: dict = field(default_factory=dict)


class RecoveryBlock:
    """An ordered set of alternates plus one acceptance test."""

    def __init__(
        self,
        name: str,
        alternates: Sequence[RecoveryAlternate],
        acceptance: AcceptanceTest,
    ) -> None:
        if not alternates:
            raise ValueError("a recovery block needs at least one alternate")
        names = [a.name for a in alternates]
        if len(set(names)) != len(names):
            raise ValueError("alternate names must be unique")
        self.name = name
        self.alternates: List[RecoveryAlternate] = list(alternates)
        self.acceptance = acceptance

    def as_alternatives(self) -> List[Alternative]:
        """The block's arms as core alternatives (guard = acceptance)."""
        return [
            Alternative(
                name=alternate.name,
                body=alternate.body,
                guard=self.acceptance,
                cost=alternate.cost,
                metadata=dict(alternate.metadata),
            )
            for alternate in self.alternates
        ]

    def __len__(self) -> int:
        return len(self.alternates)

    def __repr__(self) -> str:
        return f"RecoveryBlock({self.name!r}, alternates={len(self)})"
