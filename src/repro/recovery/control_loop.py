"""A Welch-style real-time control loop over recovery blocks.

Welch [1983] measured distributed recovery-block performance 'in a
real-time control loop' with two-alternate blocks.  This harness runs a
control loop of ``steps`` iterations; each iteration executes one recovery
block (sequentially or concurrently) and must deliver a command within
``deadline`` simulated seconds.  The paper's conclusion section points out
the real-time fit: 'sibling elimination can be carried out asynchronously
with respect to result delivery'.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Union

from repro.errors import AltBlockFailure
from repro.recovery.block import RecoveryBlock
from repro.recovery.concurrent import ConcurrentRecoveryExecutor, RecoveryRunResult
from repro.recovery.sequential import SequentialRecoveryExecutor

BlockFactory = Callable[[int], RecoveryBlock]
Executor = Union[SequentialRecoveryExecutor, ConcurrentRecoveryExecutor]


@dataclass
class ControlLoopResult:
    """Aggregate outcome of one control-loop run."""

    steps: int
    deadline: float
    latencies: List[float] = field(default_factory=list)
    missed_deadlines: int = 0
    block_failures: int = 0

    @property
    def completed_steps(self) -> int:
        """Iterations that produced a command (even if late)."""
        return len(self.latencies)

    @property
    def mean_latency(self) -> float:
        """Mean per-iteration latency over completed steps."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def worst_latency(self) -> float:
        """Worst-case per-iteration latency."""
        return max(self.latencies) if self.latencies else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of iterations that missed the deadline or failed."""
        if self.steps == 0:
            return 0.0
        return (self.missed_deadlines + self.block_failures) / self.steps


def run_control_loop(
    executor: Executor,
    block_factory: BlockFactory,
    steps: int,
    deadline: float,
) -> ControlLoopResult:
    """Drive ``steps`` control iterations through ``executor``.

    ``block_factory(step)`` builds the iteration's recovery block (so
    scripted faults can key off the step number).  A block failure counts
    as a missed command; the loop continues -- a real controller would
    hold the previous output.
    """
    if steps < 1:
        raise ValueError("need at least one control step")
    if deadline <= 0:
        raise ValueError("deadline must be positive")
    outcome = ControlLoopResult(steps=steps, deadline=deadline)
    for step in range(steps):
        block = block_factory(step)
        try:
            result = executor.run(block)
        except AltBlockFailure:
            outcome.block_failures += 1
            continue
        elapsed = (
            result.elapsed
            if isinstance(result, RecoveryRunResult)
            else result.elapsed
        )
        outcome.latencies.append(elapsed)
        if elapsed > deadline:
            outcome.missed_deadlines += 1
    return outcome
