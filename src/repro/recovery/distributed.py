"""Recovery blocks executed across workstations (section 5.1 proper).

The section's title scenario: each alternate version of the software runs
on its *own node* (a remote-forked copy of the caller's state), the
acceptance test guards each, and the at-most-once synchronization is
replicated so the mechanism adds no single point of failure.  This module
is a thin composition of :class:`~repro.recovery.RecoveryBlock` with
:class:`~repro.net.DistributedAltExecutor`.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.net.distributed import DistributedAltExecutor
from repro.net.network import Network
from repro.process.process import SimProcess
from repro.recovery.block import RecoveryBlock
from repro.recovery.concurrent import RecoveryRunResult, SyncMode
from repro.sim.costs import CostModel


class DistributedRecoveryExecutor:
    """Run each recovery-block alternate on its own network node."""

    def __init__(
        self,
        network: Network,
        home: str,
        workers: Sequence[str],
        cost_model: Optional[CostModel] = None,
        use_consensus: bool = True,
        seed: int = 0,
    ) -> None:
        self._executor = DistributedAltExecutor(
            network,
            home=home,
            workers=workers,
            cost_model=cost_model,
            use_consensus=use_consensus,
            seed=seed,
        )
        self.use_consensus = use_consensus

    def new_parent(self, space_size: int = 64 * 1024) -> SimProcess:
        """A fresh parent on the home node."""
        return self._executor.new_parent(space_size=space_size)

    def run(
        self, block: RecoveryBlock, parent: Optional[SimProcess] = None
    ) -> RecoveryRunResult:
        """Execute ``block`` with one alternate per worker node.

        Raises :class:`~repro.errors.AltBlockFailure` when every alternate
        fails its acceptance test and
        :class:`~repro.errors.NetworkError` style failures surface per
        node (an unreachable worker only loses its own alternate).
        """
        parent = parent if parent is not None else self.new_parent()
        result = self._executor.run(block.as_alternatives(), parent=parent)
        return RecoveryRunResult(
            result=result,
            sync_mode=(
                SyncMode.MAJORITY_CONSENSUS
                if self.use_consensus
                else SyncMode.LOCAL
            ),
            sync_latency=result.overhead.selection,
        )
