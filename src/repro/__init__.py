"""repro: Transparent Concurrent Execution of Mutually Exclusive Alternatives.

A reproduction of Smith & Maguire (ICDCS 1989).  The top level re-exports
the public API; see DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduced evaluation.

Quickstart::

    from repro import Alternative, ConcurrentExecutor

    alts = [
        Alternative("index-scan", body=lambda ctx: "via index", cost=2.0),
        Alternative("table-scan", body=lambda ctx: "via scan", cost=9.0),
    ]
    result = ConcurrentExecutor().run(alts)
    assert result.winner.name == "index-scan"
"""

from repro.core import (
    AltContext,
    AltOutcome,
    AltResult,
    Alternative,
    CancellationToken,
    ConcurrentExecutor,
    ExecutionBackend,
    GuardPlacement,
    OrderedPolicy,
    OsHost,
    OverheadBreakdown,
    PriorityPolicy,
    ProcessBackend,
    RandomPolicy,
    SequentialExecutor,
    SerialBackend,
    ThreadBackend,
    default_parallel_backend,
    get_backend,
)
from repro.errors import (
    AltBlockFailure,
    AltTimeout,
    Eliminated,
    FaultInjected,
    GuardFailure,
    PageApplyError,
    ReproError,
    TooLate,
)
from repro.obs import (
    BlockTrace,
    MetricsRegistry,
    TraceEvent,
    Tracer,
    tracing,
)
from repro.process.primitives import EliminationMode
from repro.resilience import (
    FaultInjector,
    FaultRule,
    RaceAutopsy,
    Supervisor,
    injected,
)
from repro.sim.costs import ATT_3B2_310, FREE, HP_9000_350, MODERN_COMMODITY, CostModel

__version__ = "1.0.0"

__all__ = [
    "ATT_3B2_310",
    "AltBlockFailure",
    "AltContext",
    "AltOutcome",
    "AltResult",
    "AltTimeout",
    "Alternative",
    "BlockTrace",
    "CancellationToken",
    "ConcurrentExecutor",
    "CostModel",
    "MetricsRegistry",
    "Eliminated",
    "EliminationMode",
    "ExecutionBackend",
    "FREE",
    "FaultInjected",
    "FaultInjector",
    "FaultRule",
    "GuardFailure",
    "GuardPlacement",
    "HP_9000_350",
    "MODERN_COMMODITY",
    "OrderedPolicy",
    "OsHost",
    "OverheadBreakdown",
    "PageApplyError",
    "PriorityPolicy",
    "ProcessBackend",
    "RaceAutopsy",
    "RandomPolicy",
    "ReproError",
    "SequentialExecutor",
    "SerialBackend",
    "Supervisor",
    "ThreadBackend",
    "TooLate",
    "TraceEvent",
    "Tracer",
    "__version__",
    "default_parallel_backend",
    "get_backend",
    "injected",
    "tracing",
]
