"""Checksum-framed record transport shared by fork children and pool workers.

One framed record is ``magic | length | crc32 | pickle(payload)``.  The
framing is deliberately tiny: the interesting hardening lives in
:class:`RecordReader` (incremental parsing, corruption detection) and in
:func:`write_record` (the injector's mid-shipback death and corruption
faults, including truncation at an *exact* byte offset so tests can walk
every cut point of a frame).

Extracted from the process backend so the pre-warmed world pool speaks
the identical wire format over its persistent pipes: a pooled worker's
record is indistinguishable from a freshly forked child's.
"""

from __future__ import annotations

import errno
import os
import pickle
import struct
import zlib
from typing import List, Optional, Tuple

MAGIC = b"Rr"
FRAME = struct.Struct("!2sII")  # magic, payload length, crc32(payload)
MAX_RECORD = 1 << 30

# Child exit codes the parent can interpret when no intact record arrived.
EXIT_OK = 0
EXIT_UNPICKLABLE = 81  # fallback record shipped; real value was unpicklable
EXIT_SHIP_FAILED = 82  # record could not be written at all
EXIT_TRUNCATED = 83  # injected mid-shipback death
EXIT_HANG = 84  # injected hang ran its full stall


def frame_record(payload: dict) -> Tuple[bytes, int]:
    """Frame ``payload`` as ``magic|len|crc32|pickle``.

    Returns ``(frame, exit_code)``: an unpicklable result is replaced by
    a failure record that *names* the serialization error (it must not
    vanish), and the child's exit code is set to ``EXIT_UNPICKLABLE`` so
    the status surfaces it too.
    """
    exit_code = EXIT_OK
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        stripped = {
            key: value
            for key, value in payload.items()
            if key not in ("value", "dirty_pages", "shm_pages", "trace")
        }
        stripped["ok"] = False
        stripped["abnormal"] = True
        stripped["detail"] = (
            f"result not picklable across the fork boundary: {exc!r}"
        )
        blob = pickle.dumps(stripped, protocol=pickle.HIGHEST_PROTOCOL)
        exit_code = EXIT_UNPICKLABLE
    frame = FRAME.pack(MAGIC, len(blob), zlib.crc32(blob) & 0xFFFFFFFF)
    return frame + blob, exit_code


def write_all(fd: int, data: bytes) -> bool:
    """Write every byte; EINTR-safe.  EPIPE (the parent is gone, nobody
    will ever read this record) returns False; any other OS error -- a
    real shipback failure -- propagates so the child can surface it in
    its exit status instead of silently dropping the result."""
    view = memoryview(data)
    while view:
        try:
            written = os.write(fd, view)
        except InterruptedError:  # pragma: no cover - EINTR, retried
            continue
        except OSError as exc:
            if exc.errno == errno.EPIPE:
                return False
            raise
        view = view[written:]
    return True


def truncate_offset(detail: str) -> Optional[int]:
    """Parse an exact truncation offset out of a fault rule's ``detail``.

    A ``pipe-truncate`` rule whose detail reads ``offset=N`` cuts the
    frame after exactly ``N`` bytes (the exhaustive every-cut-point
    tests); any other detail keeps the default mid-frame cut.
    """
    if detail.startswith("offset="):
        try:
            return max(0, int(detail[len("offset="):]))
        except ValueError:
            return None
    return None


def write_record(
    fd: int, payload: dict, ship_fault: Optional[Tuple[str, Optional[int]]] = None
) -> int:
    """Frame and ship one record; returns the child exit code to use.

    ``ship_fault`` is the parent-drawn injector decision -- ``None``, or
    ``('truncate', offset)`` (``offset=None`` for the default mid-frame
    cut), or ``('corrupt', None)`` -- decided *before* the fork so
    counters and the firing log live in the parent, where the autopsy
    reads them.
    """
    frame, exit_code = frame_record(payload)
    if ship_fault is not None and ship_fault[0] == "truncate":
        offset = ship_fault[1]
        if offset is None:
            offset = max(FRAME.size + 1, len(frame) // 2)
        # Die mid-shipback: leave a dangling partial frame.
        write_all(fd, frame[:min(offset, len(frame))])
        return EXIT_TRUNCATED
    if ship_fault is not None and ship_fault[0] == "corrupt":
        body = bytearray(frame)
        for position in range(FRAME.size, len(body), 7):
            body[position] ^= 0xFF
        frame = bytes(body)
    write_all(fd, frame)
    return exit_code


class RecordReader:
    """Incremental checksum-framed record parser over one child's pipe."""

    def __init__(self) -> None:
        self._buffer = b""
        self.corrupt = False
        self.corrupt_detail = ""

    @property
    def pending(self) -> bool:
        """Bytes of an incomplete frame are sitting in the buffer."""
        return bool(self._buffer)

    def _mark_corrupt(self, detail: str) -> None:
        self.corrupt = True
        self.corrupt_detail = detail
        self._buffer = b""

    def feed(self, data: bytes) -> List[dict]:
        if self.corrupt:
            return []
        self._buffer += data
        records: List[dict] = []
        while True:
            if len(self._buffer) < FRAME.size:
                return records
            magic, length, crc = FRAME.unpack_from(self._buffer)
            if magic != MAGIC or length > MAX_RECORD:
                self._mark_corrupt("corrupt result record: bad frame header")
                return records
            if len(self._buffer) < FRAME.size + length:
                return records
            blob = self._buffer[FRAME.size:FRAME.size + length]
            self._buffer = self._buffer[FRAME.size + length:]
            if zlib.crc32(blob) & 0xFFFFFFFF != crc:
                self._mark_corrupt(
                    "corrupt result record: checksum mismatch"
                )
                return records
            try:
                records.append(pickle.loads(blob))
            except Exception as exc:
                self._mark_corrupt(
                    f"corrupt result record: undecodable payload ({exc!r})"
                )
                return records
