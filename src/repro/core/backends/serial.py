"""The serial (deterministic) execution backend.

Runs every arm's body to completion, one at a time, in spawn order --
exactly the execution discipline the simulator's virtual-concurrency race
assumes, and therefore the default: with a fixed seed, results are
bit-identical run to run.  The "race" is decided afterwards by the
executor's deterministic timing model, not by the wall clock, so this
backend never cancels anything.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.errors import Eliminated, FaultInjected
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.resilience.injector import active as _active_injector


class SerialBackend(ExecutionBackend):
    """Run arms sequentially; deterministic replay mode."""

    name = "serial"
    is_parallel = False

    def run_arms(
        self,
        tasks: List[ArmTask],
        timeout: Optional[float] = None,
        collect_all: bool = False,
    ) -> BackendRace:
        # ``collect_all`` is a no-op here: the serial backend never
        # cancels anything, so every arm already runs to completion.
        start = time.perf_counter()
        reports: List[ArmReport] = []
        events = []
        winner_index: Optional[int] = None
        winner_finish: Optional[float] = None
        for task in tasks:
            began = time.perf_counter() - start
            abnormal = False
            try:
                injector = _active_injector()
                if injector is not None:
                    # Process-only faults manifest as in-line crashes here
                    # (there is no process to kill or pipe to truncate).
                    if injector.draw("arm-sigkill", task.index) is not None:
                        raise FaultInjected(
                            "simulated abrupt death (arm-sigkill, serial)"
                        )
                    hang = injector.draw("arm-hang", task.index)
                    if hang is not None:
                        time.sleep(hang.duration)
                        raise FaultInjected(
                            "hung arm woke after its injected stall"
                        )
                    injector.fire_or_raise("arm-raise", task.index)
                succeeded, value, detail = task.run()
                cancelled = False
            except Eliminated as exc:  # pragma: no cover - no kills here
                succeeded, value, detail, cancelled = False, None, str(exc), True
            except Exception as exc:
                # A crashing body fails its arm instead of unwinding the
                # whole block -- the degraded serial replay depends on it.
                succeeded, value, detail, cancelled = False, None, repr(exc), False
                abnormal = True
            finished = time.perf_counter() - start
            reports.append(
                ArmReport(
                    index=task.index,
                    name=task.name,
                    succeeded=succeeded,
                    value=value,
                    detail=detail,
                    cancelled=cancelled,
                    abnormal=abnormal,
                    started_at=began,
                    finished_at=finished,
                    work_seconds=finished - began,
                )
            )
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.ARM_FINISH,
                    block=getattr(task.context, "trace_block", None),
                    arm=task.index,
                    name=task.name,
                    backend=self.name,
                    succeeded=succeeded,
                    cancelled=cancelled,
                    abnormal=abnormal,
                    work_seconds=finished - began,
                    detail=detail,
                )
            events.append(
                (
                    finished,
                    f"{task.name} "
                    + ("synchronizes" if succeeded else f"aborts: {detail}"),
                )
            )
            if succeeded and winner_index is None:
                winner_index = task.index
                winner_finish = finished
        total = time.perf_counter() - start
        return BackendRace(
            backend=self.name,
            reports=reports,
            winner_index=winner_index,
            elapsed=winner_finish if winner_finish is not None else total,
            total_seconds=total,
            events=events,
        )
