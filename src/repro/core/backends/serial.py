"""The serial (deterministic) execution backend.

Runs every arm's body to completion, one at a time, in spawn order --
exactly the execution discipline the simulator's virtual-concurrency race
assumes, and therefore the default: with a fixed seed, results are
bit-identical run to run.  The "race" is decided afterwards by the
executor's deterministic timing model, not by the wall clock, so this
backend never cancels anything.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.errors import Eliminated


class SerialBackend(ExecutionBackend):
    """Run arms sequentially; deterministic replay mode."""

    name = "serial"
    is_parallel = False

    def run_arms(
        self, tasks: List[ArmTask], timeout: Optional[float] = None
    ) -> BackendRace:
        start = time.perf_counter()
        reports: List[ArmReport] = []
        events = []
        winner_index: Optional[int] = None
        winner_finish: Optional[float] = None
        for task in tasks:
            began = time.perf_counter() - start
            try:
                succeeded, value, detail = task.run()
                cancelled = False
            except Eliminated as exc:  # pragma: no cover - no kills here
                succeeded, value, detail, cancelled = False, None, str(exc), True
            finished = time.perf_counter() - start
            reports.append(
                ArmReport(
                    index=task.index,
                    name=task.name,
                    succeeded=succeeded,
                    value=value,
                    detail=detail,
                    cancelled=cancelled,
                    started_at=began,
                    finished_at=finished,
                    work_seconds=finished - began,
                )
            )
            events.append(
                (
                    finished,
                    f"{task.name} "
                    + ("synchronizes" if succeeded else f"aborts: {detail}"),
                )
            )
            if succeeded and winner_index is None:
                winner_index = task.index
                winner_finish = finished
        total = time.perf_counter() - start
        return BackendRace(
            backend=self.name,
            reports=reports,
            winner_index=winner_index,
            elapsed=winner_finish if winner_finish is not None else total,
            total_seconds=total,
            events=events,
        )
