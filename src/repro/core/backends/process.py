"""The process execution backend: real ``os.fork`` racing with COW.

One forked child per arm, one result pipe per child.  Each child runs its
body against its private simulated address space (the whole simulated
store is duplicated by the OS fork's own copy-on-write, so siblings are
isolated twice over) and ships its outcome back as a checksum-framed
pickle record.  The first arm whose *intact* success record arrives wins
the rendezvous -- fastest-first at the wall clock.

Dirty-state shipback has two transports:

- **shm** (default where POSIX shared memory works): the parent maps one
  :class:`~repro.pages.shm.ShmSlab` per arm before forking; the child
  writes its dirty page images straight into slab slots (the mapping is
  fork-inherited) and the pipe record carries only ``(page, slot)``
  pairs.  Winner commit in the parent becomes a pointer swap
  (``AddressSpace.apply_shm_pages``): slots are adopted as external
  frames, no page image is ever pickled or copied.
- **pipe**: the historical path -- dirty page images ride inside the
  pickled record.  Used when shared memory is unavailable, when slab
  creation fails, when an arm ships nothing page-sized, or when the
  ``shm-attach-fail`` fault is injected; the fallback is per-arm and
  byte-equivalent.

A :class:`~repro.process.pool.WorldPool` may be attached (``pool=`` or
the ``REPRO_WORLD_POOL`` environment flag via ``get_backend``): arms
whose alternatives pickle are then *leased* to pre-warmed parked workers
over persistent pipes instead of being forked per race, amortizing the
paper's per-block setup cost.  Pooled workers speak the identical wire
format, honor the same SIGTERM-cancel / SIGKILL escalation, and fall
back to a direct fork per arm whenever leasing is impossible.

Elimination is two-stage, matching the paper's cooperative-then-forcible
reality: losers first receive ``SIGTERM``, whose handler cancels the
arm's :class:`~repro.core.backends.base.CancellationToken` so the body
stops at its next cooperative checkpoint and reports how much work it
actually did; any child still alive after ``kill_grace`` seconds is
``SIGKILL``-ed (the asynchronous hard kill of section 3.2.1) and its
report is synthesized.

Hardening beyond the paper's happy path:

- every record is framed ``magic | length | crc32``; a corrupt record is
  detected and demotes its arm to an abnormal failure instead of
  poisoning the race;
- a child that dies mid-shipback leaves a truncated frame on its private
  pipe; the parent detects the dangling bytes at EOF, marks the arm dead,
  and the next intact finisher is promoted -- a winner's death during
  shipback never fails the block while a sibling can still win;
- reaping is EINTR-safe, force-kills wedged children as a last resort,
  records each child's wait status on its report (``exit_signal``), and a
  module-level orphan sweep reclaims children leaked by a race that died
  before its own reap;
- slabs are refcounted with ``atexit`` unlinking, so even a parent crash
  mid-race leaks no ``/dev/shm`` segment;
- the :mod:`repro.resilience` fault injector is consulted at the
  ``arm-raise`` / ``arm-hang`` / ``arm-sigkill`` / ``pipe-truncate`` /
  ``record-corrupt`` / ``shm-attach-fail`` points, so every one of these
  failure modes is reproducible in tests.
"""

from __future__ import annotations

import errno
import os
import select
import signal
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.core.backends import wire
from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.core.backends.wire import (
    EXIT_HANG as _EXIT_HANG,
    EXIT_OK as _EXIT_OK,
    EXIT_SHIP_FAILED as _EXIT_SHIP_FAILED,
    EXIT_TRUNCATED as _EXIT_TRUNCATED,
    EXIT_UNPICKLABLE as _EXIT_UNPICKLABLE,
    FRAME as _FRAME,
    MAGIC as _MAGIC,
    RecordReader as _RecordReader,
    frame_record as _frame_record,
    write_all as _write_all,
    write_record as _write_record,
)
from repro.errors import Eliminated, FaultInjected
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.pages.shm import ShmShipment, ShmSlab, shm_available
from repro.resilience.injector import active as _active_injector

__all__ = ["ProcessBackend", "sweep_orphans"]

# ----------------------------------------------------------------------
# orphan registry: pids forked by any ProcessBackend in this process that
# have not been reaped yet.  A race that dies before its own reap leaves
# its children here; the next race (or an explicit sweep) reclaims them.
# Pool workers are deliberately *not* registered: their lifetime belongs
# to the WorldPool, which has its own shutdown and atexit discipline.
#
# Each pid is tagged with the *race scope* that forked it.  Races may run
# concurrently (a multi-tenant server races many blocks over one shared
# pool, with the fork fallback live on all of them), so the sweep must
# only reclaim children whose owning race has already exited -- killing
# any registered pid would assassinate a sibling race's healthy arms.


class _RaceScope:
    """Liveness tag for one ``run_arms`` invocation's forked children."""

    __slots__ = ("live",)

    def __init__(self) -> None:
        self.live = True


_orphan_lock = threading.Lock()
_orphan_pids: Dict[int, Optional[_RaceScope]] = {}


def _register_orphan(pid: int, scope: Optional[_RaceScope] = None) -> None:
    """Track a forked child; ``scope=None`` means immediately sweepable."""
    with _orphan_lock:
        _orphan_pids[pid] = scope


def _forget_orphan(pid: int) -> None:
    with _orphan_lock:
        _orphan_pids.pop(pid, None)


def sweep_orphans() -> int:
    """Force-kill and reap children leaked by a *finished* race.

    Returns the number of processes reclaimed.  Safe to call any time;
    every ``run_arms`` calls it on entry so no child is ever left
    unreaped across races, even after a parent-side crash.  Children of
    races still in flight are left alone -- concurrent races sharing
    this process must not reap each other's live arms.
    """
    with _orphan_lock:
        leaked = [
            pid
            for pid, scope in _orphan_pids.items()
            if scope is None or not scope.live
        ]
    swept = 0
    for pid in leaked:
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        if _waitpid_blocking(pid) is not None:
            swept += 1
        _forget_orphan(pid)
    return swept


def _waitpid_nohang(pid: int) -> Tuple[bool, Optional[int]]:
    """Non-blocking reap: ``(reaped, status)``; EINTR-safe."""
    while True:
        try:
            done, status = os.waitpid(pid, os.WNOHANG)
        except InterruptedError:  # pragma: no cover - EINTR, retried
            continue
        except ChildProcessError:
            return True, None  # already reaped elsewhere
        if done == 0:
            return False, None
        return True, status


def _waitpid_blocking(pid: int) -> Optional[int]:
    """Blocking reap; EINTR-safe; ``None`` when already reaped."""
    while True:
        try:
            _, status = os.waitpid(pid, 0)
        except InterruptedError:  # pragma: no cover - EINTR, retried
            continue
        except ChildProcessError:
            return None
        return status


# ----------------------------------------------------------------------
# child-side shipment assembly, shared by fork children and pool workers


def build_result_record(
    task_index: int,
    space,
    succeeded: bool,
    value,
    detail: str,
    cancelled: bool,
    abnormal: bool,
    began: float,
    finished: float,
    slab: Optional[ShmSlab] = None,
) -> dict:
    """Assemble one result record, shipping dirty pages the cheap way.

    With a writable ``slab``, dirty page images are written in place into
    slab slots and the record carries ``(page, slot)`` pairs -- the
    zero-copy transport.  Otherwise (no slab, slab too small, or a write
    failure) the images are inlined under ``dirty_pages``, which is the
    byte-equivalent pipe fallback.
    """
    record = {
        "index": task_index,
        "ok": succeeded,
        "cancelled": cancelled,
        "abnormal": abnormal,
        "detail": detail,
        "started": began,
        "finished": finished,
    }
    if not succeeded:
        return record
    record["value"] = value
    if space is None:
        return record
    dirty = sorted(space.table.dirty_pages)
    record["cow_faults"] = space.cow_faults
    record["pages_written"] = space.pages_written
    if slab is not None and 0 < len(dirty) <= slab.slots:
        try:
            pairs = []
            for slot, vpn in enumerate(dirty):
                slab.write_slot(slot, space.table.read_page_view(vpn))
                pairs.append((vpn, slot))
        except Exception:  # pragma: no cover - slab write failure
            pass
        else:
            record["shm_pages"] = pairs
            record["shm_slab"] = slab.name
            record["page_transport"] = "shm"
            return record
    record["dirty_pages"] = {vpn: space.table.read_page(vpn) for vpn in dirty}
    record["page_transport"] = "pipe"
    return record


class ProcessBackend(ExecutionBackend):
    """Race arms in forked OS processes; first intact success wins."""

    name = "process"
    is_parallel = True

    def __init__(
        self,
        kill_grace: float = 2.0,
        pool=None,
        page_transport: str = "auto",
    ) -> None:
        if not hasattr(os, "fork"):
            raise RuntimeError(
                "ProcessBackend requires os.fork; use ThreadBackend instead"
            )
        if kill_grace < 0:
            raise ValueError("kill_grace cannot be negative")
        if page_transport not in ("auto", "shm", "pipe"):
            raise ValueError(
                f"page_transport must be 'auto', 'shm', or 'pipe', "
                f"not {page_transport!r}"
            )
        self.kill_grace = kill_grace
        self.pool = pool
        """An attached :class:`~repro.process.pool.WorldPool` (or ``None``
        to fork every arm fresh)."""

        self.page_transport = page_transport
        self._race_pids: Dict[int, int] = {}
        self._race_seen: Set[int] = set()

    def resolved_transport(self) -> str:
        """The transport this backend will actually use: shm when asked
        for (or probing ``auto`` finds) working shared memory, else pipe."""
        if self.page_transport == "pipe":
            return "pipe"
        return "shm" if shm_available() else "pipe"

    # ------------------------------------------------------------------

    def run_arms(
        self,
        tasks: List[ArmTask],
        timeout: Optional[float] = None,
        collect_all: bool = False,
    ) -> BackendRace:
        sweep_orphans()
        scope = _RaceScope()
        start = time.perf_counter()
        pids: Dict[int, int] = {}
        pipes: Dict[int, int] = {}
        persistent: Set[int] = set()  # pool-owned fds: watched, never closed
        leases: Dict[int, object] = {}
        slabs: Dict[int, ShmSlab] = {}
        seen: Set[int] = set()
        clean_leases: Set[int] = set()
        self._race_pids = pids
        self._race_seen = seen
        use_shm = self.resolved_transport() == "shm"
        tracer = _active_tracer()
        race: Optional[BackendRace] = None
        try:
            for task in tasks:
                pre_fault, ship_fault, shm_fault = self._draw_faults(task.index)
                slab: Optional[ShmSlab] = None
                if use_shm and not shm_fault:
                    slab = self._create_slab(task)
                if slab is not None:
                    slabs[task.index] = slab
                    if tracer.enabled:
                        tracer.emit(
                            _ev.SHM_MAP,
                            block=getattr(task.context, "trace_block", None),
                            arm=task.index,
                            name=task.name,
                            slab=slab.name,
                            slots=slab.slots,
                            bytes=slab.size,
                        )
                lease = None
                if self.pool is not None:
                    lease = self.pool.lease(
                        task,
                        start,
                        pre_fault=pre_fault,
                        ship_fault=ship_fault,
                        slab=slab,
                    )
                if lease is not None:
                    leases[task.index] = lease
                    pids[task.index] = lease.pid
                    pipes[task.index] = lease.result_fd
                    persistent.add(lease.result_fd)
                    continue
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:
                    # Child: drop every parent-side read end we inherited.
                    try:
                        os.close(read_fd)
                        for sibling_fd in pipes.values():
                            os.close(sibling_fd)
                        self._child_main(
                            task, write_fd, start, pre_fault, ship_fault,
                            slab,
                        )
                    finally:  # pragma: no cover - _child_main never returns
                        os._exit(_EXIT_SHIP_FAILED)
                os.close(write_fd)
                pids[task.index] = pid
                pipes[task.index] = read_fd
                _register_orphan(pid, scope)
            race = self._collect(
                tasks, pids, pipes, start, timeout, seen, slabs,
                persistent, leases, clean_leases, collect_all,
            )
        finally:
            for fd in pipes.values():
                if fd in persistent:
                    continue  # the pool owns its result pipes
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - defensive
                    pass
            forked = {
                index: pid for index, pid in pids.items() if index not in leases
            }
            statuses = self._reap(forked)
            # Anything _reap could not collect stays registered; marking
            # the scope dead hands those pids to the next sweep without
            # exposing live siblings of concurrent races to it.
            scope.live = False
            if self.pool is not None and leases:
                statuses.update(self.pool.finish(leases, clean_leases))
            for index, slab in slabs.items():
                if race is not None:
                    try:
                        report = race.report(index)
                    except KeyError:  # pragma: no cover - defensive
                        report = None
                    if report is not None and report.shm_shipment is not None:
                        # Ownership moved to the shipment: whoever commits
                        # (or abandons) the race disposes it.  In collect
                        # mode every successful arm keeps its shipment,
                        # not just the winner.
                        continue
                slab.dispose()
            self._race_pids = {}
            self._race_seen = set()
        race.page_transport = "shm" if use_shm else "pipe"
        self._annotate_exit_statuses(race, seen, statuses)
        return race

    def terminate_arm(self, index: int, hard: bool = False) -> bool:
        """Signal one still-racing child (the watchdog's entry point)."""
        pid = self._race_pids.get(index)
        if pid is None or index in self._race_seen:
            return False
        try:
            os.kill(pid, signal.SIGKILL if hard else signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    # ------------------------------------------------------------------
    # child side

    @staticmethod
    def _create_slab(task: ArmTask) -> Optional[ShmSlab]:
        """One page-aligned slab sized to the arm's space (or ``None``).

        Any failure -- no space on the context, ``/dev/shm`` full,
        platform refusal -- degrades silently to the pipe transport.
        """
        space = getattr(task.context, "space", None)
        if space is None or space.num_pages < 1:
            return None
        try:
            return ShmSlab.create(
                slots=space.num_pages, slot_size=space.page_size
            )
        except Exception:
            return None

    @staticmethod
    def _draw_faults(
        index: int,
    ) -> Tuple[Optional[Tuple], Optional[Tuple], bool]:
        """Consult the injector for one arm, in the parent, pre-fork.

        Drawing here (instead of in the child) keeps fault counters and
        the firing log in the parent process: ``times=`` budgets span
        supervised retries correctly, and the autopsy can report what
        fired.  Returns ``(pre_fault, ship_fault, shm_fault)``:
        ``pre_fault`` is ``('sigkill'|'hang'|'raise', duration, detail)``
        or ``None``; ``ship_fault`` is ``('truncate', offset)``,
        ``('corrupt', None)``, or ``None``; ``shm_fault`` is True when
        the arm's slab mapping is injected to fail (the arm then ships
        over the pipe, exactly like a host without shared memory).
        """
        injector = _active_injector()
        if injector is None:
            return None, None, False
        pre_fault: Optional[Tuple] = None
        if injector.draw("arm-sigkill", index) is not None:
            pre_fault = ("sigkill", 0.0, "")
        else:
            hang = injector.draw("arm-hang", index)
            if hang is not None:
                pre_fault = ("hang", hang.duration, "")
            else:
                raised = injector.draw("arm-raise", index)
                if raised is not None:
                    pre_fault = (
                        "raise",
                        0.0,
                        raised.detail
                        or f"injected fault at arm-raise (arm {index})",
                    )
        ship_fault: Optional[Tuple] = None
        if pre_fault is None or pre_fault[0] == "raise":
            # Only arms that will actually ship a record draw ship faults.
            truncated = injector.draw("pipe-truncate", index)
            if truncated is not None:
                ship_fault = (
                    "truncate", wire.truncate_offset(truncated.detail)
                )
            elif injector.draw("record-corrupt", index) is not None:
                ship_fault = ("corrupt", None)
        shm_fault = injector.draw("shm-attach-fail", index) is not None
        return pre_fault, ship_fault, shm_fault

    @staticmethod
    def _child_main(
        task: ArmTask,
        write_fd: int,
        start: float,
        pre_fault: Optional[Tuple] = None,
        ship_fault: Optional[Tuple] = None,
        slab: Optional[ShmSlab] = None,
    ) -> None:
        token = getattr(task.context, "token", None)
        if token is not None:
            signal.signal(signal.SIGTERM, lambda signum, frame: token.cancel())
        # The forked child inherits the parent's tracer (same epoch, same
        # monotonic clock): record where its event log stands so only the
        # child's own events are shipped back with the result.
        tracer = _active_tracer()
        trace_mark = tracer.mark()
        began = time.perf_counter() - start
        abnormal = False
        try:
            if pre_fault is not None:
                kind, duration, fault_detail = pre_fault
                if kind == "sigkill":
                    # Die abruptly, exactly as a crashed arm would.
                    os.kill(os.getpid(), signal.SIGKILL)
                elif kind == "hang":
                    # Wedge: ignore the cooperative kill and stall.  Only
                    # the SIGKILL backstop (grace escalation, watchdog, or
                    # reap) gets rid of this child.
                    signal.signal(signal.SIGTERM, signal.SIG_IGN)
                    time.sleep(duration)
                    os._exit(_EXIT_HANG)
                elif kind == "raise":
                    raise FaultInjected(fault_detail)
            succeeded, value, detail = task.run()
            cancelled = False
        except Eliminated as exc:
            succeeded, value, detail, cancelled = False, None, str(exc), True
        except BaseException as exc:
            succeeded, value, detail, cancelled = False, None, repr(exc), False
            abnormal = True
        finished = time.perf_counter() - start
        record = build_result_record(
            task.index,
            getattr(task.context, "space", None),
            succeeded,
            value,
            detail,
            cancelled,
            abnormal,
            began,
            finished,
            slab=slab,
        )
        if tracer.enabled:
            record["trace"] = tracer.events_since(trace_mark)
        try:
            exit_code = _write_record(write_fd, record, ship_fault)
        except BaseException:
            # A real shipback failure (not EPIPE): surface it in the exit
            # status instead of vanishing.
            os._exit(_EXIT_SHIP_FAILED)
        os._exit(exit_code)

    # ------------------------------------------------------------------
    # parent side

    def _collect(
        self, tasks, pids, pipes, start, timeout, seen, slabs,
        persistent, leases, clean_leases, collect_all=False,
    ) -> BackendRace:
        readers = {index: _RecordReader() for index in pipes}
        fd_to_index = {fd: index for index, fd in pipes.items()}
        open_fds = set(pipes.values())
        reports = {
            task.index: ArmReport(index=task.index, name=task.name)
            for task in tasks
        }
        blocks = {
            task.index: getattr(task.context, "trace_block", None)
            for task in tasks
        }

        def trace_finish(report: ArmReport) -> None:
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.ARM_FINISH,
                    block=blocks.get(report.index),
                    arm=report.index,
                    name=report.name,
                    backend=self.name,
                    succeeded=report.succeeded,
                    cancelled=report.cancelled,
                    abnormal=report.abnormal,
                    work_seconds=report.work_seconds,
                    detail=report.detail,
                )

        events: List[tuple] = []
        winner_index: Optional[int] = None
        timed_out = False
        deadline = None if timeout is None else start + timeout
        grace_deadline: Optional[float] = None
        bail_deadline: Optional[float] = None

        def signal_racing(sig: int) -> None:
            for index, pid in pids.items():
                if index == winner_index or index in seen:
                    continue
                try:
                    os.kill(pid, sig)
                except ProcessLookupError:
                    pass

        def conclude_abnormal(index: int, detail: str) -> None:
            """An arm died without an intact record: demote it."""
            report = reports[index]
            now = time.perf_counter() - start
            report.cancelled = True
            report.abnormal = True
            report.detail = detail
            if not report.finished_at:
                report.finished_at = now
                report.work_seconds = now
            seen.add(index)
            events.append((now, f"{report.name} dies: {detail}"))
            trace_finish(report)

        while open_fds:
            now = time.perf_counter()
            waits = [
                candidate - now
                for candidate in (bail_deadline, grace_deadline, deadline)
                if candidate is not None
            ]
            wait = max(0.0, min(waits)) if waits else None
            try:
                ready, _, _ = select.select(list(open_fds), [], [], wait)
            except OSError as exc:  # pragma: no cover - platform dependent
                if exc.errno == errno.EINTR:
                    continue
                raise
            if not ready:
                now = time.perf_counter()
                if bail_deadline is not None and now >= bail_deadline:
                    # SIGKILLed stragglers still have not EOFed; the reap
                    # below will force the issue.  Do not spin forever.
                    break
                if grace_deadline is not None and now >= grace_deadline:
                    # Cooperative window over: hard-kill the stragglers.
                    signal_racing(signal.SIGKILL)
                    grace_deadline = None
                    bail_deadline = time.perf_counter() + 5.0
                    continue
                if deadline is not None and now >= deadline and not timed_out:
                    # The block deadline expired with no winner: deliver
                    # the termination instruction to everyone, then give
                    # the cooperative window before SIGKILL.
                    timed_out = True
                    signal_racing(signal.SIGTERM)
                    grace_deadline = time.perf_counter() + self.kill_grace
                    deadline = None
                continue
            for fd in ready:
                index = fd_to_index[fd]
                reader = readers[index]
                try:
                    data = os.read(fd, 65536)
                except InterruptedError:  # pragma: no cover - EINTR
                    continue
                if not data:
                    # EOF: a forked child exited -- or a pooled worker
                    # died mid-lease (its pipe outlives leases otherwise).
                    open_fds.discard(fd)
                    clean_leases.discard(index)
                    if index not in seen:
                        if reader.corrupt:
                            conclude_abnormal(index, reader.corrupt_detail)
                        elif reader.pending:
                            conclude_abnormal(
                                index,
                                "truncated result record "
                                "(child died mid-shipback)",
                            )
                        # else: no record at all -- synthesized after the
                        # loop, refined by the wait status.
                    continue
                for record in reader.feed(data):
                    if index in leases and not self._lease_record_valid(
                        record, leases[index]
                    ):
                        reader._mark_corrupt(
                            "stale pooled record (epoch mismatch)"
                        )
                        break
                    winner_index, grace_deadline = self._absorb_record(
                        record, index, reports, seen, events,
                        winner_index, timed_out, grace_deadline,
                        signal_racing, trace_finish, slabs,
                        collect_all=collect_all,
                    )
                if reader.corrupt and index not in seen:
                    conclude_abnormal(index, reader.corrupt_detail)
                if fd in persistent and index in seen:
                    # The pooled arm is accounted for; its worker parks.
                    open_fds.discard(fd)
                    if not reader.corrupt and not reader.pending:
                        clean_leases.add(index)

        total = time.perf_counter() - start
        for task in tasks:
            if task.index in seen:
                continue
            # Exited (or was SIGKILLed) without any record: synthesize.
            report = reports[task.index]
            report.cancelled = True
            report.abnormal = True
            report.detail = "exited without a result record"
            report.finished_at = total
            report.work_seconds = total
            events.append((total, f"kill {report.name} (forced)"))
            trace_finish(report)

        if winner_index is not None:
            elapsed = reports[winner_index].finished_at
        elif timed_out and timeout is not None:
            elapsed = timeout
        else:
            elapsed = total
        events.sort(key=lambda event: event[0])
        return BackendRace(
            backend=self.name,
            reports=[reports[task.index] for task in tasks],
            winner_index=winner_index,
            elapsed=elapsed,
            total_seconds=total,
            timed_out=timed_out,
            events=events,
        )

    @staticmethod
    def _lease_record_valid(record: dict, lease) -> bool:
        """A pooled record must echo its lease's snapshot epoch.

        A mismatch means the bytes on the persistent pipe belong to some
        earlier lease (a stale world): the record is discarded and the
        worker's stream treated as poisoned, so the arm concludes
        abnormally and the pool respawns the worker.
        """
        epoch = getattr(lease, "epoch", None)
        return epoch is None or record.get("pool_epoch") == epoch

    def _absorb_record(
        self, record, index, reports, seen, events,
        winner_index, timed_out, grace_deadline, signal_racing,
        trace_finish, slabs=None, collect_all=False,
    ):
        """Fold one intact record into the race state."""
        seen.add(index)
        shipped_trace = record.get("trace")
        if shipped_trace:
            # Events the child emitted (guard evaluations, nested blocks)
            # ride home with the result; same clock, same timeline.
            _active_tracer().absorb(shipped_trace)
        report = reports[index]
        report.started_at = record["started"]
        report.finished_at = record["finished"]
        report.work_seconds = record["finished"] - record["started"]
        report.detail = record["detail"]
        report.cancelled = record["cancelled"]
        report.abnormal = record.get("abnormal", False)
        if record["ok"]:
            shipment = None
            shm_pages = record.get("shm_pages")
            if shm_pages is not None:
                slab = (slabs or {}).get(index)
                if slab is None or record.get("shm_slab") != slab.name:
                    # The record points into a slab this race does not
                    # own: an unusable shipment.  Demote the arm so a
                    # sibling can still win.
                    report.abnormal = True
                    report.detail = (
                        "shm shipment names an unknown slab "
                        f"({record.get('shm_slab')!r})"
                    )
                    events.append(
                        (report.finished_at,
                         f"{report.name} aborts: {report.detail}")
                    )
                    trace_finish(report)
                    return winner_index, grace_deadline
                shipment = ShmShipment(
                    slab=slab,
                    pairs=[tuple(pair) for pair in shm_pages],
                )
            if (winner_index is None or collect_all) and not timed_out:
                if winner_index is None:
                    winner_index = index
                report.succeeded = True
                report.value = record["value"]
                report.dirty_pages = record.get("dirty_pages")
                report.shm_shipment = shipment
                report.page_transport = record.get("page_transport")
                report.cow_faults = record.get("cow_faults", 0)
                report.pages_written = record.get("pages_written", 0)
                events.append(
                    (report.finished_at, f"{report.name} synchronizes")
                )
                if not collect_all:
                    # Winner chosen: cooperative kill for the rest.
                    signal_racing(signal.SIGTERM)
                    grace_deadline = time.perf_counter() + self.kill_grace
            else:
                report.cancelled = True
                report.detail = "synchronized too late; sibling already won"
                events.append(
                    (report.finished_at, f"{report.name} too late")
                )
        elif record["cancelled"]:
            events.append((report.finished_at, f"kill {report.name}"))
        else:
            events.append(
                (
                    report.finished_at,
                    f"{report.name} aborts: {report.detail}",
                )
            )
        trace_finish(report)
        return winner_index, grace_deadline

    # ------------------------------------------------------------------
    # reaping

    def _reap(self, pids: Dict[int, int]) -> Dict[int, Optional[int]]:
        """Reap every forked child; force-kill anything still alive.

        Returns each arm's wait status (``None`` when the child was
        already reaped elsewhere).  Never blocks indefinitely: a child
        that has not exited gets SIGKILL before the blocking wait.
        Pooled workers are excluded -- the pool reaps (and respawns) its
        own dead.
        """
        statuses: Dict[int, Optional[int]] = {}
        for index, pid in pids.items():
            reaped, status = _waitpid_nohang(pid)
            if not reaped:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
                status = _waitpid_blocking(pid)
            statuses[index] = status
            _forget_orphan(pid)
        return statuses

    @staticmethod
    def _annotate_exit_statuses(race, seen, statuses) -> None:
        """Refine reports with what ``waitpid`` learned."""
        for report in race.reports:
            status = statuses.get(report.index)
            if status is None:
                continue
            if os.WIFSIGNALED(status):
                report.exit_signal = os.WTERMSIG(status)
                if report.index not in seen:
                    report.detail = (
                        f"killed by signal {report.exit_signal} "
                        "without a result record"
                    )
            elif os.WIFEXITED(status) and report.index not in seen:
                code = os.WEXITSTATUS(status)
                if code == _EXIT_SHIP_FAILED:
                    report.detail = (
                        "result shipback failed in the child "
                        "(serialization or pipe error)"
                    )
                elif code == _EXIT_HANG:
                    report.detail = "hung arm outlived the race"
                elif code != _EXIT_OK:
                    report.detail = (
                        f"exited with status {code} without a result record"
                    )
