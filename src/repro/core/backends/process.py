"""The process execution backend: real ``os.fork`` racing with COW.

One forked child per arm, one result pipe per child.  Each child runs its
body against its private simulated address space (the whole simulated
store is duplicated by the OS fork's own copy-on-write, so siblings are
isolated twice over) and ships its outcome back as a checksum-framed
pickle record; a successful record carries the child's dirty page images
so the parent can replay them into the simulated child space before the
``alt_wait`` page-pointer swap.  The first arm whose *intact* success
record arrives wins the rendezvous -- fastest-first at the wall clock.

Elimination is two-stage, matching the paper's cooperative-then-forcible
reality: losers first receive ``SIGTERM``, whose handler cancels the
arm's :class:`~repro.core.backends.base.CancellationToken` so the body
stops at its next cooperative checkpoint and reports how much work it
actually did; any child still alive after ``kill_grace`` seconds is
``SIGKILL``-ed (the asynchronous hard kill of section 3.2.1) and its
report is synthesized.

Hardening beyond the paper's happy path:

- every record is framed ``magic | length | crc32``; a corrupt record is
  detected and demotes its arm to an abnormal failure instead of
  poisoning the race;
- a child that dies mid-shipback leaves a truncated frame on its private
  pipe; the parent detects the dangling bytes at EOF, marks the arm dead,
  and the next intact finisher is promoted -- a winner's death during
  shipback never fails the block while a sibling can still win;
- reaping is EINTR-safe, force-kills wedged children as a last resort,
  records each child's wait status on its report (``exit_signal``), and a
  module-level orphan sweep reclaims children leaked by a race that died
  before its own reap;
- the :mod:`repro.resilience` fault injector is consulted at the
  ``arm-raise`` / ``arm-hang`` / ``arm-sigkill`` / ``pipe-truncate`` /
  ``record-corrupt`` points, so every one of these failure modes is
  reproducible in tests.
"""

from __future__ import annotations

import errno
import os
import pickle
import select
import signal
import struct
import threading
import time
import zlib
from typing import Dict, List, Optional, Set, Tuple

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.errors import Eliminated, FaultInjected
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.resilience.injector import active as _active_injector

_MAGIC = b"Rr"
_FRAME = struct.Struct("!2sII")  # magic, payload length, crc32(payload)
_MAX_RECORD = 1 << 30

# Child exit codes the parent can interpret when no intact record arrived.
_EXIT_OK = 0
_EXIT_UNPICKLABLE = 81  # fallback record shipped; real value was unpicklable
_EXIT_SHIP_FAILED = 82  # record could not be written at all
_EXIT_TRUNCATED = 83  # injected mid-shipback death
_EXIT_HANG = 84  # injected hang ran its full stall

# ----------------------------------------------------------------------
# orphan registry: pids forked by any ProcessBackend in this process that
# have not been reaped yet.  A race that dies before its own reap leaves
# its children here; the next race (or an explicit sweep) reclaims them.

_orphan_lock = threading.Lock()
_orphan_pids: Set[int] = set()


def _register_orphan(pid: int) -> None:
    with _orphan_lock:
        _orphan_pids.add(pid)


def _forget_orphan(pid: int) -> None:
    with _orphan_lock:
        _orphan_pids.discard(pid)


def sweep_orphans() -> int:
    """Force-kill and reap children leaked by a previous race.

    Returns the number of processes reclaimed.  Safe to call any time;
    every ``run_arms`` calls it on entry so no child is ever left
    unreaped across races, even after a parent-side crash.
    """
    with _orphan_lock:
        leaked = list(_orphan_pids)
    swept = 0
    for pid in leaked:
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        if _waitpid_blocking(pid) is not None:
            swept += 1
        _forget_orphan(pid)
    return swept


def _waitpid_nohang(pid: int) -> Tuple[bool, Optional[int]]:
    """Non-blocking reap: ``(reaped, status)``; EINTR-safe."""
    while True:
        try:
            done, status = os.waitpid(pid, os.WNOHANG)
        except InterruptedError:  # pragma: no cover - EINTR, retried
            continue
        except ChildProcessError:
            return True, None  # already reaped elsewhere
        if done == 0:
            return False, None
        return True, status


def _waitpid_blocking(pid: int) -> Optional[int]:
    """Blocking reap; EINTR-safe; ``None`` when already reaped."""
    while True:
        try:
            _, status = os.waitpid(pid, 0)
        except InterruptedError:  # pragma: no cover - EINTR, retried
            continue
        except ChildProcessError:
            return None
        return status


# ----------------------------------------------------------------------
# record framing

def _frame_record(payload: dict) -> Tuple[bytes, int]:
    """Frame ``payload`` as ``magic|len|crc32|pickle``.

    Returns ``(frame, exit_code)``: an unpicklable result is replaced by
    a failure record that *names* the serialization error (it must not
    vanish), and the child's exit code is set to ``_EXIT_UNPICKLABLE`` so
    the status surfaces it too.
    """
    exit_code = _EXIT_OK
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        stripped = {
            key: value
            for key, value in payload.items()
            if key not in ("value", "dirty_pages", "trace")
        }
        stripped["ok"] = False
        stripped["abnormal"] = True
        stripped["detail"] = (
            f"result not picklable across the fork boundary: {exc!r}"
        )
        blob = pickle.dumps(stripped, protocol=pickle.HIGHEST_PROTOCOL)
        exit_code = _EXIT_UNPICKLABLE
    frame = _FRAME.pack(_MAGIC, len(blob), zlib.crc32(blob) & 0xFFFFFFFF)
    return frame + blob, exit_code


def _write_all(fd: int, data: bytes) -> bool:
    """Write every byte; EINTR-safe.  EPIPE (the parent is gone, nobody
    will ever read this record) returns False; any other OS error -- a
    real shipback failure -- propagates so the child can surface it in
    its exit status instead of silently dropping the result."""
    view = memoryview(data)
    while view:
        try:
            written = os.write(fd, view)
        except InterruptedError:  # pragma: no cover - EINTR, retried
            continue
        except OSError as exc:
            if exc.errno == errno.EPIPE:
                return False
            raise
        view = view[written:]
    return True


def _write_record(fd: int, payload: dict, ship_fault: Optional[str] = None) -> int:
    """Frame and ship one record; returns the child exit code to use.

    ``ship_fault`` is the parent-drawn injector decision ('truncate' or
    'corrupt') -- decided *before* the fork so counters and the firing
    log live in the parent, where the autopsy reads them.
    """
    frame, exit_code = _frame_record(payload)
    if ship_fault == "truncate":
        # Die mid-shipback: leave a dangling partial frame.
        _write_all(fd, frame[: max(_FRAME.size + 1, len(frame) // 2)])
        return _EXIT_TRUNCATED
    if ship_fault == "corrupt":
        body = bytearray(frame)
        for position in range(_FRAME.size, len(body), 7):
            body[position] ^= 0xFF
        frame = bytes(body)
    _write_all(fd, frame)
    return exit_code


class _RecordReader:
    """Incremental checksum-framed record parser over one child's pipe."""

    def __init__(self) -> None:
        self._buffer = b""
        self.corrupt = False
        self.corrupt_detail = ""

    @property
    def pending(self) -> bool:
        """Bytes of an incomplete frame are sitting in the buffer."""
        return bool(self._buffer)

    def _mark_corrupt(self, detail: str) -> None:
        self.corrupt = True
        self.corrupt_detail = detail
        self._buffer = b""

    def feed(self, data: bytes) -> List[dict]:
        if self.corrupt:
            return []
        self._buffer += data
        records: List[dict] = []
        while True:
            if len(self._buffer) < _FRAME.size:
                return records
            magic, length, crc = _FRAME.unpack_from(self._buffer)
            if magic != _MAGIC or length > _MAX_RECORD:
                self._mark_corrupt("corrupt result record: bad frame header")
                return records
            if len(self._buffer) < _FRAME.size + length:
                return records
            blob = self._buffer[_FRAME.size:_FRAME.size + length]
            self._buffer = self._buffer[_FRAME.size + length:]
            if zlib.crc32(blob) & 0xFFFFFFFF != crc:
                self._mark_corrupt(
                    "corrupt result record: checksum mismatch"
                )
                return records
            try:
                records.append(pickle.loads(blob))
            except Exception as exc:
                self._mark_corrupt(
                    f"corrupt result record: undecodable payload ({exc!r})"
                )
                return records


class ProcessBackend(ExecutionBackend):
    """Race arms in forked OS processes; first intact success wins."""

    name = "process"
    is_parallel = True

    def __init__(self, kill_grace: float = 2.0) -> None:
        if not hasattr(os, "fork"):
            raise RuntimeError(
                "ProcessBackend requires os.fork; use ThreadBackend instead"
            )
        if kill_grace < 0:
            raise ValueError("kill_grace cannot be negative")
        self.kill_grace = kill_grace
        self._race_pids: Dict[int, int] = {}
        self._race_seen: Set[int] = set()

    # ------------------------------------------------------------------

    def run_arms(
        self, tasks: List[ArmTask], timeout: Optional[float] = None
    ) -> BackendRace:
        sweep_orphans()
        start = time.perf_counter()
        pids: Dict[int, int] = {}
        pipes: Dict[int, int] = {}
        seen: Set[int] = set()
        self._race_pids = pids
        self._race_seen = seen
        try:
            for task in tasks:
                pre_fault, ship_fault = self._draw_faults(task.index)
                read_fd, write_fd = os.pipe()
                pid = os.fork()
                if pid == 0:
                    # Child: drop every parent-side read end we inherited.
                    try:
                        os.close(read_fd)
                        for sibling_fd in pipes.values():
                            os.close(sibling_fd)
                        self._child_main(
                            task, write_fd, start, pre_fault, ship_fault
                        )
                    finally:  # pragma: no cover - _child_main never returns
                        os._exit(_EXIT_SHIP_FAILED)
                os.close(write_fd)
                pids[task.index] = pid
                pipes[task.index] = read_fd
                _register_orphan(pid)
            race = self._collect(tasks, pids, pipes, start, timeout, seen)
        finally:
            for fd in pipes.values():
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - defensive
                    pass
            statuses = self._reap(pids)
            self._race_pids = {}
            self._race_seen = set()
        self._annotate_exit_statuses(race, seen, statuses)
        return race

    def terminate_arm(self, index: int, hard: bool = False) -> bool:
        """Signal one still-racing child (the watchdog's entry point)."""
        pid = self._race_pids.get(index)
        if pid is None or index in self._race_seen:
            return False
        try:
            os.kill(pid, signal.SIGKILL if hard else signal.SIGTERM)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    # ------------------------------------------------------------------
    # child side

    @staticmethod
    def _draw_faults(index: int) -> Tuple[Optional[Tuple], Optional[str]]:
        """Consult the injector for one arm, in the parent, pre-fork.

        Drawing here (instead of in the child) keeps fault counters and
        the firing log in the parent process: ``times=`` budgets span
        supervised retries correctly, and the autopsy can report what
        fired.  Returns ``(pre_fault, ship_fault)`` for the child to act
        on: ``pre_fault`` is ``('sigkill'|'hang'|'raise', duration,
        detail)`` or ``None``; ``ship_fault`` is ``'truncate'``,
        ``'corrupt'``, or ``None``.
        """
        injector = _active_injector()
        if injector is None:
            return None, None
        pre_fault: Optional[Tuple] = None
        if injector.draw("arm-sigkill", index) is not None:
            pre_fault = ("sigkill", 0.0, "")
        else:
            hang = injector.draw("arm-hang", index)
            if hang is not None:
                pre_fault = ("hang", hang.duration, "")
            else:
                raised = injector.draw("arm-raise", index)
                if raised is not None:
                    pre_fault = (
                        "raise",
                        0.0,
                        raised.detail
                        or f"injected fault at arm-raise (arm {index})",
                    )
        ship_fault: Optional[str] = None
        if pre_fault is None or pre_fault[0] == "raise":
            # Only arms that will actually ship a record draw ship faults.
            if injector.draw("pipe-truncate", index) is not None:
                ship_fault = "truncate"
            elif injector.draw("record-corrupt", index) is not None:
                ship_fault = "corrupt"
        return pre_fault, ship_fault

    @staticmethod
    def _child_main(
        task: ArmTask,
        write_fd: int,
        start: float,
        pre_fault: Optional[Tuple] = None,
        ship_fault: Optional[str] = None,
    ) -> None:
        token = getattr(task.context, "token", None)
        if token is not None:
            signal.signal(signal.SIGTERM, lambda signum, frame: token.cancel())
        # The forked child inherits the parent's tracer (same epoch, same
        # monotonic clock): record where its event log stands so only the
        # child's own events are shipped back with the result.
        tracer = _active_tracer()
        trace_mark = tracer.mark()
        began = time.perf_counter() - start
        abnormal = False
        try:
            if pre_fault is not None:
                kind, duration, fault_detail = pre_fault
                if kind == "sigkill":
                    # Die abruptly, exactly as a crashed arm would.
                    os.kill(os.getpid(), signal.SIGKILL)
                elif kind == "hang":
                    # Wedge: ignore the cooperative kill and stall.  Only
                    # the SIGKILL backstop (grace escalation, watchdog, or
                    # reap) gets rid of this child.
                    signal.signal(signal.SIGTERM, signal.SIG_IGN)
                    time.sleep(duration)
                    os._exit(_EXIT_HANG)
                elif kind == "raise":
                    raise FaultInjected(fault_detail)
            succeeded, value, detail = task.run()
            cancelled = False
        except Eliminated as exc:
            succeeded, value, detail, cancelled = False, None, str(exc), True
        except BaseException as exc:
            succeeded, value, detail, cancelled = False, None, repr(exc), False
            abnormal = True
        finished = time.perf_counter() - start
        record = {
            "index": task.index,
            "ok": succeeded,
            "cancelled": cancelled,
            "abnormal": abnormal,
            "detail": detail,
            "started": began,
            "finished": finished,
        }
        if tracer.enabled:
            record["trace"] = tracer.events_since(trace_mark)
        if succeeded:
            record["value"] = value
            space = getattr(task.context, "space", None)
            if space is not None:
                record["dirty_pages"] = {
                    vpn: space.table.read_page(vpn)
                    for vpn in space.table.dirty_pages
                }
                record["cow_faults"] = space.cow_faults
                record["pages_written"] = space.pages_written
        try:
            exit_code = _write_record(write_fd, record, ship_fault)
        except BaseException:
            # A real shipback failure (not EPIPE): surface it in the exit
            # status instead of vanishing.
            os._exit(_EXIT_SHIP_FAILED)
        os._exit(exit_code)

    # ------------------------------------------------------------------
    # parent side

    def _collect(
        self, tasks, pids, pipes, start, timeout, seen
    ) -> BackendRace:
        readers = {index: _RecordReader() for index in pipes}
        fd_to_index = {fd: index for index, fd in pipes.items()}
        open_fds = set(pipes.values())
        reports = {
            task.index: ArmReport(index=task.index, name=task.name)
            for task in tasks
        }
        blocks = {
            task.index: getattr(task.context, "trace_block", None)
            for task in tasks
        }

        def trace_finish(report: ArmReport) -> None:
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.ARM_FINISH,
                    block=blocks.get(report.index),
                    arm=report.index,
                    name=report.name,
                    backend=self.name,
                    succeeded=report.succeeded,
                    cancelled=report.cancelled,
                    abnormal=report.abnormal,
                    work_seconds=report.work_seconds,
                    detail=report.detail,
                )

        events: List[tuple] = []
        winner_index: Optional[int] = None
        timed_out = False
        deadline = None if timeout is None else start + timeout
        grace_deadline: Optional[float] = None
        bail_deadline: Optional[float] = None

        def signal_racing(sig: int) -> None:
            for index, pid in pids.items():
                if index == winner_index or index in seen:
                    continue
                try:
                    os.kill(pid, sig)
                except ProcessLookupError:
                    pass

        def conclude_abnormal(index: int, detail: str) -> None:
            """An arm died without an intact record: demote it."""
            report = reports[index]
            now = time.perf_counter() - start
            report.cancelled = True
            report.abnormal = True
            report.detail = detail
            if not report.finished_at:
                report.finished_at = now
                report.work_seconds = now
            seen.add(index)
            events.append((now, f"{report.name} dies: {detail}"))
            trace_finish(report)

        while open_fds:
            now = time.perf_counter()
            waits = [
                candidate - now
                for candidate in (bail_deadline, grace_deadline, deadline)
                if candidate is not None
            ]
            wait = max(0.0, min(waits)) if waits else None
            try:
                ready, _, _ = select.select(list(open_fds), [], [], wait)
            except OSError as exc:  # pragma: no cover - platform dependent
                if exc.errno == errno.EINTR:
                    continue
                raise
            if not ready:
                now = time.perf_counter()
                if bail_deadline is not None and now >= bail_deadline:
                    # SIGKILLed stragglers still have not EOFed; the reap
                    # below will force the issue.  Do not spin forever.
                    break
                if grace_deadline is not None and now >= grace_deadline:
                    # Cooperative window over: hard-kill the stragglers.
                    signal_racing(signal.SIGKILL)
                    grace_deadline = None
                    bail_deadline = time.perf_counter() + 5.0
                    continue
                if deadline is not None and now >= deadline and not timed_out:
                    # The block deadline expired with no winner: deliver
                    # the termination instruction to everyone, then give
                    # the cooperative window before SIGKILL.
                    timed_out = True
                    signal_racing(signal.SIGTERM)
                    grace_deadline = time.perf_counter() + self.kill_grace
                    deadline = None
                continue
            for fd in ready:
                index = fd_to_index[fd]
                reader = readers[index]
                try:
                    data = os.read(fd, 65536)
                except InterruptedError:  # pragma: no cover - EINTR
                    continue
                if not data:
                    open_fds.discard(fd)
                    if index not in seen:
                        if reader.corrupt:
                            conclude_abnormal(index, reader.corrupt_detail)
                        elif reader.pending:
                            conclude_abnormal(
                                index,
                                "truncated result record "
                                "(child died mid-shipback)",
                            )
                        # else: no record at all -- synthesized after the
                        # loop, refined by the wait status.
                    continue
                for record in reader.feed(data):
                    winner_index, grace_deadline = self._absorb_record(
                        record, index, reports, seen, events,
                        winner_index, timed_out, grace_deadline,
                        signal_racing, trace_finish,
                    )
                if reader.corrupt and index not in seen:
                    conclude_abnormal(index, reader.corrupt_detail)

        total = time.perf_counter() - start
        for task in tasks:
            if task.index in seen:
                continue
            # Exited (or was SIGKILLed) without any record: synthesize.
            report = reports[task.index]
            report.cancelled = True
            report.abnormal = True
            report.detail = "exited without a result record"
            report.finished_at = total
            report.work_seconds = total
            events.append((total, f"kill {report.name} (forced)"))
            trace_finish(report)

        if winner_index is not None:
            elapsed = reports[winner_index].finished_at
        elif timed_out and timeout is not None:
            elapsed = timeout
        else:
            elapsed = total
        events.sort(key=lambda event: event[0])
        return BackendRace(
            backend=self.name,
            reports=[reports[task.index] for task in tasks],
            winner_index=winner_index,
            elapsed=elapsed,
            total_seconds=total,
            timed_out=timed_out,
            events=events,
        )

    def _absorb_record(
        self, record, index, reports, seen, events,
        winner_index, timed_out, grace_deadline, signal_racing,
        trace_finish,
    ):
        """Fold one intact record into the race state."""
        seen.add(index)
        shipped_trace = record.get("trace")
        if shipped_trace:
            # Events the child emitted (guard evaluations, nested blocks)
            # ride home with the result; same clock, same timeline.
            _active_tracer().absorb(shipped_trace)
        report = reports[index]
        report.started_at = record["started"]
        report.finished_at = record["finished"]
        report.work_seconds = record["finished"] - record["started"]
        report.detail = record["detail"]
        report.cancelled = record["cancelled"]
        report.abnormal = record.get("abnormal", False)
        if record["ok"]:
            if winner_index is None and not timed_out:
                winner_index = index
                report.succeeded = True
                report.value = record["value"]
                report.dirty_pages = record.get("dirty_pages")
                report.cow_faults = record.get("cow_faults", 0)
                report.pages_written = record.get("pages_written", 0)
                events.append(
                    (report.finished_at, f"{report.name} synchronizes")
                )
                # Winner chosen: cooperative kill for the rest.
                signal_racing(signal.SIGTERM)
                grace_deadline = time.perf_counter() + self.kill_grace
            else:
                report.cancelled = True
                report.detail = "synchronized too late; sibling already won"
                events.append(
                    (report.finished_at, f"{report.name} too late")
                )
        elif record["cancelled"]:
            events.append((report.finished_at, f"kill {report.name}"))
        else:
            events.append(
                (
                    report.finished_at,
                    f"{report.name} aborts: {report.detail}",
                )
            )
        trace_finish(report)
        return winner_index, grace_deadline

    # ------------------------------------------------------------------
    # reaping

    def _reap(self, pids: Dict[int, int]) -> Dict[int, Optional[int]]:
        """Reap every child; force-kill anything still alive.

        Returns each arm's wait status (``None`` when the child was
        already reaped elsewhere).  Never blocks indefinitely: a child
        that has not exited gets SIGKILL before the blocking wait.
        """
        statuses: Dict[int, Optional[int]] = {}
        for index, pid in pids.items():
            reaped, status = _waitpid_nohang(pid)
            if not reaped:
                try:
                    os.kill(pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError):
                    pass
                status = _waitpid_blocking(pid)
            statuses[index] = status
            _forget_orphan(pid)
        return statuses

    @staticmethod
    def _annotate_exit_statuses(race, seen, statuses) -> None:
        """Refine reports with what ``waitpid`` learned."""
        for report in race.reports:
            status = statuses.get(report.index)
            if status is None:
                continue
            if os.WIFSIGNALED(status):
                report.exit_signal = os.WTERMSIG(status)
                if report.index not in seen:
                    report.detail = (
                        f"killed by signal {report.exit_signal} "
                        "without a result record"
                    )
            elif os.WIFEXITED(status) and report.index not in seen:
                code = os.WEXITSTATUS(status)
                if code == _EXIT_SHIP_FAILED:
                    report.detail = (
                        "result shipback failed in the child "
                        "(serialization or pipe error)"
                    )
                elif code == _EXIT_HANG:
                    report.detail = "hung arm outlived the race"
                elif code != _EXIT_OK:
                    report.detail = (
                        f"exited with status {code} without a result record"
                    )
