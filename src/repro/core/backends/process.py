"""The process execution backend: real ``os.fork`` racing with COW.

One forked child per arm.  Each child runs its body against its private
simulated address space (the whole simulated store is duplicated by the
OS fork's own copy-on-write, so siblings are isolated twice over), and
reports its outcome over a shared pipe as a length-prefixed pickle
record.  The first success record the parent reads wins the rendezvous --
fastest-first at the wall clock -- and the winner's record carries its
dirty page images so the parent can replay them into the simulated child
space before the ``alt_wait`` page-pointer swap.

Elimination is two-stage, matching the paper's cooperative-then-forcible
reality: losers first receive ``SIGTERM``, whose handler cancels the
arm's :class:`~repro.core.backends.base.CancellationToken` so the body
stops at its next cooperative checkpoint and reports how much work it
actually did; any child still alive after ``kill_grace`` seconds is
``SIGKILL``-ed (the asynchronous hard kill of section 3.2.1) and its
report is synthesized.
"""

from __future__ import annotations

import errno
import os
import pickle
import select
import signal
import struct
import time
from typing import Dict, List, Optional

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.errors import Eliminated

_HEADER = struct.Struct("!I")


def _write_record(fd: int, payload: dict) -> None:
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        payload = {
            key: value
            for key, value in payload.items()
            if key not in ("value", "dirty_pages")
        }
        payload["ok"] = False
        payload["detail"] = "result not picklable across the fork boundary"
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(fd, _HEADER.pack(len(blob)) + blob)


class _RecordReader:
    """Incremental length-prefixed record parser over a pipe."""

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> List[dict]:
        self._buffer += data
        records = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return records
            (length,) = _HEADER.unpack(self._buffer[:_HEADER.size])
            if len(self._buffer) < _HEADER.size + length:
                return records
            blob = self._buffer[_HEADER.size:_HEADER.size + length]
            self._buffer = self._buffer[_HEADER.size + length:]
            records.append(pickle.loads(blob))


class ProcessBackend(ExecutionBackend):
    """Race arms in forked OS processes; first holding guard wins."""

    name = "process"
    is_parallel = True

    def __init__(self, kill_grace: float = 2.0) -> None:
        if not hasattr(os, "fork"):
            raise RuntimeError(
                "ProcessBackend requires os.fork; use ThreadBackend instead"
            )
        if kill_grace < 0:
            raise ValueError("kill_grace cannot be negative")
        self.kill_grace = kill_grace

    # ------------------------------------------------------------------

    def run_arms(
        self, tasks: List[ArmTask], timeout: Optional[float] = None
    ) -> BackendRace:
        start = time.perf_counter()
        read_fd, write_fd = os.pipe()
        pids: Dict[int, int] = {}
        for task in tasks:
            pid = os.fork()
            if pid == 0:
                os.close(read_fd)
                self._child_main(task, write_fd, start)
                os._exit(0)  # pragma: no cover - child exits in _child_main
            pids[task.index] = pid
        os.close(write_fd)
        try:
            return self._collect(tasks, pids, read_fd, start, timeout)
        finally:
            os.close(read_fd)
            self._reap(pids)

    # ------------------------------------------------------------------
    # child side

    @staticmethod
    def _child_main(task: ArmTask, write_fd: int, start: float) -> None:
        token = getattr(task.context, "token", None)
        if token is not None:
            signal.signal(signal.SIGTERM, lambda signum, frame: token.cancel())
        began = time.perf_counter() - start
        try:
            succeeded, value, detail = task.run()
            cancelled = False
        except Eliminated as exc:
            succeeded, value, detail, cancelled = False, None, str(exc), True
        except BaseException as exc:
            succeeded, value, detail, cancelled = False, None, repr(exc), False
        finished = time.perf_counter() - start
        record = {
            "index": task.index,
            "ok": succeeded,
            "cancelled": cancelled,
            "detail": detail,
            "started": began,
            "finished": finished,
        }
        if succeeded:
            record["value"] = value
            space = getattr(task.context, "space", None)
            if space is not None:
                record["dirty_pages"] = {
                    vpn: space.table.read_page(vpn)
                    for vpn in space.table.dirty_pages
                }
                record["cow_faults"] = space.cow_faults
                record["pages_written"] = space.pages_written
        try:
            _write_record(write_fd, record)
        except BaseException:  # pragma: no cover - parent went away
            os._exit(1)
        os._exit(0)

    # ------------------------------------------------------------------
    # parent side

    def _collect(self, tasks, pids, read_fd, start, timeout) -> BackendRace:
        reader = _RecordReader()
        reports = {
            task.index: ArmReport(index=task.index, name=task.name)
            for task in tasks
        }
        events: List[tuple] = []
        seen: set = set()
        winner_index: Optional[int] = None
        timed_out = False
        deadline = None if timeout is None else start + timeout
        grace_deadline: Optional[float] = None

        def signal_losers(sig: int) -> None:
            for index, pid in pids.items():
                if index == winner_index or index in seen:
                    continue
                try:
                    os.kill(pid, sig)
                except ProcessLookupError:
                    pass

        while len(seen) < len(tasks):
            now = time.perf_counter()
            wait = None
            if grace_deadline is not None:
                wait = max(0.0, grace_deadline - now)
            elif deadline is not None:
                wait = max(0.0, deadline - now)
            try:
                ready, _, _ = select.select([read_fd], [], [], wait)
            except OSError as exc:  # pragma: no cover - platform dependent
                if exc.errno == errno.EINTR:
                    continue
                raise
            if not ready:
                if grace_deadline is not None:
                    # Cooperative window over: hard-kill the stragglers.
                    signal_losers(signal.SIGKILL)
                    break
                # The block deadline expired with no winner: deliver the
                # termination instruction to everyone, then give the
                # cooperative window before SIGKILL.
                timed_out = True
                signal_losers(signal.SIGTERM)
                grace_deadline = time.perf_counter() + self.kill_grace
                continue
            data = os.read(read_fd, 65536)
            if not data:
                break  # every writer exited
            for record in reader.feed(data):
                index = record["index"]
                seen.add(index)
                report = reports[index]
                report.started_at = record["started"]
                report.finished_at = record["finished"]
                report.work_seconds = record["finished"] - record["started"]
                report.detail = record["detail"]
                report.cancelled = record["cancelled"]
                if record["ok"]:
                    if winner_index is None and not timed_out:
                        winner_index = index
                        report.succeeded = True
                        report.value = record["value"]
                        report.dirty_pages = record.get("dirty_pages")
                        report.cow_faults = record.get("cow_faults", 0)
                        report.pages_written = record.get("pages_written", 0)
                        events.append(
                            (report.finished_at, f"{report.name} synchronizes")
                        )
                        # Winner chosen: cooperative kill for the rest.
                        signal_losers(signal.SIGTERM)
                        grace_deadline = (
                            time.perf_counter() + self.kill_grace
                        )
                    else:
                        report.cancelled = True
                        report.detail = (
                            "synchronized too late; sibling already won"
                        )
                        events.append(
                            (report.finished_at, f"{report.name} too late")
                        )
                elif record["cancelled"]:
                    events.append((report.finished_at, f"kill {report.name}"))
                else:
                    events.append(
                        (
                            report.finished_at,
                            f"{report.name} aborts: {report.detail}",
                        )
                    )

        total = time.perf_counter() - start
        for task in tasks:
            if task.index in seen:
                continue
            # SIGKILLed without a record: synthesize its elimination.
            report = reports[task.index]
            report.cancelled = True
            report.detail = "hard-killed after grace period"
            report.finished_at = total
            report.work_seconds = total
            events.append((total, f"kill {report.name} (forced)"))

        if winner_index is not None:
            elapsed = reports[winner_index].finished_at
        elif timed_out and timeout is not None:
            elapsed = timeout
        else:
            elapsed = total
        events.sort(key=lambda event: event[0])
        return BackendRace(
            backend=self.name,
            reports=[reports[task.index] for task in tasks],
            winner_index=winner_index,
            elapsed=elapsed,
            total_seconds=total,
            timed_out=timed_out,
            events=events,
        )

    @staticmethod
    def _reap(pids: Dict[int, int]) -> None:
        for pid in pids.values():
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:  # pragma: no cover - already reaped
                pass
