"""The thread execution backend: real concurrent racing in one process.

One thread per arm; all bodies overlap for real.  Fastest-first is decided
at the wall clock: the first arm to report a holding guard claims the
rendezvous under the backend's lock (the at-most-once arbitration), and
every other arm's :class:`~repro.core.backends.base.CancellationToken` is
cancelled on the spot -- the section 3.2.1 termination instruction,
delivered while the losers are still running.  Losers observe it at their
next cooperative checkpoint (``ctx.check_eliminated()`` / ``ctx.sleep``)
and stop burning CPU; their measured ``work_seconds`` is the wasted-work
figure the paper's throughput analysis prices.

A successful arm that arrives after the winner is told "too late"
(reported as cancelled, its writes discarded), mirroring
:class:`~repro.errors.TooLate` in the simulated kernel.

State safety: each arm writes only its own COW page table; the shared
:class:`~repro.pages.store.PageStore` refcounts are lock-protected.

Threads cannot be killed, so a wedged arm is *abandoned* rather than
destroyed: once the race is decided (winner, failure of every other arm,
or timeout), stragglers get ``join_grace`` seconds to come home; past
that, the daemon thread is left behind, the arm's report is synthesized
as an abnormal death, and the backend returns.  ``join_grace=None``
restores the old block-until-everyone-finishes behaviour.  The
:mod:`repro.resilience` fault points ``arm-raise`` / ``arm-hang`` /
``arm-sigkill`` are consulted per arm (``arm-sigkill`` manifests as an
abrupt in-thread crash, the closest analogue available without a process
boundary).
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.errors import Eliminated, FaultInjected
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.resilience.injector import active as _active_injector


class ThreadBackend(ExecutionBackend):
    """Race arms in real threads; first holding guard wins."""

    name = "thread"
    is_parallel = True

    def __init__(self, join_grace: Optional[float] = 10.0) -> None:
        if join_grace is not None and join_grace < 0:
            raise ValueError("join_grace cannot be negative")
        self.join_grace = join_grace
        self._race_tasks: List[ArmTask] = []

    def terminate_arm(self, index: int, hard: bool = False) -> bool:
        """Cancel one arm's token (threads have no forcible kill)."""
        for task in self._race_tasks:
            if task.index != index:
                continue
            token = getattr(task.context, "token", None)
            if token is not None:
                token.cancel()
                return True
        return False

    def run_arms(
        self,
        tasks: List[ArmTask],
        timeout: Optional[float] = None,
        collect_all: bool = False,
    ) -> BackendRace:
        start = time.perf_counter()
        lock = threading.Lock()
        all_done = threading.Event()
        decided = threading.Event()
        state = {"winner": None, "timed_out": False, "remaining": len(tasks)}
        reports = {
            task.index: ArmReport(index=task.index, name=task.name)
            for task in tasks
        }
        abandoned: set = set()
        events: List[tuple] = []
        self._race_tasks = tasks
        blocks = {
            task.index: getattr(task.context, "trace_block", None)
            for task in tasks
        }

        def trace_finish(report: ArmReport) -> None:
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.ARM_FINISH,
                    block=blocks.get(report.index),
                    arm=report.index,
                    name=report.name,
                    backend=self.name,
                    succeeded=report.succeeded,
                    cancelled=report.cancelled,
                    abnormal=report.abnormal,
                    work_seconds=report.work_seconds,
                    detail=report.detail,
                )

        def cancel_all_except(keep: Optional[int]) -> None:
            for task in tasks:
                if task.index == keep:
                    continue
                token = getattr(task.context, "token", None)
                if token is not None:
                    token.cancel()

        def arm_main(task: ArmTask) -> None:
            report = reports[task.index]
            report.started_at = time.perf_counter() - start
            abnormal = False
            try:
                injector = _active_injector()
                if injector is not None:
                    if injector.draw("arm-sigkill", task.index) is not None:
                        raise FaultInjected(
                            "simulated abrupt death (arm-sigkill in-thread)"
                        )
                    hang = injector.draw("arm-hang", task.index)
                    if hang is not None:
                        # Non-cooperative stall: ignores the token.
                        time.sleep(hang.duration)
                        raise FaultInjected(
                            "hung arm woke after its injected stall"
                        )
                    injector.fire_or_raise("arm-raise", task.index)
                succeeded, value, detail = task.run()
                cancelled = False
            except Eliminated as exc:
                succeeded, value, detail, cancelled = False, None, str(exc), True
            except BaseException as exc:
                # A raising body cannot propagate out of its thread; it
                # becomes a failed (abnormal) arm, like a crashed child in
                # the forked-process backend.
                succeeded, value, detail, cancelled = False, None, repr(exc), False
                abnormal = True
            finished = time.perf_counter() - start
            with lock:
                if task.index in abandoned:
                    # The backend already returned this arm as hung; its
                    # late report must not rewrite history.
                    state["remaining"] -= 1
                    return
                report.finished_at = finished
                report.work_seconds = report.finished_at - report.started_at
                report.succeeded = succeeded
                report.value = value
                report.detail = detail
                report.cancelled = cancelled
                report.abnormal = abnormal
                if succeeded:
                    if state["winner"] is None and not state["timed_out"]:
                        state["winner"] = task.index
                        events.append(
                            (report.finished_at, f"{task.name} synchronizes")
                        )
                        if not collect_all:
                            cancel_all_except(task.index)
                        decided.set()
                    elif collect_all:
                        # Maximal-step mode: a later success is a
                        # co-committer, never "too late".
                        events.append(
                            (report.finished_at, f"{task.name} synchronizes")
                        )
                    else:
                        # Too late: a sibling already won the rendezvous.
                        report.succeeded = False
                        report.cancelled = True
                        report.value = None
                        report.detail = (
                            "synchronized too late; sibling already won"
                        )
                        events.append(
                            (report.finished_at, f"{task.name} too late")
                        )
                elif cancelled:
                    events.append((report.finished_at, f"kill {task.name}"))
                else:
                    events.append(
                        (report.finished_at, f"{task.name} aborts: {detail}")
                    )
                trace_finish(report)
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    all_done.set()
                    decided.set()

        threads = {
            task.index: threading.Thread(
                target=arm_main,
                args=(task,),
                name=f"alt-{task.name}",
                daemon=True,
            )
            for task in tasks
        }
        for thread in threads.values():
            thread.start()

        timed_out = False
        wait_event = all_done if collect_all else decided
        if timeout is not None:
            if not wait_event.wait(timeout):
                with lock:
                    if state["winner"] is None:
                        state["timed_out"] = True
                        timed_out = True
                if timed_out:
                    cancel_all_except(None)
        else:
            wait_event.wait()

        # Drain: give stragglers join_grace seconds, then abandon them.
        grace_deadline = (
            None
            if self.join_grace is None
            else time.perf_counter() + self.join_grace
        )
        for index, thread in threads.items():
            remaining = None
            if grace_deadline is not None:
                remaining = max(0.0, grace_deadline - time.perf_counter())
            thread.join(remaining)
            if not thread.is_alive():
                continue
            now = time.perf_counter() - start
            with lock:
                if reports[index].succeeded or index in abandoned:
                    continue
                abandoned.add(index)
                report = reports[index]
                report.cancelled = True
                report.abnormal = True
                report.detail = (
                    f"unresponsive arm abandoned after "
                    f"{self.join_grace:.3g}s grace (thread left behind)"
                )
                report.finished_at = now
                report.work_seconds = now - report.started_at
                events.append((now, f"abandon {report.name} (hung)"))
                trace_finish(report)

        total = time.perf_counter() - start
        self._race_tasks = []
        with lock:
            winner_index = state["winner"]
            ordered = [reports[task.index] for task in tasks]
            events_sorted = sorted(events, key=lambda event: event[0])
        if winner_index is not None:
            elapsed = reports[winner_index].finished_at
        elif timed_out and timeout is not None:
            elapsed = timeout
        else:
            elapsed = total
        return BackendRace(
            backend=self.name,
            reports=ordered,
            winner_index=winner_index,
            elapsed=elapsed,
            total_seconds=total,
            timed_out=timed_out,
            events=events_sorted,
        )
