"""The thread execution backend: real concurrent racing in one process.

One thread per arm; all bodies overlap for real.  Fastest-first is decided
at the wall clock: the first arm to report a holding guard claims the
rendezvous under the backend's lock (the at-most-once arbitration), and
every other arm's :class:`~repro.core.backends.base.CancellationToken` is
cancelled on the spot -- the section 3.2.1 termination instruction,
delivered while the losers are still running.  Losers observe it at their
next cooperative checkpoint (``ctx.check_eliminated()`` / ``ctx.sleep``)
and stop burning CPU; their measured ``work_seconds`` is the wasted-work
figure the paper's throughput analysis prices.

A successful arm that arrives after the winner is told "too late"
(reported as cancelled, its writes discarded), mirroring
:class:`~repro.errors.TooLate` in the simulated kernel.

State safety: each arm writes only its own COW page table; the shared
:class:`~repro.pages.store.PageStore` refcounts are lock-protected.  The
backend joins every thread before returning, so the parent's commit swap
runs strictly after all children have stopped -- a non-cooperative body
(one that never checks) delays return until it finishes, which is the
price of its opacity.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.errors import Eliminated


class ThreadBackend(ExecutionBackend):
    """Race arms in real threads; first holding guard wins."""

    name = "thread"
    is_parallel = True

    def run_arms(
        self, tasks: List[ArmTask], timeout: Optional[float] = None
    ) -> BackendRace:
        start = time.perf_counter()
        lock = threading.Lock()
        all_done = threading.Event()
        state = {"winner": None, "timed_out": False, "remaining": len(tasks)}
        reports = {
            task.index: ArmReport(index=task.index, name=task.name)
            for task in tasks
        }
        events: List[tuple] = []

        def cancel_all_except(keep: Optional[int]) -> None:
            for task in tasks:
                if task.index == keep:
                    continue
                token = getattr(task.context, "token", None)
                if token is not None:
                    token.cancel()

        def arm_main(task: ArmTask) -> None:
            report = reports[task.index]
            report.started_at = time.perf_counter() - start
            try:
                succeeded, value, detail = task.run()
                cancelled = False
            except Eliminated as exc:
                succeeded, value, detail, cancelled = False, None, str(exc), True
            except BaseException as exc:
                # A raising body cannot propagate out of its thread; it
                # becomes a failed arm, like in the forked-process backend.
                succeeded, value, detail, cancelled = False, None, repr(exc), False
            report.finished_at = time.perf_counter() - start
            report.work_seconds = report.finished_at - report.started_at
            with lock:
                report.succeeded = succeeded
                report.value = value
                report.detail = detail
                report.cancelled = cancelled
                if succeeded:
                    if state["winner"] is None and not state["timed_out"]:
                        state["winner"] = task.index
                        events.append(
                            (report.finished_at, f"{task.name} synchronizes")
                        )
                        cancel_all_except(task.index)
                    else:
                        # Too late: a sibling already won the rendezvous.
                        report.succeeded = False
                        report.cancelled = True
                        report.value = None
                        report.detail = (
                            "synchronized too late; sibling already won"
                        )
                        events.append(
                            (report.finished_at, f"{task.name} too late")
                        )
                elif cancelled:
                    events.append((report.finished_at, f"kill {task.name}"))
                else:
                    events.append(
                        (report.finished_at, f"{task.name} aborts: {detail}")
                    )
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    all_done.set()

        threads = [
            threading.Thread(
                target=arm_main,
                args=(task,),
                name=f"alt-{task.name}",
                daemon=True,
            )
            for task in tasks
        ]
        for thread in threads:
            thread.start()

        timed_out = False
        if timeout is not None and not all_done.wait(timeout):
            with lock:
                if state["winner"] is None:
                    state["timed_out"] = True
                    timed_out = True
            if timed_out:
                cancel_all_except(None)
        for thread in threads:
            thread.join()

        total = time.perf_counter() - start
        winner_index = state["winner"]
        if winner_index is not None:
            elapsed = reports[winner_index].finished_at
        elif timed_out and timeout is not None:
            elapsed = timeout
        else:
            elapsed = total
        ordered = [reports[task.index] for task in tasks]
        events.sort(key=lambda event: event[0])
        return BackendRace(
            backend=self.name,
            reports=ordered,
            winner_index=winner_index,
            elapsed=elapsed,
            total_seconds=total,
            timed_out=timed_out,
            events=events,
        )
