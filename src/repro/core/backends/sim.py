"""The simulated (schedule-controlled) execution backend.

Runs every arm body as a cooperative activity on a
:class:`~repro.check.runtime.CheckController`: real threads, but with a
strict handoff so at most one is ever unblocked, every ``ctx.sleep``
absorbed into virtual time, and every yield point routed through the
controller's pluggable scheduler.  The race semantics mirror the real
parallel backends exactly -- first success (in virtual time, before the
virtual deadline) wins and every loser's cancellation token is cancelled
-- which is why ``is_parallel`` is True and the executor drives it down
the same fastest-first path as threads and processes.

Determinism: given the same scheduler decisions and fault-injector
answers, a race is bit-identical, including every trace event's virtual
timings.  That is the property ``repro.check`` explores and replays.

The backend also checks a *dirty-coverage* invariant the wall-clock
backends cannot observe cheaply: at arm finish, every page whose bytes
changed since spawn must be present in the arm space's dirty set.  Page
bookkeeping bugs (like the PR 3 ``PageTable.adopt`` union bug) corrupt
the dirty set without corrupting bytes in-process, so this is the
checker's detection channel for them; violations are collected on
:attr:`SimBackend.last_violations`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    ExecutionBackend,
)
from repro.errors import Eliminated, FaultInjected
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.resilience.injector import active as _active_injector


def _space_of(task: ArmTask) -> Optional[Any]:
    context = task.context
    return getattr(context, "space", None) if context is not None else None


def _snapshot_pages(space: Any) -> Optional[List[bytes]]:
    try:
        num_pages = space.num_pages
        page_size = space.page_size
        return [
            bytes(space.read(vpn * page_size, page_size))
            for vpn in range(num_pages)
        ]
    except Exception:
        return None


class SimBackend(ExecutionBackend):
    """Race arms under a deterministic, schedule-controlled virtual clock."""

    name = "sim"
    is_parallel = True

    def __init__(self, scheduler: Any = None, recorder: Any = None) -> None:
        self.scheduler = scheduler
        self.recorder = recorder
        self.last_controller: Any = None
        self.last_violations: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------

    def terminate_arm(self, index: int, hard: bool = False) -> bool:
        controller = self.last_controller
        if controller is None:
            return False
        act = controller._activities.get(index)
        if act is None or act.token is None:
            return False
        act.token.cancel()
        return True

    # ------------------------------------------------------------------

    def _check_dirty_coverage(
        self, task: ArmTask, before: Optional[List[bytes]]
    ) -> None:
        """Changed-bytes-are-tracked invariant for one finishing arm."""
        space = _space_of(task)
        if space is None or before is None:
            return
        try:
            dirty = set(space.table.dirty_pages)
            page_size = space.page_size
            missing = []
            for vpn, old in enumerate(before):
                new = bytes(space.read(vpn * page_size, page_size))
                if new != old and vpn not in dirty:
                    missing.append(vpn)
        except Exception:
            return
        if missing:
            self.last_violations.append(
                {
                    "invariant": "dirty-coverage",
                    "arm": task.index,
                    "name": task.name,
                    "pages": missing,
                    "detail": (
                        f"arm {task.index} ({task.name}) changed pages "
                        f"{missing} whose vpns are absent from the dirty "
                        "set -- a winner merge would lose these writes"
                    ),
                }
            )

    def _make_runner(self, task: ArmTask, controller, reports, events):
        from repro.check import runtime as _rt

        space = _space_of(task)
        before = _snapshot_pages(space) if space is not None else None

        def runner() -> bool:
            began = controller.clock
            abnormal = False
            try:
                injector = _active_injector()
                if injector is not None:
                    if injector.draw("arm-sigkill", task.index) is not None:
                        raise FaultInjected(
                            "simulated abrupt death (arm-sigkill, sim)"
                        )
                    hang = injector.draw("arm-hang", task.index)
                    if hang is not None:
                        if not _rt.virtual_sleep(hang.duration):
                            time.sleep(hang.duration)  # pragma: no cover
                        raise FaultInjected(
                            "hung arm woke after its injected stall"
                        )
                    injector.fire_or_raise("arm-raise", task.index)
                succeeded, value, detail = task.run()
                cancelled = False
            except Eliminated as exc:
                succeeded, value, detail, cancelled = False, None, str(exc), True
            except Exception as exc:
                succeeded, value, detail, cancelled = False, None, repr(exc), False
                abnormal = True
            finished = controller.clock
            self._check_dirty_coverage(task, before)
            if succeeded and space is not None:
                # The arm's finish signature carries its dirty pages (as
                # judged by the shared independence engine) so the DPOR
                # conflict relation sees exactly what a maximal-step
                # commit would move.  Failed arms' writes are discarded,
                # so they stay signature-free.
                from repro.independence import default_engine, page_signature

                try:
                    dirty = default_engine.summarize(space.table.dirty_pages)
                except Exception:
                    dirty = ()
                controller.annotate_finish(
                    task.index,
                    tuple(page_signature(vpn) for vpn in sorted(dirty)),
                )
            reports[task.index] = ArmReport(
                index=task.index,
                name=task.name,
                succeeded=succeeded,
                value=value,
                detail=detail,
                cancelled=cancelled,
                abnormal=abnormal,
                started_at=began,
                finished_at=finished,
                work_seconds=finished - began,
            )
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.ARM_FINISH,
                    block=getattr(task.context, "trace_block", None),
                    arm=task.index,
                    name=task.name,
                    backend=self.name,
                    succeeded=succeeded,
                    cancelled=cancelled,
                    abnormal=abnormal,
                    work_seconds=finished - began,
                    detail=detail,
                )
            events.append(
                (
                    finished,
                    f"{task.name} "
                    + ("synchronizes" if succeeded else f"aborts: {detail}"),
                )
            )
            return succeeded

        return runner

    # ------------------------------------------------------------------

    def run_arms(
        self,
        tasks: List[ArmTask],
        timeout: Optional[float] = None,
        collect_all: bool = False,
    ) -> BackendRace:
        from repro.check import runtime as _rt

        controller = _rt.active()
        owns_controller = controller is None
        if owns_controller:
            controller = _rt.CheckController(
                scheduler=self.scheduler, recorder=self.recorder
            )
            _rt.install(controller)
        self.last_controller = controller
        self.last_violations = []
        reports: Dict[int, ArmReport] = {}
        events: List[Any] = []
        saved_cancel_on_win = controller.cancel_on_win
        try:
            controller.cancel_on_win = not collect_all
            controller.scheduler.begin_run()
            for task in tasks:
                token = getattr(task.context, "token", None)
                controller.spawn(
                    task.index,
                    task.name,
                    self._make_runner(task, controller, reports, events),
                    token=token,
                )
            controller.run(timeout=timeout)
        finally:
            controller.cancel_on_win = saved_cancel_on_win
            if owns_controller:
                _rt.uninstall(controller)
        winner_index = controller.winner_index
        report_list = [reports[t.index] for t in tasks if t.index in reports]
        winner_finish = (
            reports[winner_index].finished_at
            if winner_index is not None and winner_index in reports
            else None
        )
        return BackendRace(
            backend=self.name,
            reports=report_list,
            winner_index=winner_index,
            elapsed=(
                winner_finish if winner_finish is not None else controller.clock
            ),
            total_seconds=controller.clock,
            timed_out=controller.timed_out and winner_index is None,
            events=sorted(events, key=lambda pair: pair[0]),
        )
