"""Pluggable execution backends for alternative blocks.

``ConcurrentExecutor(backend=...)`` selects how spawned arms execute:

- :class:`SerialBackend` (default) -- bodies run one at a time and the
  race is decided by the deterministic virtual-concurrency timing model;
  bit-identical results for a fixed seed (the deterministic-replay mode
  tier-1 tests rely on).
- :class:`ThreadBackend` -- bodies overlap in real threads; fastest-first
  is decided at the wall clock and losers receive a cooperative
  :class:`CancellationToken` the instant the winner synchronizes.
- :class:`ProcessBackend` -- bodies race in forked OS processes on the
  kernel's real copy-on-write memory (where ``os.fork`` exists), with
  SIGTERM-delivered cooperative cancellation and a SIGKILL backstop.
- :class:`~repro.core.backends.sim.SimBackend` -- bodies run as
  cooperative activities on a deterministic virtual clock under a
  pluggable schedule (the ``repro.check`` model checker's backend);
  same fastest-first semantics as the real parallel backends, but every
  interleaving decision is recorded and replayable.

Use :func:`get_backend` to construct one by name (``"serial"``,
``"thread"``, ``"process"``, ``"sim"``).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.backends.base import (
    ArmReport,
    ArmTask,
    BackendRace,
    CancellationToken,
    ExecutionBackend,
)
from repro.core.backends.serial import SerialBackend
from repro.core.backends.thread import ThreadBackend
from repro.core.backends.process import ProcessBackend

BACKENDS = ("serial", "thread", "process", "sim")


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Construct an execution backend by name.

    ``"process"`` requires ``os.fork``; on platforms without it a
    :class:`RuntimeError` explains the situation (callers wanting a
    portable parallel backend should catch it and fall back to
    ``"thread"``).
    """
    normalized = name.strip().lower()
    if normalized == "serial":
        return SerialBackend(**kwargs)
    if normalized == "thread":
        return ThreadBackend(**kwargs)
    if normalized == "process":
        if (
            "pool" not in kwargs
            and os.environ.get("REPRO_WORLD_POOL", "").lower()
            in ("1", "true", "yes", "on")
        ):
            # Opt-in pre-warmed worker pool: arms lease parked workers
            # instead of forking fresh ones.  Explicit ``pool=`` (even
            # ``pool=None``) always wins over the environment.
            from repro.process.pool import default_pool

            kwargs["pool"] = default_pool()
        return ProcessBackend(**kwargs)
    if normalized == "sim":
        # Imported lazily: the checker's runtime is only needed when the
        # simulated backend is actually requested.
        from repro.core.backends.sim import SimBackend

        return SimBackend(**kwargs)
    raise ValueError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
    )


def default_parallel_backend() -> ExecutionBackend:
    """The best truly-parallel backend this host supports."""
    if hasattr(os, "fork"):
        return ProcessBackend()
    return ThreadBackend()  # pragma: no cover - non-UNIX host


__all__ = [
    "ArmReport",
    "ArmTask",
    "BACKENDS",
    "BackendRace",
    "CancellationToken",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "default_parallel_backend",
    "get_backend",
]
