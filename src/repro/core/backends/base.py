"""Execution-backend contract for alternative blocks.

The paper's ``alt_spawn(n)`` forks alternatives that *race*; which kind of
concurrency backs the race is an implementation choice the construct must
not leak (section 3.1's transparency requirement).  A backend receives one
:class:`ArmTask` per spawned arm and runs the bodies under its own notion
of concurrency:

- :class:`~repro.core.backends.serial.SerialBackend` runs them one at a
  time -- the deterministic default the simulator's timing model races
  *afterwards* under virtual concurrency;
- :class:`~repro.core.backends.thread.ThreadBackend` and
  :class:`~repro.core.backends.process.ProcessBackend` run them
  concurrently for real and implement fastest-first at the wall clock:
  the first arm whose guard holds wins the rendezvous and every other arm
  receives a cooperative :class:`CancellationToken` (the section 3.2.1
  termination instruction), checked inside
  :meth:`~repro.core.alternative.AltContext.check_eliminated`.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


class CancellationToken:
    """Delivery vehicle for one arm's termination instruction.

    Thread-safe and idempotent: :meth:`cancel` may be called by the
    backend (at winner selection), by the kernel's elimination drain, or
    by a signal handler in a forked child -- the first call wins and the
    rest are no-ops.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Deliver the termination instruction."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """True once elimination has been delivered."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until cancelled or ``timeout`` elapses; True if cancelled."""
        return self._event.wait(timeout)


@dataclass
class ArmTask:
    """One spawned alternative, ready for a backend to execute.

    ``run`` executes the arm's body against its private COW context and
    returns ``(succeeded, value, detail)``; it raises
    :class:`~repro.errors.Eliminated` if cancellation lands at one of the
    body's cooperative checkpoints.
    """

    index: int
    name: str
    run: Callable[[], Tuple[bool, Any, str]]
    context: Any = None
    """The arm's :class:`~repro.core.alternative.AltContext` (carries the
    cancellation token and the COW address space)."""

    alternative: Any = None
    """The :class:`~repro.core.alternative.Alternative` behind ``run``,
    when the executor can expose it.  A pre-warmed world pool ships this
    (by value, when picklable) to a parked worker instead of forking; a
    ``None`` or unpicklable alternative makes the arm fall back to a
    direct fork."""

    rng_seed: Optional[int] = None
    """Seed of the context's deterministic RNG, so a pooled worker can
    rebuild an equivalent context in another process."""


@dataclass
class ArmReport:
    """What one arm's execution looked like, in real time."""

    index: int
    name: str
    succeeded: bool = False
    value: Any = None
    detail: str = ""
    cancelled: bool = False
    """True when the arm stopped at a cooperative cancellation point (or
    was forcibly terminated) instead of running to completion."""

    started_at: float = 0.0
    """Seconds since the race started when the body began."""

    finished_at: float = 0.0
    """Seconds since the race started when the body stopped (completion,
    failure, or cancellation)."""

    work_seconds: float = 0.0
    """Wall seconds this arm actually executed -- for a cancelled loser,
    strictly less than its full-run cost; the measurable §3.2 saving."""

    dirty_pages: Optional[Dict[int, bytes]] = None
    """Winning child's dirty page images, shipped back by backends whose
    children run in another OS process (``None`` when the arm's writes
    are already visible in this process's simulated store, or when the
    shipment travelled through shared memory instead -- see
    :attr:`shm_shipment`)."""

    shm_shipment: Any = None
    """Winning child's dirty pages as a
    :class:`~repro.pages.shm.ShmShipment` of ``(page, slot)`` pointers
    into a shared-memory slab -- the zero-copy alternative to
    :attr:`dirty_pages`.  Whoever commits (or abandons) the race must
    ``dispose()`` the shipment's slab."""

    page_transport: Optional[str] = None
    """How this arm's dirty pages travelled home: ``"shm"`` (slab slot
    pointers), ``"pipe"`` (pickled images), or ``None`` when the arm ran
    in-process or shipped nothing."""

    cow_faults: int = 0
    pages_written: int = 0

    abnormal: bool = False
    """True when the arm *died* rather than failed: an unexpected
    exception, a signal, a hang, a truncated or corrupt result record.
    Semantic failures (guard not satisfied, acceptance test rejected)
    stay ``False`` -- only abnormal deaths are retryable under a
    :class:`~repro.resilience.Supervisor`."""

    exit_signal: Optional[int] = None
    """Signal number that terminated the arm's OS process, when the
    backend ran it in one and could observe the wait status."""


@dataclass
class BackendRace:
    """The outcome of one backend-run race."""

    backend: str
    reports: List[ArmReport]
    winner_index: Optional[int]
    """Index of the first arm whose guard held, ``None`` when every arm
    failed (or the deadline expired first)."""

    elapsed: float
    """Seconds from race start to the winner's synchronization (to the
    last completion when there is no winner)."""

    total_seconds: float
    """Seconds from race start until every arm was accounted for
    (includes cooperative-cancellation latency of the losers)."""

    timed_out: bool = False
    events: List[Tuple[float, str]] = field(default_factory=list)
    """Timeline events (relative seconds, label) for Figure-2 rendering."""

    page_transport: Optional[str] = None
    """The page-shipback transport this race resolved to (``"shm"`` or
    ``"pipe"`` for the fork backend, ``None`` for in-process backends)."""

    def report(self, index: int) -> ArmReport:
        for candidate in self.reports:
            if candidate.index == index:
                return candidate
        raise KeyError(f"no report for arm {index}")


class ExecutionBackend(ABC):
    """How the bodies of one alternative block actually execute."""

    name: str = "abstract"
    is_parallel: bool = False
    """True when arms genuinely overlap in real time; the executor then
    selects fastest-first at the wall clock instead of simulating the
    race."""

    @abstractmethod
    def run_arms(
        self,
        tasks: List[ArmTask],
        timeout: Optional[float] = None,
        collect_all: bool = False,
    ) -> BackendRace:
        """Execute every task; return per-arm reports and the winner.

        ``collect_all=True`` is the maximal-step mode: the first success
        does *not* terminate its siblings, no late success is demoted to
        "too late", and every successful arm's writes are preserved on
        its report -- the executor then validates page-disjointness and
        commits all of them as one step (or falls back to classic
        first-success selection).  ``winner_index`` still names the
        temporally-first success so the fallback needs no re-race.
        """

    def terminate_arm(self, index: int, hard: bool = False) -> bool:
        """Deliver a termination instruction to one still-racing arm.

        The supervisor's watchdog calls this from another thread while
        :meth:`run_arms` blocks: ``hard=False`` is the cooperative kill
        (cancellation token / SIGTERM), ``hard=True`` the forcible one
        (SIGKILL where the backend commands an OS process).  Returns True
        when a delivery was attempted; the base implementation knows no
        arms and returns False.  Idempotent and safe on finished arms.
        """
        return False
