"""Real-process racing on the host kernel's copy-on-write fork.

The simulated executor reproduces the paper's *analysis*; this module
demonstrates the *mechanism* on a real UNIX descendant.  ``os.fork`` on
Linux is precisely the copy-on-write fork the paper measures in section
4.4: the child shares every page with the parent until one of them writes.

Differences from the paper's kernel design, by necessity of running as an
unprivileged user process:

- The parent cannot adopt the winner's page tables, so the winner ships
  its result value (and any explicitly exported state) back over a pipe
  instead of through the page-pointer swap.  The at-most-once selection is
  enforced by the parent reading a single byte-stream: the first complete
  success record wins.
- Sibling elimination is ``SIGKILL``, issued after the winner is chosen --
  the asynchronous flavour of section 3.2.1.

Use :func:`OsHost.race` for the general fastest-first primitive and
:meth:`OsHost.run` for racing :class:`~repro.core.Alternative` arms.
"""

from __future__ import annotations

import errno
import os
import pickle
import select
import signal
import struct
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.alternative import AltContext, Alternative
from repro.errors import AltBlockFailure, AltTimeout, GuardFailure
from repro.pages.address_space import AddressSpace
from repro.pages.store import PageStore

_HEADER = struct.Struct("!I")


@dataclass
class OsRaceOutcome:
    """The fate of one racer process."""

    index: int
    name: str
    status: str
    """'won', 'failed', 'killed', or 'crashed'."""

    value: Any = None
    detail: str = ""
    pid: Optional[int] = None


@dataclass
class OsRaceResult:
    """Result of one real-process race."""

    value: Any
    winner: OsRaceOutcome
    outcomes: List[OsRaceOutcome]
    elapsed: float
    """Real wall-clock seconds from first fork to winner selection."""

    exports: Dict[str, Any] = field(default_factory=dict)
    """State the winning child chose to ship back to the parent."""


class _ChildApi:
    """What a racing callable receives: an export dict and a fail hook."""

    def __init__(self, index: int, name: str) -> None:
        self.index = index
        self.name = name
        self.exports: Dict[str, Any] = {}

    def export(self, key: str, value: Any) -> None:
        """Make ``key: value`` part of the state the parent absorbs if
        this racer wins (the value-shipping stand-in for the page swap)."""
        self.exports[key] = value

    def fail(self, reason: str = "guard condition not satisfied") -> None:
        """Abort this racer without synchronizing."""
        raise GuardFailure(reason)


def _write_record(fd: int, payload: dict) -> None:
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    os.write(fd, _HEADER.pack(len(blob)) + blob)


class _RecordReader:
    """Incremental length-prefixed record parser over a pipe."""

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> List[dict]:
        self._buffer += data
        records = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return records
            (length,) = _HEADER.unpack(self._buffer[:_HEADER.size])
            if len(self._buffer) < _HEADER.size + length:
                return records
            blob = self._buffer[_HEADER.size:_HEADER.size + length]
            self._buffer = self._buffer[_HEADER.size + length:]
            records.append(pickle.loads(blob))


@dataclass(frozen=True)
class ForkMeasurement:
    """One real COW-fork measurement on the host (section 4.4 style)."""

    space_bytes: int
    fraction_written: float
    trials: int
    mean_seconds: float
    min_seconds: float
    max_seconds: float


def measure_fork_cost(
    space_bytes: int = 320 * 1024,
    fraction_written: float = 0.0,
    trials: int = 5,
    page_size: int = 4096,
) -> ForkMeasurement:
    """Measure a real ``fork()`` + child page-touch round trip.

    Reproduces the paper's section 4.4 methodology on the host kernel:
    allocate an address-space extent of ``space_bytes``, fork, have the
    child dirty ``fraction_written`` of the pages (each write is a real
    copy-on-write fault), and time until the child signals completion.
    """
    if not hasattr(os, "fork"):
        raise RuntimeError("measure_fork_cost requires os.fork")
    if not 0.0 <= fraction_written <= 1.0:
        raise ValueError("fraction_written must be in [0, 1]")
    if trials < 1:
        raise ValueError("need at least one trial")
    buffer = bytearray(space_bytes)
    limit = int(space_bytes * fraction_written)
    samples = []
    for _ in range(trials):
        read_fd, write_fd = os.pipe()
        start = time.monotonic()
        pid = os.fork()
        if pid == 0:
            for offset in range(0, limit, page_size):
                buffer[offset] = 1  # COW fault
            os.write(write_fd, b"x")
            os._exit(0)
        os.read(read_fd, 1)
        samples.append(time.monotonic() - start)
        os.waitpid(pid, 0)
        os.close(read_fd)
        os.close(write_fd)
    return ForkMeasurement(
        space_bytes=space_bytes,
        fraction_written=fraction_written,
        trials=trials,
        mean_seconds=sum(samples) / len(samples),
        min_seconds=min(samples),
        max_seconds=max(samples),
    )


class OsHost:
    """Fastest-first racing of Python callables in forked processes."""

    def __init__(self, timeout: Optional[float] = None) -> None:
        self.timeout = timeout

    # ------------------------------------------------------------------

    def race(
        self,
        callables: Sequence[Callable[[_ChildApi], Any]],
        names: Optional[Sequence[str]] = None,
    ) -> OsRaceResult:
        """Fork one child per callable; first success wins.

        Each callable receives a :class:`_ChildApi`.  Raising any
        exception in a child counts as that alternative failing its guard.
        Raises :class:`AltBlockFailure` if every child fails and
        :class:`AltTimeout` if the deadline passes with no winner.
        """
        if not callables:
            raise ValueError("need at least one callable to race")
        names = list(names) if names is not None else [
            f"alt-{i}" for i in range(len(callables))
        ]
        if len(names) != len(callables):
            raise ValueError("names and callables must pair up")

        read_fd, write_fd = os.pipe()
        pids: Dict[int, int] = {}
        outcomes = [
            OsRaceOutcome(index=i, name=names[i], status="racing")
            for i in range(len(callables))
        ]
        start = time.monotonic()
        for index, fn in enumerate(callables):
            pid = os.fork()
            if pid == 0:
                os.close(read_fd)
                self._child_main(index, names[index], fn, write_fd)
                os._exit(0)  # pragma: no cover - child always exits above
            pids[index] = pid
            outcomes[index].pid = pid
        os.close(write_fd)

        try:
            return self._collect(read_fd, pids, outcomes, start)
        finally:
            os.close(read_fd)
            self._kill_survivors(pids, outcomes)
            self._reap(pids)

    @staticmethod
    def _child_main(index, name, fn, write_fd) -> None:
        api = _ChildApi(index, name)
        try:
            value = fn(api)
            record = {
                "index": index,
                "ok": True,
                "value": value,
                "exports": api.exports,
            }
        except BaseException as exc:
            record = {"index": index, "ok": False, "detail": repr(exc)}
        try:
            _write_record(write_fd, record)
        except BaseException:
            os._exit(1)
        os._exit(0)

    def _collect(self, read_fd, pids, outcomes, start) -> OsRaceResult:
        reader = _RecordReader()
        failures = 0
        deadline = None if self.timeout is None else start + self.timeout
        while failures < len(pids):
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            ready, _, _ = select.select([read_fd], [], [], remaining)
            if not ready:
                raise self._timeout_error(outcomes, start)
            try:
                data = os.read(read_fd, 65536)
            except OSError as exc:  # pragma: no cover - platform dependent
                if exc.errno == errno.EINTR:
                    continue
                raise
            if not data:
                break  # all writers exited
            for record in reader.feed(data):
                index = record["index"]
                if record["ok"]:
                    outcomes[index].status = "won"
                    outcomes[index].value = record["value"]
                    elapsed = time.monotonic() - start
                    return OsRaceResult(
                        value=record["value"],
                        winner=outcomes[index],
                        outcomes=outcomes,
                        elapsed=elapsed,
                        exports=record.get("exports", {}),
                    )
                outcomes[index].status = "failed"
                outcomes[index].detail = record.get("detail", "")
                failures += 1
        error = AltBlockFailure(
            f"all {len(pids)} racing alternatives failed"
        )
        error.outcomes = outcomes
        raise error

    def _timeout_error(self, outcomes, start) -> AltTimeout:
        error = AltTimeout(
            f"no racer succeeded within {self.timeout} seconds"
        )
        error.outcomes = outcomes
        error.elapsed = time.monotonic() - start
        return error

    @staticmethod
    def _kill_survivors(pids: Dict[int, int], outcomes) -> None:
        for index, pid in pids.items():
            if outcomes[index].status == "racing":
                try:
                    os.kill(pid, signal.SIGKILL)
                    outcomes[index].status = "killed"
                except ProcessLookupError:
                    outcomes[index].status = "crashed"

    @staticmethod
    def _reap(pids: Dict[int, int]) -> None:
        for pid in pids.values():
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:  # pragma: no cover - already reaped
                pass

    # ------------------------------------------------------------------
    # Alternative-based front end

    def run(self, alternatives: Sequence[Alternative]) -> OsRaceResult:
        """Race :class:`Alternative` arms as real processes.

        Each arm's body runs against a private in-child
        :class:`AltContext` (a small page-backed space forked with the OS
        process, so it is genuinely copy-on-write in host memory); the
        winner's context variables come back as ``exports``.
        """
        if not alternatives:
            raise ValueError("an alternative block needs at least one arm")
        store = PageStore()
        base_space = AddressSpace(store, 64 * 1024)

        def make_runner(arm: Alternative, index: int):
            def runner(api: _ChildApi) -> Any:
                context = AltContext(base_space, alt_index=index + 1, name=arm.name)
                if arm.pre_guard is not None and not arm.pre_guard(context):
                    api.fail("pre-guard not satisfied")
                value = arm.body(context)
                if arm.guard is not None and not arm.guard(context, value):
                    api.fail("acceptance test failed")
                for name in context.space.names():
                    api.export(name, context.space.get(name))
                return value

            return runner

        runners = [make_runner(arm, i) for i, arm in enumerate(alternatives)]
        return self.race(runners, names=[a.name for a in alternatives])
