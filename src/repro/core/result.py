"""Outcome records for alternative-block executions.

:class:`AltResult` reports what section 4 of the paper analyzes: the
selected value and winner, the parent-observed elapsed time, the overhead
decomposition (setup / runtime / selection), the wasted work, and the
standalone execution times needed to compute the performance improvement

    PI = tau(C_mean) / (tau(C_best) + tau(overhead)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class OverheadBreakdown:
    """The three overhead components of section 4.2."""

    setup: float = 0.0
    """Creating execution environments: process table entries, page maps."""

    runtime: float = 0.0
    """COW page copies plus CPU cycles lost to sharing with siblings."""

    selection: float = 0.0
    """Synchronization, sibling elimination, committing the updates."""

    @property
    def total(self) -> float:
        """tau(overhead) = setup + runtime + selection."""
        return self.setup + self.runtime + self.selection

    def __add__(self, other: "OverheadBreakdown") -> "OverheadBreakdown":
        return OverheadBreakdown(
            setup=self.setup + other.setup,
            runtime=self.runtime + other.runtime,
            selection=self.selection + other.selection,
        )


@dataclass
class AltOutcome:
    """The fate of one alternative in one block execution."""

    index: int
    name: str
    status: str
    """One of 'won', 'failed', 'eliminated', 'not_spawned', 'untried'."""

    value: Any = None
    duration: Optional[float] = None
    """Standalone simulated execution time (tau(C_i, x)), when known."""

    pages_written: int = 0
    pid: Optional[int] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    cpu_consumed: float = 0.0
    detail: str = ""

    @property
    def succeeded(self) -> bool:
        """True when this alternative won the block."""
        return self.status == "won"


@dataclass
class AltResult:
    """The result of executing one alternative block."""

    value: Any
    winner: AltOutcome
    outcomes: List[AltOutcome]
    elapsed: float
    """Wall-clock (simulated) time from block entry to parent resume."""

    overhead: OverheadBreakdown = field(default_factory=OverheadBreakdown)
    wasted_work: float = 0.0
    """CPU-seconds consumed by non-selected alternatives (throughput
    price, section 4.1 item 3)."""

    timeline: List[Tuple[float, str]] = field(default_factory=list)
    """Labelled events for rendering the Figure 2 execution diagram."""

    autopsy: Any = None
    """A :class:`~repro.resilience.RaceAutopsy` when the block ran under a
    :class:`~repro.resilience.Supervisor`; ``None`` otherwise."""

    trace: Any = None
    """A :class:`~repro.obs.BlockTrace` (this block's slice of the
    installed tracer's event stream) when tracing was on; ``None``
    otherwise."""

    page_transport: Optional[str] = None
    """How the winner's dirty pages reached the parent: ``"shm"``
    (pointer swap through a shared-memory slab), ``"pipe"`` (pickled
    images over the result pipe), or ``None`` when the winner ran in
    the parent process."""

    @property
    def durations(self) -> List[float]:
        """Standalone execution times of all alternatives that ran."""
        return [o.duration for o in self.outcomes if o.duration is not None]

    @property
    def tau_best(self) -> float:
        """tau(C_best, x): the fastest standalone execution time."""
        durations = self.durations
        if not durations:
            raise ValueError("no alternative ran to completion")
        return min(durations)

    @property
    def tau_mean(self) -> float:
        """tau(C_mean, x): the arithmetic mean -- the expected cost of the
        non-deterministic sequential baseline (Scheme B)."""
        durations = self.durations
        if not durations:
            raise ValueError("no alternative ran to completion")
        return sum(durations) / len(durations)

    @property
    def performance_improvement(self) -> float:
        """Measured PI: sequential-mean time over actual elapsed time."""
        if self.elapsed <= 0:
            return float("inf")
        return self.tau_mean / self.elapsed

    def outcome(self, name: str) -> AltOutcome:
        """Look up an outcome by alternative name."""
        for candidate in self.outcomes:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no alternative named {name!r}")

    def __repr__(self) -> str:
        return (
            f"AltResult(winner={self.winner.name!r}, value={self.value!r}, "
            f"elapsed={self.elapsed:.6g}, overhead={self.overhead.total:.6g})"
        )
