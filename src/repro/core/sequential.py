"""Sequential execution of an alternative block (paper section 2).

The observable semantics: exactly one successful alternative's state
changes take effect (or the block fails), and a post facto examiner cannot
tell more than that some alternative was selected non-deterministically.

Two modes are provided:

- ``try_all=True`` (default): alternatives are tried in policy order with
  rollback between failures -- the recovery-block shape.  Rollback is free
  because every trial runs in a COW fork of the caller's world.
- ``try_all=False``: the Scheme B baseline of section 4.2 -- commit to one
  randomly selected alternative; if it fails, the block fails ('failures
  or infinite loops will frustrate this method').

Elapsed simulated time is the sum of the durations of the alternatives
actually tried; selection itself 'costs nothing for purposes of our
analysis'.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import time as _time

from repro.check.runtime import (
    checkpoint as _checkpoint,
    virtual_sleep as _virtual_sleep,
)
from repro.core.alternative import AltContext, Alternative
from repro.core.result import AltOutcome, AltResult, OverheadBreakdown
from repro.core.selection import RandomPolicy, SelectionPolicy
from repro.errors import AltBlockFailure, GuardFailure
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.pages.store import PageStore
from repro.process.primitives import ProcessManager
from repro.process.process import SimProcess
from repro.resilience.injector import active as _active_injector


class SequentialExecutor:
    """Run an alternative block one alternative at a time."""

    def __init__(
        self,
        policy: Optional[SelectionPolicy] = None,
        try_all: bool = True,
        seed: int = 0,
        manager: Optional[ProcessManager] = None,
        space_size: int = 64 * 1024,
    ) -> None:
        self.policy = policy if policy is not None else RandomPolicy()
        self.try_all = try_all
        self.seed = seed
        self.manager = manager if manager is not None else ProcessManager(PageStore())
        self.space_size = space_size

    def new_parent(self) -> SimProcess:
        """A fresh root process whose space callers may preload."""
        return self.manager.create_initial(space_size=self.space_size)

    def run(
        self,
        alternatives: Sequence[Alternative],
        parent: Optional[SimProcess] = None,
    ) -> AltResult:
        """Execute the block; raise :class:`AltBlockFailure` on failure."""
        if not alternatives:
            raise ValueError("an alternative block needs at least one arm")
        rng = random.Random(self.seed)
        parent = parent if parent is not None else self.new_parent()
        order = (
            self.policy.order(alternatives, rng)
            if self.try_all
            else [self.policy.single(alternatives, rng)]
        )
        outcomes: List[AltOutcome] = [
            AltOutcome(index=i, name=a.name, status="untried")
            for i, a in enumerate(alternatives)
        ]
        timeline = [(0.0, "block entered")]
        elapsed = 0.0
        for index in order:
            alternative = alternatives[index]
            outcome = outcomes[index]
            (child,) = self.manager.alt_spawn(parent, 1)
            context = AltContext(
                child.space,
                rng=random.Random(self.seed * 1000003 + index),
                alt_index=index + 1,
                name=alternative.name,
                process=child,
            )
            outcome.pid = child.pid
            outcome.started_at = elapsed
            timeline.append((elapsed, f"try {alternative.name}"))
            succeeded, value, detail = _run_body(alternative, context)
            duration = alternative.sample_cost(rng, context)
            outcome.duration = duration
            outcome.pages_written = child.space.pages_written
            outcome.cpu_consumed = duration
            elapsed += duration
            outcome.finished_at = elapsed
            if succeeded:
                self.manager.alt_sync(child, guard_ok=True)
                self.manager.alt_wait(parent)
                outcome.status = "won"
                outcome.value = value
                timeline.append((elapsed, f"{alternative.name} selected"))
                return AltResult(
                    value=value,
                    winner=outcome,
                    outcomes=outcomes,
                    elapsed=elapsed,
                    overhead=OverheadBreakdown(),
                    wasted_work=sum(
                        o.cpu_consumed for o in outcomes if o is not outcome
                    ),
                    timeline=timeline,
                )
            outcome.status = "failed"
            outcome.detail = detail
            timeline.append((elapsed, f"{alternative.name} failed: {detail}"))
            self.manager.alt_sync(child, guard_ok=False)
            try:
                self.manager.alt_wait(parent)
            except AltBlockFailure:
                pass  # expected: the lone child failed; parent rolled back
        timeline.append((elapsed, "block FAILED"))
        error = AltBlockFailure(
            f"all {len(order)} tried alternatives failed"
            + ("" if self.try_all else " (single-shot mode)")
        )
        error.outcomes = outcomes
        error.elapsed = elapsed
        raise error


def _stall_guard(context: AltContext) -> None:
    """The ``slow-guard`` fault point: stall guard evaluation.

    A wedged guard is indistinguishable from a wedged body to the caller;
    the injected stall lets tests drive ``alt_wait(timeout)`` and watchdog
    behaviour against a guard that simply never comes back in time.
    """
    injector = _active_injector()
    if injector is None:
        return
    arm = context.alt_index - 1 if context.alt_index else None
    rule = injector.draw("slow-guard", arm)
    if rule is not None:
        if _virtual_sleep(rule.duration):
            return
        _time.sleep(rule.duration)


def _trace_guard_eval(context: AltContext, which: str, held: bool) -> None:
    """Witness one guard evaluation (a no-op when tracing is disabled)."""
    tracer = _active_tracer()
    if tracer.enabled:
        tracer.emit(
            _ev.GUARD_EVAL,
            block=getattr(context, "trace_block", None),
            arm=context.alt_index - 1 if context.alt_index else None,
            name=context.name,
            guard=which,
            held=held,
        )


def _run_body(alternative: Alternative, context: AltContext):
    """Run body + guards; return (succeeded, value, detail)."""
    arm_key = str(context.alt_index - 1 if context.alt_index else None)
    if alternative.pre_guard is not None:
        _checkpoint("guard-eval", arm_key)
        _stall_guard(context)
        try:
            held = bool(alternative.pre_guard(context))
        except GuardFailure as exc:
            _trace_guard_eval(context, "pre", False)
            return False, None, str(exc)
        _trace_guard_eval(context, "pre", held)
        if not held:
            return False, None, "pre-guard not satisfied"
    try:
        value = alternative.body(context)
    except GuardFailure as exc:
        return False, None, str(exc)
    if alternative.guard is not None:
        _checkpoint("guard-eval", arm_key)
        _stall_guard(context)
        try:
            held = bool(alternative.guard(context, value))
        except GuardFailure as exc:
            _trace_guard_eval(context, "acceptance", False)
            return False, None, str(exc)
        _trace_guard_eval(context, "acceptance", held)
        if not held:
            return False, None, "acceptance test failed"
    return True, value, ""
