"""The alternative-block construct and its executors.

This package is the paper's primary contribution:

- :class:`~repro.core.alternative.Alternative` and
  :class:`~repro.core.alternative.AltContext` express the
  ``ENSURE guard WITH method`` arms of the alternative block (section 2);
- :class:`~repro.core.sequential.SequentialExecutor` gives the sequential
  non-deterministic-selection semantics;
- :class:`~repro.core.concurrent.ConcurrentExecutor` is the
  semantics-preserving transformation of section 3: race every alternative
  speculatively under copy-on-write state management, select fastest-first,
  eliminate the siblings;
- :class:`~repro.core.oshost.OsHost` runs the same race with real
  ``os.fork`` processes on the host kernel's copy-on-write memory;
- :mod:`repro.core.backends` makes the executor's concurrency pluggable:
  :class:`~repro.core.backends.SerialBackend` (deterministic replay),
  :class:`~repro.core.backends.ThreadBackend` and
  :class:`~repro.core.backends.ProcessBackend` (real racing with
  cooperative loser elimination).
"""

from repro.core.alternative import AltContext, Alternative, GuardPlacement
from repro.core.backends import (
    CancellationToken,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_parallel_backend,
    get_backend,
)
from repro.core.concurrent import ConcurrentExecutor
from repro.core.oshost import OsHost, OsRaceOutcome, OsRaceResult
from repro.core.result import AltOutcome, AltResult, OverheadBreakdown
from repro.core.selection import (
    OrderedPolicy,
    PriorityPolicy,
    RandomPolicy,
    SelectionPolicy,
)
from repro.core.sequential import SequentialExecutor

__all__ = [
    "AltContext",
    "AltOutcome",
    "AltResult",
    "Alternative",
    "CancellationToken",
    "ConcurrentExecutor",
    "ExecutionBackend",
    "GuardPlacement",
    "OrderedPolicy",
    "OsHost",
    "OsRaceOutcome",
    "OsRaceResult",
    "OverheadBreakdown",
    "PriorityPolicy",
    "ProcessBackend",
    "RandomPolicy",
    "SelectionPolicy",
    "SequentialExecutor",
    "SerialBackend",
    "ThreadBackend",
    "default_parallel_backend",
    "get_backend",
]
