"""Alternatives, guards, and the execution context.

An :class:`Alternative` is one ``ENSURE guard WITH method`` arm of the
alternative block of section 2.  Its ``body`` runs against an
:class:`AltContext` that exposes the alternative's private copy-on-write
world; everything the body writes there is invisible to siblings and is
committed to the caller only if this alternative is selected.

Guards can be evaluated 'before spawning the alternative, in the child
process, at the synchronization point, or at any combination of these
places, for redundancy' (section 3.2); :class:`GuardPlacement` selects the
placement and the executors honour it.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Union

from repro.check.runtime import virtual_sleep as _virtual_sleep
from repro.errors import Eliminated, GuardFailure
from repro.pages.address_space import AddressSpace
from repro.sim.distributions import Distribution


class GuardPlacement(enum.Enum):
    """Where the guard condition is evaluated."""

    BEFORE_SPAWN = "before_spawn"
    """In the parent, before forking: closed alternatives are never
    spawned, saving setup overhead."""

    IN_CHILD = "in_child"
    """In the child, 'thus speeding up spawning and synchronization' --
    the paper's default expectation."""

    AT_SYNC = "at_sync"
    """By the parent at the synchronization point: adds guard evaluation
    to the selection overhead but double-checks the child's claim."""


class AltContext:
    """What an alternative's body sees: its world, a seeded RNG, a meter.

    ``space`` is this alternative's private COW address space (shared
    variables live there via :meth:`get`/:meth:`put`); ``charge`` accrues
    simulated execution time for bodies whose cost is data-dependent.
    """

    def __init__(
        self,
        space: AddressSpace,
        rng: Optional[random.Random] = None,
        alt_index: int = 0,
        name: str = "",
        process: Any = None,
        token: Any = None,
    ) -> None:
        self.space = space
        self.rng = rng if rng is not None else random.Random(0)
        self.alt_index = alt_index
        self.name = name
        self.process = process
        """The simulated process running this alternative (when executed
        by an executor that has one).  Passing it as ``parent`` to another
        executor sharing the same manager nests alternative blocks, with
        predicates inherited down the tree (section 3.3)."""
        self.token = token
        """Cooperative cancellation token (a
        :class:`~repro.core.backends.CancellationToken`) when this body is
        racing under a real parallel backend; ``None`` under the
        deterministic simulator."""
        self._charged = 0.0

    def charge(self, seconds: float) -> None:
        """Accrue ``seconds`` of simulated execution time."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._charged += seconds

    @property
    def charged(self) -> float:
        """Simulated time accrued so far by ``charge`` calls."""
        return self._charged

    def get(self, name: str, default: Any = None) -> Any:
        """Read a shared variable from this world."""
        return self.space.get(name, default)

    def put(self, name: str, value: Any) -> None:
        """Write a shared variable in this world (COW-isolated)."""
        self.space.put(name, value)

    def bulk_put(self, mapping) -> None:
        """Bind several variables in one directory append."""
        self.space.bulk_put(mapping)

    def fail(self, reason: str = "guard condition not satisfied") -> None:
        """Abort this alternative (it will not synchronize)."""
        raise GuardFailure(reason)

    # ------------------------------------------------------------------
    # cooperative elimination (section 3.2.1, under real concurrency)

    @property
    def eliminated(self) -> bool:
        """True once a sibling won and this arm's kill was delivered."""
        return self.token is not None and self.token.cancelled

    def check_eliminated(self) -> None:
        """Cooperative cancellation point.

        Long-running bodies call this inside their loops; once a sibling
        has synchronized and the termination instruction is delivered,
        the call raises :class:`~repro.errors.Eliminated`, so the loser
        stops consuming CPU instead of running to completion.  A no-op
        under the deterministic simulator (no token attached).
        """
        if self.eliminated:
            raise Eliminated(
                f"alternative {self.name or self.alt_index} eliminated: "
                "a sibling already synchronized"
            )

    def sleep(self, seconds: float) -> None:
        """Sleep for ``seconds`` of real time, but wake (and raise
        :class:`~repro.errors.Eliminated`) as soon as elimination is
        delivered -- the cancellable way for a body to wait on real I/O
        or model real work.

        Under the model checker the sleep is absorbed into virtual time
        instead (and elimination delivery still wakes the arm early, via
        the controller making cancelled sleepers immediately runnable)."""
        if seconds < 0:
            raise ValueError("cannot sleep negative time")
        if _virtual_sleep(seconds):
            self.check_eliminated()
            return
        if self.token is None:
            time.sleep(seconds)
            return
        self.token.wait(seconds)
        self.check_eliminated()


Body = Callable[[AltContext], Any]
Guard = Callable[[AltContext, Any], bool]
PreGuard = Callable[[AltContext], bool]


@dataclass
class Alternative:
    """One arm of an alternative block."""

    name: str
    body: Body
    guard: Optional[Guard] = None
    """Post-condition on the body's result (the recovery-block acceptance
    test shape).  ``None`` means the body's normal return is success."""

    pre_guard: Optional[PreGuard] = None
    """Enabling condition, evaluated per :class:`GuardPlacement`."""

    cost: Optional[Union[float, Distribution]] = None
    """Simulated execution time of the body: a constant, a distribution to
    sample, or ``None`` to use whatever the body ``charge()``d."""

    guard_cost: float = 0.0
    """Simulated time to evaluate the guard itself."""

    writes: Optional[Any] = None
    """Declared write-set (a :class:`repro.independence.WriteSet`) for
    maximal-step commits: when *every* arm of a block declares one and the
    shared independence engine proves them pairwise disjoint, all
    successful arms commit together as one validated step instead of
    racing winner-take-all.  ``None`` (the default) opts the arm out --
    the block then races classically."""

    metadata: dict = field(default_factory=dict)

    def sample_cost(self, rng: random.Random, context: AltContext) -> float:
        """The simulated duration of one execution of this alternative."""
        if self.cost is None:
            return context.charged
        if isinstance(self.cost, Distribution):
            return self.cost.sample(rng)
        return float(self.cost)

    def __repr__(self) -> str:
        return f"Alternative({self.name!r})"


def alternative(
    name: str,
    cost: Optional[Union[float, Distribution]] = None,
    guard: Optional[Guard] = None,
    pre_guard: Optional[PreGuard] = None,
) -> Callable[[Body], Alternative]:
    """Decorator sugar for building alternatives from plain functions.

    >>> @alternative("fast-path", cost=1.0)
    ... def fast(ctx):
    ...     return "done"
    >>> fast.name
    'fast-path'
    """

    def wrap(body: Body) -> Alternative:
        return Alternative(
            name=name, body=body, guard=guard, pre_guard=pre_guard, cost=cost
        )

    return wrap
