"""Concurrent speculative execution of an alternative block (section 3).

The semantics-preserving transformation: spawn every alternative as a COW
child of the caller (``alt_spawn``), race them under real or virtual
concurrency, select the first successfully synchronizing child
(fastest-first), absorb its state into the parent by the atomic page
pointer swap, and eliminate the losing siblings synchronously or
asynchronously.

Timing is simulated deterministically:

- *setup*: the parent issues forks serially, so alternative ``i`` starts
  at ``(i + 1) * fork_latency``;
- *runtime*: each child's CPU demand is its standalone execution time plus
  the COW copies for the pages it writes; demands contend on ``cpus``
  processors under egalitarian processor sharing (virtual concurrency);
- *selection*: the rendezvous costs ``sync_latency``; termination
  instructions for the ``k-1`` siblings are issued at ``kill_latency``
  apiece, before the parent resumes (synchronous elimination) or after it
  (asynchronous).  Losers keep consuming CPU until their kill lands, which
  is the throughput price the paper accepts.

State semantics are *not* simulated -- they are executed for real on the
paged store via :class:`~repro.process.ProcessManager`, so losers' writes
provably never reach the parent.
"""

from __future__ import annotations

import random
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.alternative import AltContext, Alternative, GuardPlacement
from repro.core.backends import (
    ArmTask,
    BackendRace,
    CancellationToken,
    ExecutionBackend,
    SerialBackend,
)
from repro.core.result import AltOutcome, AltResult, OverheadBreakdown
from repro.core.sequential import _run_body, _trace_guard_eval
from repro.errors import (
    AltBlockFailure,
    AltTimeout,
    PageApplyError,
    ProcessStateError,
)
from repro.independence import StepPlan, default_engine
from repro.obs import events as _ev
from repro.obs.export import BlockTrace
from repro.obs.tracer import active as _active_tracer
from repro.pages.store import PageStore
from repro.process.primitives import EliminationMode, ProcessManager
from repro.process.process import SimProcess
from repro.process.scheduler import ProcessorSharing
from repro.resilience import injector as _fault_registry
from repro.resilience.supervisor import (
    ArmAutopsy,
    AttemptAutopsy,
    RaceAutopsy,
    Supervisor,
    Watchdog,
    classify_outcome,
)
from repro.sim.costs import CostModel, MODERN_COMMODITY


@dataclass
class _ChildRun:
    """Internal record of one spawned alternative's semantic execution."""

    index: int
    alternative: Alternative
    child: SimProcess
    succeeded: bool
    value: object
    detail: str
    duration: float
    pages_written: int
    arrival: float
    demand: float


class ConcurrentExecutor:
    """Race all alternatives; fastest successful one wins."""

    def __init__(
        self,
        cost_model: CostModel = MODERN_COMMODITY,
        cpus: Optional[int] = None,
        elimination: EliminationMode = EliminationMode.SYNCHRONOUS,
        guard_placement: GuardPlacement = GuardPlacement.IN_CHILD,
        timeout: Optional[float] = None,
        seed: int = 0,
        manager: Optional[ProcessManager] = None,
        space_size: int = 64 * 1024,
        backend: Optional[ExecutionBackend] = None,
        supervisor: Optional[Supervisor] = None,
    ) -> None:
        self.cost_model = cost_model
        self.cpus = cpus
        self.elimination = elimination
        self.guard_placement = guard_placement
        self.timeout = timeout
        self.seed = seed
        self.manager = (
            manager
            if manager is not None
            else ProcessManager(PageStore(page_size=cost_model.page_size))
        )
        self.space_size = space_size
        self.backend = backend if backend is not None else SerialBackend()
        self.supervisor = supervisor
        """Optional :class:`~repro.resilience.Supervisor` policy: watchdog
        deadlines, retries with fresh COW worlds, and degradation to a
        serial replay for races on parallel backends.  Supervised runs
        attach a :class:`~repro.resilience.RaceAutopsy` to the result (and
        to any raised error)."""
        self._last_race: Optional[BackendRace] = None
        self._trace_block: Optional[int] = None

    def new_parent(self) -> SimProcess:
        """A fresh root process whose space callers may preload."""
        return self.manager.create_initial(space_size=self.space_size)

    # ------------------------------------------------------------------

    def run(
        self,
        alternatives: Sequence[Alternative],
        parent: Optional[SimProcess] = None,
    ) -> AltResult:
        """Execute the block concurrently.

        Raises :class:`AltBlockFailure` when every alternative fails and
        :class:`AltTimeout` when no alternative succeeds inside
        ``timeout`` simulated seconds.

        When a :class:`~repro.obs.Tracer` is installed, the whole race
        lifecycle is recorded and the block's slice of the trace is
        attached as ``result.trace`` (a :class:`~repro.obs.BlockTrace`)
        on success, and as ``error.trace`` on failure; a supervised run's
        :class:`~repro.resilience.RaceAutopsy` carries the same trace.
        """
        if not alternatives:
            raise ValueError("an alternative block needs at least one arm")
        tracer = _active_tracer()
        block = tracer.next_block() if tracer.enabled else None
        self._trace_block = block
        if tracer.enabled:
            tracer.emit(
                _ev.BLOCK_BEGIN,
                block=block,
                name=f"alt-block#{block} [{self.backend.name}]",
                backend=self.backend.name,
                arms=len(alternatives),
                supervised=self.supervisor is not None,
            )
        try:
            result = self._dispatch(alternatives, parent)
        except (AltBlockFailure, AltTimeout) as exc:
            if tracer.enabled:
                tracer.emit(
                    _ev.BLOCK_END,
                    block=block,
                    outcome=type(exc).__name__,
                    elapsed_seconds=float(getattr(exc, "elapsed", 0.0) or 0.0),
                )
                trace = BlockTrace(block, tracer.block_events(block))
                exc.trace = trace
                autopsy = getattr(exc, "autopsy", None)
                if autopsy is not None:
                    autopsy.trace = trace
            raise
        if tracer.enabled:
            serial_sum = sum(
                outcome.cpu_consumed or 0.0 for outcome in result.outcomes
            )
            tracer.emit(
                _ev.BLOCK_END,
                block=block,
                outcome="won",
                winner=result.winner.name,
                elapsed_seconds=result.elapsed,
                serial_sum_seconds=serial_sum,
            )
            trace = BlockTrace(block, tracer.block_events(block))
            result.trace = trace
            if result.autopsy is not None:
                result.autopsy.trace = trace
        return result

    def _dispatch(
        self,
        alternatives: Sequence[Alternative],
        parent: Optional[SimProcess],
    ) -> AltResult:
        rng = random.Random(self.seed)
        parent = parent if parent is not None else self.new_parent()
        timeline: List[Tuple[float, str]] = [(0.0, "block entered")]
        outcomes = [
            AltOutcome(index=i, name=a.name, status="untried")
            for i, a in enumerate(alternatives)
        ]

        spawnable = self._filter_before_spawn(
            alternatives, parent, outcomes, timeline
        )
        if not spawnable:
            error = AltBlockFailure("every alternative was closed before spawn")
            error.outcomes = outcomes
            error.elapsed = 0.0
            raise error

        step_plan = self._step_plan(alternatives, spawnable)
        if self.backend.is_parallel:
            if self.supervisor is not None:
                # Supervised races retry with fresh worlds; they keep the
                # classic first-success selection.
                return self._run_supervised(
                    alternatives, spawnable, parent, outcomes, timeline
                )
            return self._run_real(
                alternatives, spawnable, parent, outcomes, timeline,
                step_plan=step_plan,
            )
        runs = self._spawn_and_execute(
            alternatives, spawnable, parent, outcomes, timeline, rng
        )
        if step_plan is not None:
            result = self._race_step(
                alternatives, runs, parent, outcomes, timeline, step_plan
            )
            if result is not None:
                return result
        return self._race(alternatives, runs, parent, outcomes, timeline)

    def _step_plan(
        self, alternatives, spawnable
    ) -> Optional[StepPlan]:
        """A maximal-step plan when every spawnable arm declares a
        disjoint write-set (and the block has no deadline -- a timed
        block must keep the winner semaphore so the deadline can cut the
        race short)."""
        if self.timeout is not None or len(spawnable) < 2:
            return None
        declared = {
            index: alternatives[index].writes for index in spawnable
        }
        page_size = getattr(
            self.manager.store, "page_size", self.cost_model.page_size
        )
        return default_engine.plan(declared, page_size)

    # ------------------------------------------------------------------
    # phase 1: pre-spawn guard filtering

    def _filter_before_spawn(self, alternatives, parent, outcomes, timeline):
        spawnable = list(range(len(alternatives)))
        if self.guard_placement is not GuardPlacement.BEFORE_SPAWN:
            return spawnable
        open_arms = []
        for index in spawnable:
            arm = alternatives[index]
            if arm.pre_guard is None:
                open_arms.append(index)
                continue
            probe = AltContext(parent.space, alt_index=index + 1, name=arm.name)
            probe.trace_block = self._trace_block
            held = bool(arm.pre_guard(probe))
            _trace_guard_eval(probe, "before-spawn", held)
            if held:
                open_arms.append(index)
            else:
                outcomes[index].status = "not_spawned"
                outcomes[index].detail = "pre-guard closed before spawn"
                timeline.append((0.0, f"{arm.name} closed (guard before spawn)"))
        return open_arms

    # ------------------------------------------------------------------
    # phase 2: spawn children and execute bodies for real

    def _build_tasks(
        self, alternatives, spawnable, children, with_tokens: bool
    ) -> Tuple[List[ArmTask], Dict[int, AltContext]]:
        """One :class:`ArmTask` per spawned arm, against its COW child."""
        skip_pre_guard = self.guard_placement is GuardPlacement.BEFORE_SPAWN
        tasks: List[ArmTask] = []
        contexts: Dict[int, AltContext] = {}
        for index, child in zip(spawnable, children):
            arm = alternatives[index]
            context = AltContext(
                child.space,
                rng=random.Random(self.seed * 1000003 + index),
                alt_index=index + 1,
                name=arm.name,
                process=child,
                token=CancellationToken() if with_tokens else None,
            )
            context.trace_block = self._trace_block
            contexts[index] = context
            if skip_pre_guard and arm.pre_guard is not None:
                # Guard already passed in the parent; do not re-run it.
                to_run = Alternative(
                    name=arm.name,
                    body=arm.body,
                    guard=arm.guard,
                    cost=arm.cost,
                    guard_cost=arm.guard_cost,
                )
            else:
                to_run = arm
            tasks.append(
                ArmTask(
                    index=index,
                    name=arm.name,
                    run=lambda a=to_run, c=context: _run_body(a, c),
                    context=context,
                    # A world pool ships the alternative by value to a
                    # parked worker; the seed lets the worker rebuild an
                    # RNG identical to this context's.
                    alternative=to_run,
                    rng_seed=self.seed * 1000003 + index,
                )
            )
        return tasks, contexts

    def _spawn_and_execute(
        self, alternatives, spawnable, parent, outcomes, timeline, rng
    ) -> List[_ChildRun]:
        children = self.manager.alt_spawn(parent, len(spawnable))
        tasks, contexts = self._build_tasks(
            alternatives, spawnable, children, with_tokens=False
        )
        tracer = _active_tracer()
        if tracer.enabled:
            for index, child in zip(spawnable, children):
                tracer.emit(
                    _ev.ARM_SPAWN,
                    block=self._trace_block,
                    arm=index,
                    name=alternatives[index].name,
                    sim_pid=child.pid,
                )
        # Bodies run through the serial backend (the deterministic replay
        # discipline); the race below is then decided by the timing model.
        race = SerialBackend().run_arms(tasks)
        runs: List[_ChildRun] = []
        fork = self.cost_model.fork_latency
        for spawn_slot, (index, child) in enumerate(zip(spawnable, children)):
            arm = alternatives[index]
            report = race.report(index)
            arrival = (spawn_slot + 1) * fork
            duration = arm.sample_cost(rng, contexts[index])
            if self.guard_placement is GuardPlacement.IN_CHILD:
                # The child evaluates its own guard as part of its run.
                duration += arm.guard_cost
            pages = child.space.pages_written
            demand = duration + self.cost_model.page_copy_time(pages)
            outcome = outcomes[index]
            outcome.pid = child.pid
            outcome.duration = duration
            outcome.pages_written = pages
            outcome.started_at = arrival
            timeline.append((arrival, f"spawn {arm.name} (pid {child.pid})"))
            runs.append(
                _ChildRun(
                    index=index,
                    alternative=arm,
                    child=child,
                    succeeded=report.succeeded,
                    value=report.value,
                    detail=report.detail,
                    duration=duration,
                    pages_written=pages,
                    arrival=arrival,
                    demand=demand,
                )
            )
        return runs

    # ------------------------------------------------------------------
    # phase 2': the real race (parallel backends)

    def _run_real(
        self, alternatives, spawnable, parent, outcomes, timeline,
        backend: Optional[ExecutionBackend] = None,
        step_plan: Optional[StepPlan] = None,
    ) -> AltResult:
        """Race the arms under genuine concurrency, fastest-first.

        The backend decides the winner at the wall clock; this method
        drives the simulated kernel to the same conclusion (``alt_sync``
        for the winner, ``fail`` for aborted arms, ``alt_wait`` with
        elimination for the cancelled losers) so the state semantics --
        losers' writes never reach the parent -- are enforced by the same
        mechanism as the deterministic path.

        ``backend`` overrides ``self.backend`` (the supervisor's degraded
        serial replay runs the same machinery on a ``SerialBackend``).
        When a supervisor with an ``arm_deadline`` is configured, a
        :class:`~repro.resilience.Watchdog` delivers the termination
        instruction to every arm still racing at the deadline and
        escalates to a forcible kill after its grace period.
        """
        backend = backend if backend is not None else self.backend
        spawn_start = _time.perf_counter()
        children = self.manager.alt_spawn(parent, len(spawnable))
        tasks, contexts = self._build_tasks(
            alternatives, spawnable, children, with_tokens=True
        )
        by_index = dict(zip(spawnable, children))
        for index, child in by_index.items():
            # The kernel's termination instruction lands on the arm's
            # cancellation token (section 3.2.1, delivered for real).
            self.manager.attach_elimination_hook(
                child.pid, contexts[index].token.cancel
            )
        spawn_done = _time.perf_counter() - spawn_start
        tracer = _active_tracer()
        for index, child in by_index.items():
            outcomes[index].pid = child.pid
            timeline.append(
                (
                    spawn_done,
                    f"spawn {alternatives[index].name} (pid {child.pid})",
                )
            )
            if tracer.enabled:
                tracer.emit(
                    _ev.ARM_SPAWN,
                    block=self._trace_block,
                    arm=index,
                    name=alternatives[index].name,
                    sim_pid=child.pid,
                    backend=backend.name,
                )

        watchdog = None
        if (
            self.supervisor is not None
            and self.supervisor.arm_deadline is not None
            and backend.is_parallel
        ):
            indexes = list(by_index)

            def _terminate(hard: bool) -> None:
                for index in indexes:
                    delivered = backend.terminate_arm(index, hard=hard)
                    if not delivered and not hard:
                        token = contexts[index].token
                        if token is not None:
                            token.cancel()

            watchdog = Watchdog(
                self.supervisor.arm_deadline,
                self.supervisor.kill_grace,
                _terminate,
                trace_block=self._trace_block,
            ).start()
        try:
            race = backend.run_arms(
                tasks,
                timeout=self.timeout,
                collect_all=step_plan is not None,
            )
        finally:
            if watchdog is not None:
                watchdog.stop()
                if watchdog.fired_soft:
                    timeline.append(
                        (
                            spawn_done + self.supervisor.arm_deadline,
                            "watchdog: arm deadline expired"
                            + (" (hard kill)" if watchdog.fired_hard else ""),
                        )
                    )
        self._last_race = race
        try:
            return self._conclude_real(
                race, by_index, parent, outcomes, timeline, spawn_done,
                step_plan=step_plan,
            )
        finally:
            for child in children:
                self.manager.detach_elimination_hook(child.pid)

    def _conclude_real(
        self,
        race: BackendRace,
        by_index: Dict[int, SimProcess],
        parent: SimProcess,
        outcomes: List[AltOutcome],
        timeline: List[Tuple[float, str]],
        spawn_done: float,
        step_plan: Optional[StepPlan] = None,
    ) -> AltResult:
        if step_plan is not None:
            result = self._conclude_step(
                race, by_index, parent, outcomes, timeline, spawn_done,
                step_plan,
            )
            if result is not None:
                return result
            # Step ineligible (a lone success, an abnormal death, a
            # failed validation): fall back to the classic first-success
            # conclusion.  Non-winner shipments would leak their slabs
            # through the classic path, so dispose them now.
            self._dispose_extra_shipments(race)
        winner_index = race.winner_index
        for when, label in race.events:
            timeline.append((spawn_done + when, label))

        # Per-arm bookkeeping, read *before* alt_wait releases loser spaces.
        wasted = 0.0
        for index, child in by_index.items():
            report = race.report(index)
            outcome = outcomes[index]
            outcome.duration = report.work_seconds
            outcome.started_at = spawn_done + report.started_at
            outcome.finished_at = spawn_done + report.finished_at
            outcome.cpu_consumed = report.work_seconds
            if report.page_transport is None and report.dirty_pages is None:
                outcome.pages_written = child.space.pages_written
            else:
                outcome.pages_written = report.pages_written
            if index != winner_index:
                wasted += report.work_seconds
            if report.succeeded:
                if index != winner_index:
                    # A serial replay runs every arm to completion; later
                    # successes lose the rendezvous like any too-late arm.
                    outcome.status = "eliminated"
                    outcome.detail = "synchronized too late; sibling already won"
                continue
            if report.cancelled and winner_index is not None:
                # Eliminated loser: alt_wait terminates it below.
                outcome.status = "eliminated"
                outcome.detail = report.detail
            else:
                self.manager.fail(child)
                outcome.status = "eliminated" if report.cancelled else "failed"
                outcome.detail = report.detail

        tracer = _active_tracer()
        if winner_index is None:
            if tracer.enabled:
                for index in by_index:
                    if outcomes[index].status == "eliminated":
                        report = race.report(index)
                        tracer.emit(
                            _ev.LOSER_ELIMINATE,
                            block=self._trace_block,
                            arm=index,
                            name=report.name,
                            latency_seconds=0.0,
                            detail=report.detail or "timeout",
                        )
            elapsed = spawn_done + race.total_seconds
            if race.timed_out:
                timeline.append((elapsed, "alt_wait TIMEOUT"))
                try:
                    self.manager.alt_wait(parent, timed_out=True)
                except (AltTimeout, AltBlockFailure):
                    pass
                error: Exception = AltTimeout(
                    f"no alternative succeeded within {self.timeout} seconds"
                )
                error.partial_reports = tuple(
                    {
                        "index": report.index,
                        "name": report.name,
                        "state": classify_outcome(
                            report.succeeded,
                            report.cancelled,
                            report.abnormal,
                            report.detail,
                            report.exit_signal,
                            winner_exists=False,
                        ),
                        "elapsed": report.work_seconds,
                    }
                    for report in race.reports
                )
            else:
                timeline.append((elapsed, "block FAILED"))
                try:
                    self.manager.alt_wait(parent)
                except AltBlockFailure:
                    pass
                error = AltBlockFailure(
                    f"all {len(by_index)} spawned alternatives failed"
                )
            error.outcomes = outcomes
            error.elapsed = elapsed
            error.timeline = timeline
            raise error

        winner_report = race.report(winner_index)
        winner_child = by_index[winner_index]
        winner_child.space.trace_block = self._trace_block
        if winner_report.shm_shipment is not None:
            # The winner's dirty pages already sit in a shared-memory
            # slab: commit is a pointer swap, no page image is copied.
            shipment = winner_report.shm_shipment
            try:
                winner_child.space.apply_shm_pages(shipment)
            except PageApplyError as exc:
                self._demote_winner(
                    race, winner_index, by_index, parent, outcomes,
                    timeline, spawn_done, exc,
                )
            finally:
                # Adopted frames hold their own slab references now; the
                # shipment's creation reference is done either way.
                shipment.slab.dispose()
        elif winner_report.dirty_pages:
            # The winner ran in another OS process: replay its page images
            # into the simulated child space before the commit swap.
            try:
                winner_child.space.apply_pages(winner_report.dirty_pages)
            except PageApplyError as exc:
                # The shipment is unusable: demote the "winner" to an
                # abnormal failure (the parent's space is untouched) and
                # let the block fail -- the supervisor may retry it.
                self._demote_winner(
                    race, winner_index, by_index, parent, outcomes,
                    timeline, spawn_done, exc,
                )
        won = self.manager.alt_sync(winner_child, guard_ok=True)
        assert won, "first successful completion must win the rendezvous"
        if tracer.enabled:
            tracer.emit(
                _ev.WINNER_COMMIT,
                block=self._trace_block,
                arm=winner_index,
                name=winner_report.name,
                pages=outcomes[winner_index].pages_written,
                work_seconds=winner_report.work_seconds,
            )
        self.manager.alt_wait(parent, elimination=self.elimination)
        if self.elimination is EliminationMode.ASYNCHRONOUS:
            self.manager.drain_eliminations(winner_child.group_id)
        if tracer.enabled:
            for index in by_index:
                if index == winner_index:
                    continue
                if outcomes[index].status == "eliminated":
                    report = race.report(index)
                    tracer.emit(
                        _ev.LOSER_ELIMINATE,
                        block=self._trace_block,
                        arm=index,
                        name=report.name,
                        latency_seconds=max(
                            0.0,
                            report.finished_at - winner_report.finished_at,
                        ),
                        detail=report.detail,
                    )

        win_time = spawn_done + race.elapsed
        if self.elimination is EliminationMode.SYNCHRONOUS:
            # The parent resumes only once every sibling is accounted for.
            resume_at = spawn_done + race.total_seconds
        else:
            resume_at = win_time
        winner_outcome = outcomes[winner_index]
        winner_outcome.status = "won"
        winner_outcome.value = winner_report.value
        winner_outcome.finished_at = win_time
        timeline.append((resume_at, "parent resumes"))
        timeline.sort(key=lambda event: event[0])
        overhead = OverheadBreakdown(
            setup=spawn_done,
            runtime=self.cost_model.page_copy_time(
                winner_outcome.pages_written
            ),
            selection=max(0.0, resume_at - win_time),
        )
        return AltResult(
            value=winner_report.value,
            winner=winner_outcome,
            outcomes=outcomes,
            elapsed=resume_at,
            overhead=overhead,
            wasted_work=wasted,
            timeline=timeline,
            page_transport=winner_report.page_transport
            or race.page_transport,
        )

    # ------------------------------------------------------------------
    # maximal-step conclusion (shared independence engine, section 4's
    # selection-overhead optimisation: no winner semaphore, no kills)

    @staticmethod
    def _dispose_extra_shipments(race: BackendRace) -> None:
        """Drop slabs of non-winning successes before a classic fallback."""
        for report in race.reports:
            if report.index == race.winner_index:
                continue
            if report.shm_shipment is not None:
                report.shm_shipment.slab.dispose()
                report.shm_shipment = None

    def _emit_step_events(
        self, committers, actual, reports, winner_index
    ) -> None:
        tracer = _active_tracer()
        if not tracer.enabled:
            return
        tracer.emit(
            _ev.INDEP_STEP,
            block=self._trace_block,
            name="maximal-step",
            arms=list(committers),
            pages=sum(len(actual[index]) for index in committers),
        )
        for index in committers:
            tracer.emit(
                _ev.MAXIMAL_COMMIT,
                block=self._trace_block,
                arm=index,
                name=reports[index].name,
                pages=len(actual[index]),
                primary=index == winner_index,
            )

    def _conclude_step(
        self,
        race: BackendRace,
        by_index: Dict[int, SimProcess],
        parent: SimProcess,
        outcomes: List[AltOutcome],
        timeline: List[Tuple[float, str]],
        spawn_done: float,
        plan: StepPlan,
    ) -> Optional[AltResult]:
        """Commit every successful arm as one validated step.

        Returns ``None`` whenever the step is ineligible (fewer than two
        successes, an abnormal death, a rejected shipment, a failed
        disjointness validation, a refused graft); the caller then takes
        the classic first-success path on the very same race.
        """
        if race.timed_out or race.winner_index is None:
            return None
        reports = {index: race.report(index) for index in by_index}
        if any(report.abnormal for report in reports.values()):
            return None
        committers = sorted(
            index for index, report in reports.items() if report.succeeded
        )
        if len(committers) < 2:
            return None
        # Stage cross-process shipments into each committer's simulated
        # space, so the dirty sets below reflect the real writes.
        for index in committers:
            report = reports[index]
            child = by_index[index]
            try:
                if report.shm_shipment is not None:
                    shipment = report.shm_shipment
                    try:
                        child.space.apply_shm_pages(shipment)
                    finally:
                        shipment.slab.dispose()
                        report.shm_shipment = None
                elif report.dirty_pages:
                    child.space.apply_pages(report.dirty_pages)
                    report.dirty_pages = None
            except PageApplyError as exc:
                report.succeeded = False
                report.abnormal = True
                report.detail = f"step shipback rejected: {exc}"
                if race.winner_index == index:
                    rest = [
                        i for i, r in reports.items() if r.succeeded
                    ]
                    race.winner_index = (
                        min(rest, key=lambda i: reports[i].finished_at)
                        if rest
                        else None
                    )
                return None
        actual = {
            index: frozenset(
                default_engine.summarize(
                    by_index[index].space.table.dirty_pages
                )
            )
            for index in committers
        }
        problem = default_engine.validate(plan, actual)
        if problem is not None:
            timeline.append(
                (
                    spawn_done + race.total_seconds,
                    f"maximal step refused: {problem}",
                )
            )
            return None

        # Bookkeeping first: the kernel commit below releases the
        # secondaries' spaces.
        wasted = 0.0
        for index, child in by_index.items():
            report = reports[index]
            outcome = outcomes[index]
            outcome.duration = report.work_seconds
            outcome.started_at = spawn_done + report.started_at
            outcome.finished_at = spawn_done + report.finished_at
            outcome.cpu_consumed = report.work_seconds
            if report.page_transport is None:
                outcome.pages_written = child.space.pages_written
            else:
                outcome.pages_written = report.pages_written
            if index not in committers:
                wasted += report.work_seconds

        pages_map = {
            by_index[index].pid: sorted(actual[index])
            for index in committers[1:]
        }
        try:
            self.manager.alt_step_commit(
                parent, [by_index[index] for index in committers], pages_map
            )
        except PageApplyError as exc:
            timeline.append(
                (
                    spawn_done + race.total_seconds,
                    f"maximal step graft refused: {exc}",
                )
            )
            return None

        # The step is order-free: the committed block's winner is the
        # lowest-index committer on every backend and every schedule.
        winner_index = committers[0]
        race.winner_index = winner_index
        winner_report = reports[winner_index]
        for index in committers:
            outcome = outcomes[index]
            outcome.value = reports[index].value
            outcome.status = "committed" if index != winner_index else "won"
        for index, report in reports.items():
            if index in committers:
                continue
            outcomes[index].status = "failed"
            outcomes[index].detail = report.detail

        self._emit_step_events(committers, actual, reports, winner_index)
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.WINNER_COMMIT,
                block=self._trace_block,
                arm=winner_index,
                name=winner_report.name,
                pages=outcomes[winner_index].pages_written,
                work_seconds=winner_report.work_seconds,
                maximal_step=True,
            )

        win_time = spawn_done + max(
            reports[index].finished_at for index in committers
        )
        resume_at = spawn_done + race.total_seconds
        timeline.append((resume_at, "parent resumes (maximal step)"))
        timeline.sort(key=lambda event: event[0])
        overhead = OverheadBreakdown(
            setup=spawn_done,
            runtime=self.cost_model.page_copy_time(
                outcomes[winner_index].pages_written
            ),
            selection=max(0.0, resume_at - win_time),
        )
        return AltResult(
            value=winner_report.value,
            winner=outcomes[winner_index],
            outcomes=outcomes,
            elapsed=resume_at,
            overhead=overhead,
            wasted_work=wasted,
            timeline=timeline,
            page_transport=winner_report.page_transport
            or race.page_transport,
        )

    def _race_step(
        self, alternatives, runs, parent, outcomes, timeline, plan
    ) -> Optional[AltResult]:
        """The deterministic-timing twin of :meth:`_conclude_step`.

        Every body already ran to completion (the serial discipline), so
        the step needs no collect mode: validate the successes' dirty
        sets, commit them as one step, and charge only ``sync_latency``
        as selection overhead -- no termination instructions are issued
        because the step has no losers to kill.
        """
        committers = sorted(run.index for run in runs if run.succeeded)
        if len(committers) < 2:
            return None
        by_index = {run.index: run for run in runs}
        actual = {
            index: frozenset(
                default_engine.summarize(
                    by_index[index].child.space.table.dirty_pages
                )
            )
            for index in committers
        }
        if default_engine.validate(plan, actual) is not None:
            return None
        pages_map = {
            by_index[index].child.pid: sorted(actual[index])
            for index in committers[1:]
        }
        try:
            self.manager.alt_step_commit(
                parent,
                [by_index[index].child for index in committers],
                pages_map,
            )
        except PageApplyError:
            return None

        model = self.cost_model
        cpus = self.cpus if self.cpus is not None else max(1, len(runs))
        sched = ProcessorSharing(cpus=cpus)
        for run in runs:
            sched.add(run.index, arrival=run.arrival, demand=run.demand)
        completion: Dict[int, float] = {}
        while True:
            step = sched.step_to_next_completion()
            if step is None:
                break
            when, index = step
            completion[index] = when

        winner_index = committers[0]
        winner_run = by_index[winner_index]
        wasted = 0.0
        for run in runs:
            outcome = outcomes[run.index]
            finished = completion.get(run.index, sched.now)
            outcome.cpu_consumed = sched.job(run.index).consumed
            outcome.finished_at = finished
            if run.succeeded:
                outcome.status = (
                    "won" if run.index == winner_index else "committed"
                )
                outcome.value = run.value
                timeline.append(
                    (finished, f"{run.alternative.name} synchronizes")
                )
            else:
                outcome.status = "failed"
                outcome.detail = run.detail
                wasted += sched.job(run.index).consumed
                timeline.append(
                    (finished, f"{run.alternative.name} aborts: {run.detail}")
                )

        win_time = max(completion[index] for index in committers)
        sync_done = win_time + model.sync_latency
        if self.guard_placement is GuardPlacement.AT_SYNC:
            sync_done += alternatives[winner_index].guard_cost
        resume_at = sync_done

        self._emit_step_events(
            committers,
            actual,
            {index: by_index[index].alternative for index in committers},
            winner_index,
        )
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.WINNER_COMMIT,
                block=self._trace_block,
                arm=winner_index,
                name=winner_run.alternative.name,
                pages=winner_run.pages_written,
                sim_time=win_time,
                maximal_step=True,
            )
        timeline.append((resume_at, "parent resumes (maximal step)"))
        timeline.sort(key=lambda event: event[0])
        overhead = OverheadBreakdown(
            setup=len(runs) * model.fork_latency,
            runtime=model.page_copy_time(winner_run.pages_written),
            selection=resume_at - win_time,
        )
        return AltResult(
            value=winner_run.value,
            winner=outcomes[winner_index],
            outcomes=outcomes,
            elapsed=resume_at,
            overhead=overhead,
            wasted_work=wasted,
            timeline=timeline,
        )

    # ------------------------------------------------------------------
    # phase 3: the timing race + at-most-once selection

    def _race(self, alternatives, runs, parent, outcomes, timeline) -> AltResult:
        model = self.cost_model
        cpus = self.cpus if self.cpus is not None else max(1, len(runs))
        sched = ProcessorSharing(cpus=cpus)
        by_index = {run.index: run for run in runs}
        for run in runs:
            sched.add(run.index, arrival=run.arrival, demand=run.demand)

        winner_run: Optional[_ChildRun] = None
        win_time: Optional[float] = None
        while True:
            step = sched.step_to_next_completion()
            if step is None:
                break
            time, index = step
            run = by_index[index]
            if self.timeout is not None and time > self.timeout:
                return self._timeout(parent, sched, runs, outcomes, timeline)
            if run.succeeded:
                winner_run = run
                win_time = time
                timeline.append((time, f"{run.alternative.name} synchronizes"))
                break
            self.manager.fail(run.child)
            outcomes[index].status = "failed"
            outcomes[index].detail = run.detail
            outcomes[index].finished_at = time
            timeline.append(
                (time, f"{run.alternative.name} aborts: {run.detail}")
            )

        if winner_run is None:
            for run in runs:
                outcomes[run.index].cpu_consumed = sched.job(run.index).consumed
            error = AltBlockFailure(
                f"all {len(runs)} spawned alternatives failed"
            )
            error.outcomes = outcomes
            error.elapsed = sched.now
            # The kernel-level wait also observes the failure.
            try:
                self.manager.alt_wait(parent)
            except AltBlockFailure:
                pass
            timeline.append((sched.now, "block FAILED"))
            error.timeline = timeline
            raise error

        # At-most-once synchronization through the kernel.
        assert win_time is not None
        won = self.manager.alt_sync(winner_run.child, guard_ok=True)
        assert won, "first successful completion must win the rendezvous"
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.WINNER_COMMIT,
                block=self._trace_block,
                arm=winner_run.index,
                name=winner_run.alternative.name,
                pages=winner_run.pages_written,
                sim_time=win_time,
            )

        losers = [run for run in runs if run is not winner_run
                  and not sched.job(run.index).finished]
        sync_done = win_time + model.sync_latency
        if self.guard_placement is GuardPlacement.AT_SYNC:
            # The parent re-evaluates the winner's guard at the rendezvous.
            sync_done += winner_run.alternative.guard_cost
        # Termination instructions are issued serially after the sync.
        kill_times = {
            run.index: sync_done + (slot + 1) * model.kill_latency
            for slot, run in enumerate(losers)
        }
        # Losers burn CPU until their kill lands.
        for run in losers:
            sched.advance_to(kill_times[run.index])
            sched.cancel(run.index)
            outcomes[run.index].status = "eliminated"
            outcomes[run.index].finished_at = kill_times[run.index]
            timeline.append(
                (kill_times[run.index], f"kill {run.alternative.name}")
            )
            if tracer.enabled:
                tracer.emit(
                    _ev.LOSER_ELIMINATE,
                    block=self._trace_block,
                    arm=run.index,
                    name=run.alternative.name,
                    latency_seconds=kill_times[run.index] - win_time,
                    sim_time=kill_times[run.index],
                )
        last_kill = max(kill_times.values(), default=sync_done)

        if self.elimination is EliminationMode.SYNCHRONOUS:
            resume_at = max(sync_done, last_kill)
            selection = resume_at - win_time
        else:
            resume_at = sync_done
            selection = sync_done - win_time
        self.manager.alt_wait(parent, elimination=self.elimination)
        if self.elimination is EliminationMode.ASYNCHRONOUS:
            self.manager.drain_eliminations(winner_run.child.group_id)

        winner_outcome = outcomes[winner_run.index]
        winner_outcome.status = "won"
        winner_outcome.value = winner_run.value
        winner_outcome.finished_at = win_time
        for run in runs:
            outcomes[run.index].cpu_consumed = sched.job(run.index).consumed
        timeline.append((resume_at, "parent resumes"))

        sharing_delay = win_time - winner_run.arrival - winner_run.demand
        overhead = OverheadBreakdown(
            setup=len(runs) * model.fork_latency,
            runtime=(
                model.page_copy_time(winner_run.pages_written)
                + max(0.0, sharing_delay)
            ),
            selection=selection,
        )
        return AltResult(
            value=winner_run.value,
            winner=winner_outcome,
            outcomes=outcomes,
            elapsed=resume_at,
            overhead=overhead,
            wasted_work=sched.wasted_work(winner_run.index),
            timeline=timeline,
        )

    def _timeout(self, parent, sched, runs, outcomes, timeline):
        # The scheduler may already sit past the deadline (the stepping
        # that *revealed* the timeout over-ran it); never move backwards.
        if sched.now < self.timeout:
            sched.advance_to(self.timeout)
        tracer = _active_tracer()
        for run in runs:
            job = sched.job(run.index)
            if not job.finished:
                sched.cancel(run.index)
            outcomes[run.index].cpu_consumed = sched.job(run.index).consumed
            if outcomes[run.index].status == "untried":
                outcomes[run.index].status = "eliminated"
                outcomes[run.index].detail = "timeout"
                if tracer.enabled:
                    tracer.emit(
                        _ev.LOSER_ELIMINATE,
                        block=self._trace_block,
                        arm=run.index,
                        name=run.alternative.name,
                        latency_seconds=0.0,
                        detail="timeout",
                        sim_time=self.timeout,
                    )
        timeline.append((self.timeout, "alt_wait TIMEOUT"))
        try:
            self.manager.alt_wait(parent, timed_out=True)
        except (AltTimeout, AltBlockFailure):
            pass
        error = AltTimeout(
            f"no alternative succeeded within {self.timeout} seconds"
        )
        error.partial_reports = tuple(
            {
                "index": outcome.index,
                "name": outcome.name,
                "state": outcome.status,
                "elapsed": outcome.cpu_consumed,
            }
            for outcome in outcomes
        )
        error.outcomes = outcomes
        error.elapsed = self.timeout
        error.timeline = timeline
        raise error

    # ------------------------------------------------------------------
    # supervision: retries, degradation, autopsies

    def _demote_winner(
        self, race, winner_index, by_index, parent, outcomes, timeline,
        spawn_done, exc,
    ) -> None:
        """A winner whose page shipment was rejected did not really win.

        The parent's space is untouched (``apply_pages`` validates before
        writing); every child is failed through the kernel so the block
        concludes as an :class:`AltBlockFailure` with the rejection
        recorded on the would-be winner's report.
        """
        report = race.report(winner_index)
        report.succeeded = False
        report.abnormal = True
        report.detail = f"winner shipback rejected: {exc}"
        race.winner_index = None
        outcome = outcomes[winner_index]
        outcome.status = "failed"
        outcome.detail = report.detail
        elapsed = spawn_done + race.total_seconds
        timeline.append((elapsed, f"{report.name} shipback rejected"))
        for child in by_index.values():
            try:
                self.manager.fail(child)
            except ProcessStateError:
                pass  # already failed or eliminated above
        try:
            self.manager.alt_wait(parent)
        except AltBlockFailure:
            pass
        timeline.append((elapsed, "block FAILED"))
        error = AltBlockFailure(
            f"winning alternative's page shipment was rejected: {exc}"
        )
        error.outcomes = outcomes
        error.elapsed = elapsed
        error.timeline = timeline
        raise error

    def _reset_outcomes(self, alternatives, spawnable, outcomes) -> None:
        """Fresh 'untried' outcome slots for a retry / degraded attempt."""
        for index in spawnable:
            outcomes[index] = AltOutcome(
                index=index,
                name=alternatives[index].name,
                status="untried",
            )

    def _attempt_autopsy(
        self,
        number: int,
        race: Optional[BackendRace],
        degraded: bool = False,
        backoff_before: float = 0.0,
    ) -> AttemptAutopsy:
        """Fold one backend race into an :class:`AttemptAutopsy`."""
        backend_name = "serial" if degraded else self.backend.name
        if race is None:
            return AttemptAutopsy(
                number=number,
                backend=backend_name,
                winner_index=None,
                timed_out=False,
                elapsed=0.0,
                degraded=degraded,
                backoff_before=backoff_before,
            )
        attempt = AttemptAutopsy(
            number=number,
            backend=race.backend,
            winner_index=race.winner_index,
            timed_out=race.timed_out,
            elapsed=race.total_seconds,
            degraded=degraded,
            backoff_before=backoff_before,
        )
        for report in race.reports:
            outcome = classify_outcome(
                report.succeeded,
                report.cancelled,
                report.abnormal,
                report.detail,
                report.exit_signal,
                winner_exists=race.winner_index is not None,
            )
            if outcome == "won" and report.index != race.winner_index:
                outcome = "eliminated"  # succeeded, but a sibling won first
            attempt.arms.append(
                ArmAutopsy(
                    index=report.index,
                    name=report.name,
                    outcome=outcome,
                    detail=report.detail,
                    signal=report.exit_signal,
                    elapsed=report.work_seconds,
                    abnormal=report.abnormal,
                )
            )
        return attempt

    def _finish_autopsy(self, autopsy: RaceAutopsy, started: float) -> None:
        autopsy.total_elapsed = _time.perf_counter() - started
        injector = _fault_registry.active()
        if injector is not None:
            autopsy.faults_fired = list(injector.log)

    def _run_supervised(
        self, alternatives, spawnable, parent, outcomes, timeline
    ) -> AltResult:
        """The supervised race loop: retry, degrade, always report.

        Each attempt is a full :meth:`_run_real` race against *fresh* COW
        children (a failed ``alt_wait`` restores the parent to RUNNABLE,
        so retries re-spawn from the parent's untouched world).  Abnormal
        deaths are retried with exponential backoff; when the final real
        attempt shows every arm dying abnormally, the block is replayed
        once on a :class:`SerialBackend` (with the fault injector
        suppressed when ``clean_replay``) before the FAIL arm is taken.
        A :class:`RaceAutopsy` is attached to whatever comes out --
        ``result.autopsy`` on success, ``error.autopsy`` on failure.
        """
        sup = self.supervisor
        autopsy = RaceAutopsy()
        started = _time.perf_counter()
        retries_used = 0
        backoff_before = 0.0
        attempt_number = 0
        last_error: Optional[Exception] = None

        while True:
            attempt_number += 1
            if attempt_number > 1:
                self._reset_outcomes(alternatives, spawnable, outcomes)
            self._last_race = None
            try:
                result = self._run_real(
                    alternatives, spawnable, parent, outcomes, timeline
                )
            except AltTimeout as exc:
                autopsy.attempts.append(
                    self._attempt_autopsy(
                        attempt_number, self._last_race,
                        backoff_before=backoff_before,
                    )
                )
                last_error = exc
                autopsy.outcome = "timeout"
                break  # a block-level deadline is final: no retry budget
            except AltBlockFailure as exc:
                attempt = self._attempt_autopsy(
                    attempt_number, self._last_race,
                    backoff_before=backoff_before,
                )
                autopsy.attempts.append(attempt)
                last_error = exc
                if attempt.any_retryable and retries_used < sup.max_retries:
                    retries_used += 1
                    backoff_before = sup.backoff(retries_used)
                    timeline.append(
                        (
                            _time.perf_counter() - started,
                            f"supervisor: retry {retries_used}/"
                            f"{sup.max_retries} after "
                            f"{backoff_before:.3f}s backoff",
                        )
                    )
                    tracer = _active_tracer()
                    if tracer.enabled:
                        tracer.emit(
                            _ev.BACKOFF,
                            block=self._trace_block,
                            seconds=backoff_before,
                            retry=retries_used,
                        )
                    _time.sleep(backoff_before)
                    if tracer.enabled:
                        tracer.emit(
                            _ev.RETRY,
                            block=self._trace_block,
                            retry=retries_used,
                            max_retries=sup.max_retries,
                        )
                    continue
                autopsy.outcome = "failed"
                break
            else:
                attempt = self._attempt_autopsy(
                    attempt_number, self._last_race,
                    backoff_before=backoff_before,
                )
                autopsy.attempts.append(attempt)
                autopsy.outcome = "won"
                autopsy.winner_index = attempt.winner_index
                self._finish_autopsy(autopsy, started)
                result.autopsy = autopsy
                return result

        # Graceful degradation: every real arm died abnormally, so give
        # the block one clean, ordered chance before the FAIL arm.
        if (
            sup.degrade_to_serial
            and isinstance(last_error, AltBlockFailure)
            and autopsy.attempts
            and autopsy.attempts[-1].all_abnormal
        ):
            attempt_number += 1
            self._reset_outcomes(alternatives, spawnable, outcomes)
            self._last_race = None
            timeline.append(
                (
                    _time.perf_counter() - started,
                    "supervisor: degrading to serial replay",
                )
            )
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.DEGRADE,
                    block=self._trace_block,
                    reason="all arms died abnormally",
                    clean_replay=sup.clean_replay,
                )
            try:
                if sup.clean_replay:
                    with _fault_registry.suppressed():
                        result = self._run_real(
                            alternatives, spawnable, parent, outcomes,
                            timeline, backend=SerialBackend(),
                        )
                else:
                    result = self._run_real(
                        alternatives, spawnable, parent, outcomes,
                        timeline, backend=SerialBackend(),
                    )
            except (AltTimeout, AltBlockFailure) as exc:
                autopsy.attempts.append(
                    self._attempt_autopsy(
                        attempt_number, self._last_race, degraded=True
                    )
                )
                last_error = exc
                autopsy.outcome = (
                    "timeout" if isinstance(exc, AltTimeout) else "failed"
                )
            else:
                attempt = self._attempt_autopsy(
                    attempt_number, self._last_race, degraded=True
                )
                autopsy.attempts.append(attempt)
                autopsy.outcome = "degraded"
                autopsy.winner_index = attempt.winner_index
                self._finish_autopsy(autopsy, started)
                result.autopsy = autopsy
                return result

        self._finish_autopsy(autopsy, started)
        last_error.autopsy = autopsy
        raise last_error
