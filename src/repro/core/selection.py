"""Selection policies for the sequential executor.

Section 2: selection among open alternatives is 'non-deterministic and
unfair'.  A policy decides the order in which the sequential executor
tries alternatives (or which single one the Scheme B baseline commits to).
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence

from repro.core.alternative import Alternative


class SelectionPolicy:
    """Abstract order-of-trial policy."""

    def order(self, alternatives: Sequence[Alternative], rng: random.Random) -> List[int]:
        """Indices of ``alternatives`` in trial order."""
        raise NotImplementedError

    def single(self, alternatives: Sequence[Alternative], rng: random.Random) -> int:
        """The one index Scheme B commits to (default: first in order)."""
        return self.order(alternatives, rng)[0]


class OrderedPolicy(SelectionPolicy):
    """Try alternatives in the order given (recovery-block style: 'the
    alternatives are typically ordered on the basis of observed or
    estimated characteristics such as reliability and execution speed')."""

    def order(self, alternatives: Sequence[Alternative], rng: random.Random) -> List[int]:
        return list(range(len(alternatives)))


class RandomPolicy(SelectionPolicy):
    """Uniformly random trial order -- the paper's analysis baseline
    ('we'll assume randomness'; 'arbitrary selection can be done by a call
    to a random number generator, which costs nothing')."""

    def order(self, alternatives: Sequence[Alternative], rng: random.Random) -> List[int]:
        indices = list(range(len(alternatives)))
        rng.shuffle(indices)
        return indices


class PriorityPolicy(SelectionPolicy):
    """Order by a caller-supplied key (lower key tried first)."""

    def __init__(self, key: Callable[[Alternative], float]) -> None:
        self.key = key

    def order(self, alternatives: Sequence[Alternative], rng: random.Random) -> List[int]:
        return sorted(range(len(alternatives)), key=lambda i: self.key(alternatives[i]))
