"""The section 4.2 analytic model.

For alternatives ``C_1 .. C_N`` applied to input ``x``:

- the non-deterministic sequential baseline costs
  ``tau(C_mean, x) = mean_i tau(C_i, x)`` in expectation;
- concurrent execution costs ``tau(C_best, x) + tau(overhead)``;
- the performance improvement is their ratio, and parallel execution wins
  iff ``tau(C_best) + tau(overhead) < tau(C_mean)``.

``PAPER_TABLE`` reproduces the six worked scenarios of the paper
(N=3, tau(overhead)=5) whose PI values are 1.33, 7.0, 0.8, 0.33, 1.0, 1.9.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.sim.distributions import Distribution


def tau_mean(times: Sequence[float]) -> float:
    """``tau(C_mean, x)``: the arithmetic mean of the execution times."""
    if not times:
        raise ValueError("need at least one execution time")
    return sum(times) / len(times)


def tau_best(times: Sequence[float]) -> float:
    """``tau(C_best, x)``: the fastest execution time."""
    if not times:
        raise ValueError("need at least one execution time")
    return min(times)


def performance_improvement(times: Sequence[float], overhead: float) -> float:
    """``PI = tau(C_mean, x) / (tau(C_best, x) + tau(overhead))``."""
    if overhead < 0:
        raise ValueError("overhead cannot be negative")
    denominator = tau_best(times) + overhead
    if denominator <= 0:
        return float("inf")
    return tau_mean(times) / denominator


def parallel_wins(times: Sequence[float], overhead: float) -> bool:
    """The section 4.2 win condition:
    ``tau(C_best) + tau(overhead) < tau(C_mean)``."""
    return tau_best(times) + overhead < tau_mean(times)


def dispersion(times: Sequence[float]) -> float:
    """Population variance of the execution times.

    The paper: the favourable magnitude of ``tau(C_mean) - tau(C_best)``
    'is well-encapsulated by such a statistical measure of dispersion ...
    as the variance'.
    """
    if len(times) < 2:
        return 0.0
    return statistics.pvariance(times)


def expected_pi(
    distributions: Sequence[Distribution],
    overhead: float,
    samples: int = 2000,
    rng: Optional[random.Random] = None,
) -> float:
    """Monte-Carlo estimate of the expected PI over random inputs.

    Draws one execution time per alternative per trial, computes the
    per-input PI, and averages -- the regime of section 4.2 relation 3,
    where per-input times are unpredictable.
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    rng = rng if rng is not None else random.Random(0)
    total = 0.0
    for _ in range(samples):
        times = [dist.sample(rng) for dist in distributions]
        total += performance_improvement(times, overhead)
    return total / samples


@dataclass(frozen=True)
class PaperScenario:
    """One row of the section 4.2 table."""

    row: int
    times: tuple
    overhead: float
    paper_pi: float

    def computed_pi(self) -> float:
        """PI recomputed from the model."""
        return performance_improvement(list(self.times), self.overhead)

    def matches_paper(self, tolerance: float = 0.005) -> bool:
        """True when the recomputed PI equals the published value.

        The paper rounds to 2-3 significant figures; row (2) prints 7.0
        for 126/3 / (1 + 5) = 7.0 exactly, row (1) prints 1.33 for 20/15,
        and so on.  We compare against the printed value at its printed
        precision.
        """
        return abs(self.computed_pi() - self.paper_pi) <= tolerance * max(
            1.0, self.paper_pi
        )


PAPER_OVERHEAD = 5.0
"""tau(overhead) used throughout the paper's worked table."""


PAPER_TABLE: List[PaperScenario] = [
    PaperScenario(1, (10.0, 20.0, 30.0), PAPER_OVERHEAD, 1.33),
    PaperScenario(2, (1.0, 19.0, 106.0), PAPER_OVERHEAD, 7.0),
    PaperScenario(3, (20.0, 20.0, 20.0), PAPER_OVERHEAD, 0.8),
    PaperScenario(4, (1.0, 2.0, 3.0), PAPER_OVERHEAD, 0.33),
    PaperScenario(5, (115.0, 120.0, 125.0), PAPER_OVERHEAD, 1.0),
    PaperScenario(6, (100.0, 200.0, 300.0), PAPER_OVERHEAD, 1.9),
]
"""The six worked scenarios of section 4.2, with the published PI values.

What the paper infers from them: (3) and (5) show the *size of the
differences* matters; (4) shows the relative magnitude of times vs
overhead matters; (6) shows overhead effects diminish with increasing
relative execution time; (2) is the ideal case of large
``tau(C_mean) - tau(C_best)``."""


def decompose_overhead(
    setup: float, runtime: float, selection: float
) -> float:
    """``tau(overhead) = tau(setup) + tau(runtime) + tau(selection)``."""
    for name, value in (("setup", setup), ("runtime", runtime), ("selection", selection)):
        if value < 0:
            raise ValueError(f"{name} overhead cannot be negative")
    return setup + runtime + selection


def crossover_overhead(times: Sequence[float]) -> float:
    """The overhead at which concurrent execution stops winning.

    Solves ``tau(C_best) + overhead = tau(C_mean)``: any overhead below
    the returned value gives PI > 1.
    """
    return tau_mean(times) - tau_best(times)


def speedup_table(
    scenarios: Iterable[PaperScenario],
) -> List[dict]:
    """Rows for rendering: paper PI vs recomputed PI per scenario."""
    rows = []
    for scenario in scenarios:
        rows.append(
            {
                "row": scenario.row,
                "tau(C1)": scenario.times[0],
                "tau(C2)": scenario.times[1],
                "tau(C3)": scenario.times[2],
                "paper PI": scenario.paper_pi,
                "model PI": round(scenario.computed_pi(), 3),
                "match": "yes" if scenario.matches_paper() else "NO",
            }
        )
    return rows
