"""The analytic performance model of paper section 4.

Implements the performance-improvement formula, the win condition, the
paper's worked table, and prediction helpers used by the benchmark
harness; :mod:`repro.analysis.report` renders the tables.
"""

from repro.analysis.model import (
    PAPER_OVERHEAD,
    PAPER_TABLE,
    PaperScenario,
    expected_pi,
    parallel_wins,
    performance_improvement,
    tau_best,
    tau_mean,
)
from repro.analysis.report import format_table
from repro.analysis.throughput import (
    ThroughputPoint,
    saturation_point,
    simulate_contention,
)

__all__ = [
    "ThroughputPoint",
    "saturation_point",
    "simulate_contention",
    "PAPER_OVERHEAD",
    "PAPER_TABLE",
    "PaperScenario",
    "expected_pi",
    "format_table",
    "parallel_wins",
    "performance_improvement",
    "tau_best",
    "tau_mean",
]
