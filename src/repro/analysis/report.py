"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series the corresponding paper artifact
reports; this module keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render dict rows as an aligned ASCII table.

    >>> print(format_table([{"a": 1, "b": 2.5}], title="demo"))
    demo
    a | b
    --+----
    1 | 2.5
    """
    if not rows:
        return title if title else "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    widths = {
        column: max(len(column), *(len(_cell(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    rule = "-+-".join("-" * widths[column] for column in columns)
    body = [
        " | ".join(_cell(row.get(column, "")).ljust(widths[column]) for column in columns)
        for row in rows
    ]
    lines = ([title] if title else []) + [header, rule] + body
    return "\n".join(line.rstrip() for line in lines)


def format_timeline(timeline: Sequence, title: str = "") -> str:
    """Render an executor timeline as the Figure 2 style event list."""
    lines = [title] if title else []
    for time, label in timeline:
        lines.append(f"  t={time:>10.6f}  {label}")
    return "\n".join(lines)


def format_gantt(outcomes, width: int = 50, title: str = "") -> str:
    """Render per-alternative execution bars from an AltResult's outcomes.

    Each row spans ``started_at .. finished_at``; the status letter marks
    how the alternative ended (W won, F failed, E eliminated, - never
    spawned).
    """
    rows = [
        o for o in outcomes
        if o.started_at is not None and o.finished_at is not None
    ]
    lines = [title] if title else []
    if not rows:
        lines.append("(no alternatives ran)")
        return "\n".join(lines)
    horizon = max(o.finished_at for o in rows) or 1.0
    name_width = max(len(o.name) for o in rows)
    markers = {"won": "W", "failed": "F", "eliminated": "E"}
    for outcome in sorted(rows, key=lambda o: o.index):
        start = int(round(width * outcome.started_at / horizon))
        end = max(start + 1, int(round(width * outcome.finished_at / horizon)))
        bar = " " * start + "#" * (end - start)
        marker = markers.get(outcome.status, "?")
        lines.append(
            f"{outcome.name:<{name_width}} |{bar:<{width}}| {marker} "
            f"[{outcome.started_at:.3g}..{outcome.finished_at:.3g}]"
        )
    skipped = [o for o in outcomes if o.started_at is None]
    for outcome in skipped:
        lines.append(f"{outcome.name:<{name_width}} |{'':<{width}}| - (not spawned)")
    return "\n".join(lines)


def format_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    width: int = 50,
) -> str:
    """Render an (x, y) series with a crude horizontal bar chart.

    Used by the figure-shaped benches so the 'shape' claims are visible
    directly in terminal output.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    lines = [title] if title else []
    lines.append(f"{x_label:>12} | {y_label}")
    if not ys:
        return "\n".join(lines)
    top = max(ys) or 1.0
    for x, y in zip(xs, ys):
        bar = "#" * max(0, int(round(width * y / top)))
        lines.append(f"{_cell(x):>12} | {_cell(y):<10} {bar}")
    return "\n".join(lines)
