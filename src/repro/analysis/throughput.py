"""System-throughput impact of speculation (paper section 4.1, item 3).

'As our bias has been towards execution time as a performance goal, we
were willing to trade away throughput.  Users may want to know what the
tradeoffs are here, so the effect on system throughput should be
analyzed.'  This module performs that analysis.

Model: a closed system of ``users`` each repeatedly submitting an
alternative block to a cluster of ``cpus`` processors under egalitarian
processor sharing.  Sequential users run one alternative (mean demand
``tau_mean``); speculative users run all ``n`` alternatives but only need
the fastest (demand ``tau_best``), burning the siblings' work until
elimination.  The *load multiplier* of speculation is::

    m = (useful + wasted) / useful

Closed-form saturation analysis gives per-user response time and system
throughput; :func:`simulate_contention` confirms the shape by replaying
actual blocks through the processor-sharing scheduler.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.alternative import Alternative
from repro.core.concurrent import ConcurrentExecutor
from repro.process.scheduler import ProcessorSharing
from repro.sim.costs import FREE
from repro.sim.distributions import Distribution


@dataclass(frozen=True)
class ThroughputPoint:
    """The trade-off at one load level."""

    users: int
    cpus: int
    sequential_response: float
    speculative_response: float
    sequential_throughput: float
    speculative_throughput: float

    @property
    def response_gain(self) -> float:
        """How much faster a speculative user finishes (>1 is better)."""
        if self.speculative_response <= 0:
            return float("inf")
        return self.sequential_response / self.speculative_response

    @property
    def throughput_loss(self) -> float:
        """Fraction of system throughput sacrificed (0..1)."""
        if self.sequential_throughput <= 0:
            return 0.0
        return 1.0 - self.speculative_throughput / self.sequential_throughput


def saturation_point(
    tau_best: float,
    tau_mean: float,
    n_alternatives: int,
    cpus: int,
    users: Sequence[int],
    wasted_per_block: Optional[float] = None,
) -> List[ThroughputPoint]:
    """Closed-form throughput/response trade-off across load levels.

    Sequential blocks demand ``tau_mean`` CPU-seconds and complete in
    ``tau_mean`` when unloaded.  Speculative blocks complete in
    ``tau_best`` unloaded but demand ``tau_best + wasted`` CPU-seconds
    (``wasted`` defaults to the other ``n-1`` alternatives each burning
    ``tau_best`` before elimination).  Under processor sharing with U
    identical users, the slowdown factor is ``max(1, demand_rate)`` where
    ``demand_rate = U * per_block_cpu / (cpus * per_block_wall)`` -- i.e.
    response inflates once the cluster saturates.
    """
    if wasted_per_block is None:
        wasted_per_block = (n_alternatives - 1) * tau_best
    points = []
    for user_count in users:
        if user_count < 1:
            raise ValueError("need at least one user")
        seq_demand = tau_mean
        spec_demand = tau_best + wasted_per_block
        seq_slowdown = max(1.0, user_count * seq_demand / (cpus * tau_mean))
        spec_slowdown = max(
            1.0, user_count * spec_demand / (cpus * tau_best)
        )
        seq_response = tau_mean * seq_slowdown
        spec_response = tau_best * spec_slowdown
        points.append(
            ThroughputPoint(
                users=user_count,
                cpus=cpus,
                sequential_response=seq_response,
                speculative_response=spec_response,
                sequential_throughput=user_count / seq_response,
                speculative_throughput=user_count / spec_response,
            )
        )
    return points


def simulate_contention(
    duration_dist: Distribution,
    n_alternatives: int,
    cpus: int,
    users: int,
    blocks_per_user: int = 3,
    seed: int = 0,
) -> ThroughputPoint:
    """Replay actual racing blocks through the shared-CPU scheduler.

    Each user's block is ``n_alternatives`` jobs drawn from
    ``duration_dist``; all users' jobs contend on ``cpus`` processors.
    The sequential comparison runs one (mean-cost) job per block on the
    same cluster.  Returns the measured trade-off point.
    """
    rng = random.Random(seed)
    # --- speculative: all alternatives of all users share the cluster.
    spec_sched = ProcessorSharing(cpus=cpus)
    block_jobs = {}
    for user in range(users):
        for block in range(blocks_per_user):
            key = (user, block)
            jobs = []
            for alt in range(n_alternatives):
                job_id = (user, block, alt)
                spec_sched.add(job_id, 0.0, duration_dist.sample(rng))
                jobs.append(job_id)
            block_jobs[key] = jobs
    completions = {}
    while True:
        step = spec_sched.step_to_next_completion()
        if step is None:
            break
        time, job_id = step
        key = job_id[:2]
        if key not in completions:
            completions[key] = time
            for other in block_jobs[key]:
                if other != job_id:
                    spec_sched.cancel(other)
    spec_response = sum(completions.values()) / len(completions)
    spec_makespan = max(completions.values())
    spec_throughput = len(completions) / spec_makespan

    # --- sequential: one job per block at the distribution mean.
    seq_sched = ProcessorSharing(cpus=cpus)
    rng = random.Random(seed)
    for user in range(users):
        for block in range(blocks_per_user):
            seq_sched.add((user, block), 0.0, duration_dist.sample(rng))
    seq_done = seq_sched.run_to_completion()
    seq_response = sum(seq_done.values()) / len(seq_done)
    seq_throughput = len(seq_done) / max(seq_done.values())

    return ThroughputPoint(
        users=users,
        cpus=cpus,
        sequential_response=seq_response,
        speculative_response=spec_response,
        sequential_throughput=seq_throughput,
        speculative_throughput=spec_throughput,
    )
