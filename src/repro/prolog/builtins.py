"""Built-in predicates and arithmetic evaluation.

Builtins are generator functions ``fn(engine, args, bindings, trail,
depth)`` yielding once per solution.  Control constructs (conjunction,
disjunction, cut, if-then-else) live in the engine because they interact
with the cut barrier; everything else lives here.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from repro.errors import PrologTypeError
from repro.prolog.terms import (
    Atom,
    EMPTY_LIST,
    Num,
    Struct,
    Term,
    Var,
    list_items,
    make_list,
    term_str,
)
from repro.prolog.unify import resolve, undo_to, unify, walk

Builtin = Callable


def eval_arith(term: Term, bindings) -> float:
    """Evaluate an arithmetic expression term to a Python number."""
    term = walk(term, bindings)
    if isinstance(term, Num):
        return term.value
    if isinstance(term, Var):
        raise PrologTypeError(
            f"arguments are not sufficiently instantiated: {term_str(term)}"
        )
    if isinstance(term, Atom):
        constants = {"pi": math.pi, "e": math.e}
        if term.name in constants:
            return constants[term.name]
        raise PrologTypeError(f"not an arithmetic expression: {term.name}")
    assert isinstance(term, Struct)
    args = [eval_arith(arg, bindings) for arg in term.args]
    table2 = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": _divide,
        "//": _int_divide,
        "mod": _modulo,
        "**": lambda a, b: a**b,
        "min": min,
        "max": max,
    }
    table1 = {
        "-": lambda a: -a,
        "+": lambda a: a,
        "abs": abs,
        "sign": lambda a: (a > 0) - (a < 0),
        "sqrt": math.sqrt,
        "truncate": lambda a: int(a),
        "float": float,
    }
    if term.arity == 2 and term.functor in table2:
        return table2[term.functor](*args)
    if term.arity == 1 and term.functor in table1:
        return table1[term.functor](*args)
    raise PrologTypeError(
        f"unknown arithmetic function: {term.functor}/{term.arity}"
    )


def _divide(a, b):
    if b == 0:
        raise PrologTypeError("zero divisor")
    result = a / b
    if isinstance(a, int) and isinstance(b, int) and a % b == 0:
        return a // b
    return result


def _int_divide(a, b):
    if b == 0:
        raise PrologTypeError("zero divisor")
    return int(a // b)


def _modulo(a, b):
    if b == 0:
        raise PrologTypeError("zero divisor")
    return a % b


def _to_num(value) -> Num:
    return Num(value)


# ----------------------------------------------------------------------
# builtin implementations


def _bi_true(engine, args, bindings, trail, depth):
    yield


def _bi_fail(engine, args, bindings, trail, depth):
    return
    yield  # pragma: no cover


def _bi_unify(engine, args, bindings, trail, depth):
    mark = len(trail)
    if unify(args[0], args[1], bindings, trail, engine.occurs_check):
        yield
    undo_to(mark, bindings, trail)


def _bi_not_unifiable(engine, args, bindings, trail, depth):
    mark = len(trail)
    unifiable = unify(args[0], args[1], bindings, trail, engine.occurs_check)
    undo_to(mark, bindings, trail)
    if not unifiable:
        yield


def _bi_structural_eq(engine, args, bindings, trail, depth):
    if resolve(args[0], bindings) == resolve(args[1], bindings):
        yield


def _bi_structural_neq(engine, args, bindings, trail, depth):
    if resolve(args[0], bindings) != resolve(args[1], bindings):
        yield


def _bi_is(engine, args, bindings, trail, depth):
    value = _to_num(eval_arith(args[1], bindings))
    mark = len(trail)
    if unify(args[0], value, bindings, trail):
        yield
    undo_to(mark, bindings, trail)


def _compare(op):
    def builtin(engine, args, bindings, trail, depth):
        left = eval_arith(args[0], bindings)
        right = eval_arith(args[1], bindings)
        if op(left, right):
            yield

    return builtin


def _type_check(predicate):
    def builtin(engine, args, bindings, trail, depth):
        if predicate(walk(args[0], bindings)):
            yield

    return builtin


def _bi_between(engine, args, bindings, trail, depth):
    low = eval_arith(args[0], bindings)
    high = eval_arith(args[1], bindings)
    if not (isinstance(low, int) and isinstance(high, int)):
        raise PrologTypeError("between/3 needs integer bounds")
    target = walk(args[2], bindings)
    if isinstance(target, Num):
        if isinstance(target.value, int) and low <= target.value <= high:
            yield
        return
    for value in range(low, high + 1):
        mark = len(trail)
        if unify(args[2], Num(value), bindings, trail):
            yield
        undo_to(mark, bindings, trail)


def _bi_length(engine, args, bindings, trail, depth):
    lst = walk(args[0], bindings)
    if not isinstance(lst, Var):
        items, tail = list_items(resolve(lst, bindings))
        if tail != EMPTY_LIST:
            raise PrologTypeError("length/2 on a partial list")
        mark = len(trail)
        if unify(args[1], Num(len(items)), bindings, trail):
            yield
        undo_to(mark, bindings, trail)
        return
    count = walk(args[1], bindings)
    if isinstance(count, Num) and isinstance(count.value, int):
        fresh = make_list(
            [Var(f"_L{i}", engine.fresh_salt()) for i in range(count.value)]
        )
        mark = len(trail)
        if unify(args[0], fresh, bindings, trail):
            yield
        undo_to(mark, bindings, trail)
        return
    raise PrologTypeError("length/2 needs a list or an integer")


def _bi_findall(engine, args, bindings, trail, depth):
    template, goal, result = args
    collected = []
    mark = len(trail)
    for _ in engine.solve_goal_fresh(goal, bindings, trail, depth):
        collected.append(resolve(template, bindings))
    undo_to(mark, bindings, trail)
    mark = len(trail)
    if unify(result, make_list(collected), bindings, trail):
        yield
    undo_to(mark, bindings, trail)


def _bi_write(engine, args, bindings, trail, depth):
    engine.write_output(term_str(resolve(args[0], bindings)))
    yield


def _bi_nl(engine, args, bindings, trail, depth):
    engine.write_output("\n")
    yield


def _clause_arg(args, bindings) -> Term:
    term = resolve(args[0], bindings)
    if isinstance(term, Var):
        raise PrologTypeError("assert/retract argument must be instantiated")
    return term


def _bi_assertz(engine, args, bindings, trail, depth):
    engine.database.assertz(_clause_arg(args, bindings))
    yield


def _bi_asserta(engine, args, bindings, trail, depth):
    engine.database.asserta(_clause_arg(args, bindings))
    yield


def _bi_retract(engine, args, bindings, trail, depth):
    from repro.prolog.database import clause_from_term

    pattern = clause_from_term(walk(args[0], bindings))
    candidates = engine.database.clauses_for(*pattern.indicator)
    for stored in candidates:
        activation = engine.database.fresh_activation(stored)
        mark = len(trail)
        head_ok = unify(pattern.head, activation.head, bindings, trail)
        if head_ok and _body_matches(pattern, activation, bindings, trail):
            # Removal is permanent: backtracking does not restore the
            # clause (standard retract/1 behaviour).
            engine.database.remove_clause(stored)
            yield
        undo_to(mark, bindings, trail)


def _body_matches(pattern, activation, bindings, trail) -> bool:
    from repro.prolog.terms import Atom as _Atom

    if not pattern.body:
        # Plain 'retract(head)' matches facts only.
        return not activation.body or activation.body == (_Atom("true"),)
    if len(pattern.body) == 1 and isinstance(pattern.body[0], Var):
        # retract((H :- B)) with variable body matches anything.
        body_term = _conjoin_terms(activation.body) if activation.body else _Atom("true")
        return unify(pattern.body[0], body_term, bindings, trail)
    if len(pattern.body) != len(activation.body):
        return False
    return all(
        unify(p, a, bindings, trail)
        for p, a in zip(pattern.body, activation.body)
    )


def _conjoin_terms(goals):
    result = goals[-1]
    for goal in reversed(goals[:-1]):
        result = Struct(",", (goal, result))
    return result


def _bi_atom_length(engine, args, bindings, trail, depth):
    atom = walk(args[0], bindings)
    if not isinstance(atom, Atom):
        raise PrologTypeError("atom_length/2 needs an atom")
    mark = len(trail)
    if unify(args[1], Num(len(atom.name)), bindings, trail):
        yield
    undo_to(mark, bindings, trail)


def _bi_functor(engine, args, bindings, trail, depth):
    term = walk(args[0], bindings)
    mark = len(trail)
    if not isinstance(term, Var):
        # Decompose: functor(foo(a,b), F, A) -> F=foo, A=2.
        if isinstance(term, Struct):
            name: Term = Atom(term.functor)
            arity = Num(term.arity)
        elif isinstance(term, Atom):
            name = term
            arity = Num(0)
        else:  # numbers are their own functor
            name = term
            arity = Num(0)
        if unify(args[1], name, bindings, trail) and unify(
            args[2], arity, bindings, trail
        ):
            yield
        undo_to(mark, bindings, trail)
        return
    # Construct: functor(T, foo, 2) -> T = foo(_, _).
    name = walk(args[1], bindings)
    arity = walk(args[2], bindings)
    if isinstance(name, Var) or not isinstance(arity, Num):
        raise PrologTypeError("functor/3: arguments insufficiently instantiated")
    if not isinstance(arity.value, int) or arity.value < 0:
        raise PrologTypeError("functor/3: arity must be a non-negative integer")
    if arity.value == 0:
        built: Term = name
    else:
        if not isinstance(name, Atom):
            raise PrologTypeError("functor/3: functor name must be an atom")
        built = Struct(
            name.name,
            tuple(
                Var(f"_F{i}", engine.fresh_salt()) for i in range(arity.value)
            ),
        )
    if unify(args[0], built, bindings, trail):
        yield
    undo_to(mark, bindings, trail)


def _bi_arg(engine, args, bindings, trail, depth):
    index = walk(args[0], bindings)
    term = walk(args[1], bindings)
    if not isinstance(term, Struct):
        raise PrologTypeError("arg/3 needs a compound second argument")
    if not isinstance(index, Num) or not isinstance(index.value, int):
        raise PrologTypeError("arg/3 needs an integer first argument")
    if not 1 <= index.value <= term.arity:
        return
    mark = len(trail)
    if unify(args[2], term.args[index.value - 1], bindings, trail):
        yield
    undo_to(mark, bindings, trail)


def _bi_univ(engine, args, bindings, trail, depth):
    """``Term =.. List``: decompose/construct via a list."""
    term = walk(args[0], bindings)
    mark = len(trail)
    if not isinstance(term, Var):
        if isinstance(term, Struct):
            parts = make_list([Atom(term.functor), *term.args])
        else:
            parts = make_list([term])
        if unify(args[1], parts, bindings, trail):
            yield
        undo_to(mark, bindings, trail)
        return
    items, tail = list_items(resolve(args[1], bindings))
    if tail != EMPTY_LIST or not items:
        raise PrologTypeError("=../2 needs a proper non-empty list")
    head = items[0]
    if len(items) == 1:
        built: Term = head
    else:
        if not isinstance(head, Atom):
            raise PrologTypeError("=../2: functor must be an atom")
        built = Struct(head.name, tuple(items[1:]))
    if unify(args[0], built, bindings, trail):
        yield
    undo_to(mark, bindings, trail)


def _bi_copy_term(engine, args, bindings, trail, depth):
    from repro.prolog.unify import rename_term

    original = resolve(args[0], bindings)
    fresh = rename_term(original, engine.fresh_salt())
    mark = len(trail)
    if unify(args[1], fresh, bindings, trail):
        yield
    undo_to(mark, bindings, trail)


def _bi_succ(engine, args, bindings, trail, depth):
    left = walk(args[0], bindings)
    right = walk(args[1], bindings)
    mark = len(trail)
    if isinstance(left, Num):
        if not isinstance(left.value, int) or left.value < 0:
            raise PrologTypeError("succ/2 needs natural numbers")
        if unify(args[1], Num(left.value + 1), bindings, trail):
            yield
    elif isinstance(right, Num):
        if not isinstance(right.value, int) or right.value < 1:
            if isinstance(right.value, int) and right.value == 0:
                undo_to(mark, bindings, trail)
                return
            raise PrologTypeError("succ/2 needs natural numbers")
        if unify(args[0], Num(right.value - 1), bindings, trail):
            yield
    else:
        raise PrologTypeError("succ/2: arguments insufficiently instantiated")
    undo_to(mark, bindings, trail)


def _is_callable(term: Term) -> bool:
    return isinstance(term, (Atom, Struct))


BUILTINS: Dict[Tuple[str, int], Builtin] = {
    ("true", 0): _bi_true,
    ("fail", 0): _bi_fail,
    ("false", 0): _bi_fail,
    ("=", 2): _bi_unify,
    ("\\=", 2): _bi_not_unifiable,
    ("==", 2): _bi_structural_eq,
    ("\\==", 2): _bi_structural_neq,
    ("is", 2): _bi_is,
    ("<", 2): _compare(lambda a, b: a < b),
    (">", 2): _compare(lambda a, b: a > b),
    ("=<", 2): _compare(lambda a, b: a <= b),
    (">=", 2): _compare(lambda a, b: a >= b),
    ("=:=", 2): _compare(lambda a, b: a == b),
    ("=\\=", 2): _compare(lambda a, b: a != b),
    ("var", 1): _type_check(lambda t: isinstance(t, Var)),
    ("nonvar", 1): _type_check(lambda t: not isinstance(t, Var)),
    ("atom", 1): _type_check(lambda t: isinstance(t, Atom)),
    ("number", 1): _type_check(lambda t: isinstance(t, Num)),
    ("integer", 1): _type_check(
        lambda t: isinstance(t, Num) and isinstance(t.value, int)
    ),
    ("float", 1): _type_check(
        lambda t: isinstance(t, Num) and isinstance(t.value, float)
    ),
    ("atomic", 1): _type_check(lambda t: isinstance(t, (Atom, Num))),
    ("callable", 1): _type_check(_is_callable),
    ("between", 3): _bi_between,
    ("length", 2): _bi_length,
    ("findall", 3): _bi_findall,
    ("write", 1): _bi_write,
    ("nl", 0): _bi_nl,
    ("atom_length", 2): _bi_atom_length,
    ("assertz", 1): _bi_assertz,
    ("asserta", 1): _bi_asserta,
    ("assert", 1): _bi_assertz,
    ("retract", 1): _bi_retract,
    ("functor", 3): _bi_functor,
    ("arg", 3): _bi_arg,
    ("=..", 2): _bi_univ,
    ("copy_term", 2): _bi_copy_term,
    ("succ", 2): _bi_succ,
}


LIBRARY = """
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], Acc, Acc).
reverse_([H|T], Acc, R) :- reverse_(T, [H|Acc], R).

last([X], X).
last([_|T], X) :- last(T, X).

nth0(0, [X|_], X) :- !.
nth0(N, [_|T], X) :- N > 0, M is N - 1, nth0(M, T, X).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S1), S is S1 + H.

max_list([X], X).
max_list([H|T], M) :- max_list(T, M1), (H >= M1 -> M = H ; M = M1).

min_list([X], X).
min_list([H|T], M) :- min_list(T, M1), (H =< M1 -> M = H ; M = M1).
"""
"""Library predicates defined in Prolog itself and loaded on demand."""
