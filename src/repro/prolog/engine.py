"""SLD resolution with backtracking, cut, and inference accounting.

'Progress is achieved with a goal-oriented predicate-satisfaction
algorithm.'  The engine is a classical depth-first SLD resolver:

- goals resolve against database clauses in assertion order;
- bindings are mutated in place and undone through the trail;
- ``!`` prunes through a per-clause-activation cut barrier;
- every goal invocation counts as one *inference*, which is the unit the
  OR-parallel layer converts into simulated execution time.
"""

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import PrologError
from repro.prolog.builtins import BUILTINS, LIBRARY
from repro.prolog.database import Database
from repro.prolog.parser import parse_query
from repro.prolog.terms import Atom, Struct, Term, Var, term_str, variables_of
from repro.prolog.unify import Bindings, Trail, resolve, undo_to, unify, walk


@dataclass
class Solution:
    """One answer: query variable names mapped to resolved terms."""

    assignments: Dict[str, Term]

    def __getitem__(self, name: str) -> Term:
        return self.assignments[name]

    def __contains__(self, name: str) -> bool:
        return name in self.assignments

    def get(self, name: str, default=None):
        return self.assignments.get(name, default)

    def as_strings(self) -> Dict[str, str]:
        """Assignments rendered as Prolog text."""
        return {name: term_str(term) for name, term in self.assignments.items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.as_strings().items()))
        return f"Solution({inner})"


class _Barrier:
    """Cut barrier: one per clause activation / call scope."""

    __slots__ = ("cut",)

    def __init__(self) -> None:
        self.cut = False


_MIN_RECURSION_LIMIT = 15_000
"""The resolver uses one small pack of Python frames per goal depth, so
deep Prolog recursion needs a higher interpreter recursion limit.  This
value supports roughly 2,000 levels of Prolog recursion while still
raising ``RecursionError`` safely before the C stack is at risk."""


class Engine:
    """A Prolog interpreter over a :class:`Database`."""

    def __init__(
        self,
        database: Optional[Database] = None,
        max_inferences: Optional[int] = 5_000_000,
        occurs_check: bool = False,
        load_library: bool = True,
    ) -> None:
        self.database = database if database is not None else Database()
        self.max_inferences = max_inferences
        self.occurs_check = occurs_check
        self.inferences = 0
        self.output: List[str] = []
        self._salt = itertools.count(1_000_000)
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        if load_library and not self.database.has_predicate("member", 2):
            self.database.consult(LIBRARY)

    # ------------------------------------------------------------------
    # public API

    def consult(self, source: str) -> int:
        """Load program text into the database."""
        return self.database.consult(source)

    def solve(
        self, query: Union[str, Term], limit: Optional[int] = None
    ) -> Iterator[Solution]:
        """Iterate solutions of ``query`` (string or term).

        ``limit`` caps the number of solutions produced.
        """
        goal = parse_query(query) if isinstance(query, str) else query
        query_vars = [v for v in variables_of(goal) if not v.name.startswith("_")]
        bindings: Bindings = {}
        trail: Trail = []
        produced = 0
        for _ in self._solve_goal(goal, bindings, trail, 0, _Barrier()):
            yield Solution(
                {var.name: resolve(var, bindings) for var in query_vars}
            )
            produced += 1
            if limit is not None and produced >= limit:
                return

    def solve_first(self, query: Union[str, Term]) -> Optional[Solution]:
        """The first solution, or ``None``."""
        for solution in self.solve(query, limit=1):
            return solution
        return None

    def count_solutions(self, query: Union[str, Term]) -> int:
        """How many solutions the query has."""
        return sum(1 for _ in self.solve(query))

    def write_output(self, text: str) -> None:
        """Sink for ``write/1`` and ``nl/0``."""
        self.output.append(text)

    def fresh_salt(self) -> int:
        """A fresh variable salt for builtins that invent variables."""
        return next(self._salt)

    def solve_goal_fresh(self, goal, bindings, trail, depth):
        """Solve a goal in a fresh cut scope (for findall/3, call/1)."""
        return self._solve_goal(goal, bindings, trail, depth, _Barrier())

    # ------------------------------------------------------------------
    # the resolver

    def _charge_inference(self) -> None:
        self.inferences += 1
        if self.max_inferences is not None and self.inferences > self.max_inferences:
            raise PrologError(
                f"inference limit of {self.max_inferences} exceeded"
            )

    def _solve_goal(
        self,
        goal: Term,
        bindings: Bindings,
        trail: Trail,
        depth: int,
        barrier: _Barrier,
    ) -> Iterator[None]:
        self._charge_inference()
        goal = walk(goal, bindings)
        if isinstance(goal, Var):
            raise PrologError("unbound variable called as a goal")
        indicator = (
            (goal.name, 0) if isinstance(goal, Atom) else goal.indicator
        )
        args: Tuple[Term, ...] = () if isinstance(goal, Atom) else goal.args

        # Control constructs (cut-transparent).
        if indicator == (",", 2):
            yield from self._solve_conjunction(args, bindings, trail, depth, barrier)
            return
        if indicator == (";", 2):
            yield from self._solve_disjunction(args, bindings, trail, depth, barrier)
            return
        if indicator == ("->", 2):
            yield from self._solve_if_then_else(
                args[0], args[1], None, bindings, trail, depth, barrier
            )
            return
        if indicator == ("!", 0):
            yield
            barrier.cut = True
            return
        if indicator == ("\\+", 1):
            yield from self._solve_negation(args[0], bindings, trail, depth)
            return
        if indicator == ("call", 1):
            yield from self.solve_goal_fresh(args[0], bindings, trail, depth + 1)
            return

        builtin = BUILTINS.get(indicator)
        if builtin is not None:
            yield from builtin(self, args, bindings, trail, depth)
            return

        yield from self._solve_user_goal(goal, indicator, bindings, trail, depth)

    def _solve_user_goal(self, goal, indicator, bindings, trail, depth):
        clauses = self.database.clauses_for(*indicator)
        if not clauses:
            if self.database.is_known(*indicator):
                return  # all clauses retracted: the call simply fails
            raise PrologError(
                f"unknown predicate {indicator[0]}/{indicator[1]}"
            )
        clause_barrier = _Barrier()
        for clause in clauses:
            activation = self.database.fresh_activation(clause)
            mark = len(trail)
            if unify(goal, activation.head, bindings, trail, self.occurs_check):
                yield from self._solve_conjunction(
                    activation.body, bindings, trail, depth + 1, clause_barrier
                )
            undo_to(mark, bindings, trail)
            if clause_barrier.cut:
                return

    def _solve_conjunction(self, goals, bindings, trail, depth, barrier):
        if not goals:
            yield
            return
        yield from self._solve_goals_from(goals, 0, bindings, trail, depth, barrier)

    def _solve_goals_from(self, goals, index, bindings, trail, depth, barrier):
        if index == len(goals):
            yield
            return
        generator = self._solve_goal(goals[index], bindings, trail, depth, barrier)
        for _ in generator:
            yield from self._solve_goals_from(
                goals, index + 1, bindings, trail, depth, barrier
            )
            if barrier.cut:
                generator.close()
                return

    def _solve_disjunction(self, args, bindings, trail, depth, barrier):
        left, right = args
        left_walked = walk(left, bindings)
        if (
            isinstance(left_walked, Struct)
            and left_walked.functor == "->"
            and left_walked.arity == 2
        ):
            yield from self._solve_if_then_else(
                left_walked.args[0],
                left_walked.args[1],
                right,
                bindings,
                trail,
                depth,
                barrier,
            )
            return
        mark = len(trail)
        yield from self._solve_goal(left, bindings, trail, depth, barrier)
        undo_to(mark, bindings, trail)
        if barrier.cut:
            return
        yield from self._solve_goal(right, bindings, trail, depth, barrier)

    def _solve_if_then_else(
        self, condition, then_goal, else_goal, bindings, trail, depth, barrier
    ):
        mark = len(trail)
        condition_held = False
        for _ in self.solve_goal_fresh(condition, bindings, trail, depth + 1):
            condition_held = True
            yield from self._solve_goal(then_goal, bindings, trail, depth, barrier)
            break  # the condition is committed to its first solution
        if condition_held:
            return
        undo_to(mark, bindings, trail)
        if else_goal is not None:
            yield from self._solve_goal(else_goal, bindings, trail, depth, barrier)

    def _solve_negation(self, goal, bindings, trail, depth):
        mark = len(trail)
        for _ in self.solve_goal_fresh(goal, bindings, trail, depth + 1):
            undo_to(mark, bindings, trail)
            return
        undo_to(mark, bindings, trail)
        yield
