"""Unification with trail-based undo.

'Many normal operations are subsumed by the unification algorithm by which
Prolog attempts to satisfy predicates.'  Bindings live in a mutable dict;
every binding is recorded on a trail so backtracking can undo to a mark in
O(bindings since mark).  The paper's observation that unification produces
'an overwhelming preponderance of read references' corresponds here to
``walk`` chains (reads) vastly outnumbering trail pushes (writes).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.prolog.terms import Struct, Term, Var

Bindings = Dict[Var, Term]
Trail = List[Var]


def walk(term: Term, bindings: Bindings) -> Term:
    """Dereference ``term`` through the binding chain (shallow)."""
    while isinstance(term, Var):
        bound = bindings.get(term)
        if bound is None:
            return term
        term = bound
    return term


def bind(var: Var, value: Term, bindings: Bindings, trail: Trail) -> None:
    """Record ``var = value`` and push the var on the trail."""
    bindings[var] = value
    trail.append(var)


def undo_to(mark: int, bindings: Bindings, trail: Trail) -> None:
    """Pop trail entries down to ``mark``, unbinding as we go."""
    while len(trail) > mark:
        del bindings[trail.pop()]


def occurs_in(var: Var, term: Term, bindings: Bindings) -> bool:
    """Occurs check: does ``var`` appear in (the walk of) ``term``?"""
    stack = [term]
    while stack:
        current = walk(stack.pop(), bindings)
        if current == var:
            return True
        if isinstance(current, Struct):
            stack.extend(current.args)
    return False


def unify(
    a: Term,
    b: Term,
    bindings: Bindings,
    trail: Trail,
    occurs_check: bool = False,
) -> bool:
    """Attempt to unify ``a`` with ``b`` in place.

    On failure the caller is responsible for ``undo_to`` -- partial
    bindings may remain, which is why callers always take a trail mark
    first.
    """
    stack = [(a, b)]
    while stack:
        left, right = stack.pop()
        left = walk(left, bindings)
        right = walk(right, bindings)
        if left == right:
            continue
        if isinstance(left, Var):
            if occurs_check and occurs_in(left, right, bindings):
                return False
            bind(left, right, bindings, trail)
            continue
        if isinstance(right, Var):
            if occurs_check and occurs_in(right, left, bindings):
                return False
            bind(right, left, bindings, trail)
            continue
        if isinstance(left, Struct) and isinstance(right, Struct):
            if left.functor != right.functor or left.arity != right.arity:
                return False
            stack.extend(zip(left.args, right.args))
            continue
        return False
    return True


def resolve(term: Term, bindings: Bindings) -> Term:
    """Deep-substitute every bound variable in ``term``."""
    term = walk(term, bindings)
    if isinstance(term, Struct):
        return Struct(
            term.functor, tuple(resolve(arg, bindings) for arg in term.args)
        )
    return term


def rename_term(term: Term, salt: int, cache: Optional[Dict[Var, Var]] = None) -> Term:
    """A copy of ``term`` with every variable freshened by ``salt``."""
    if cache is None:
        cache = {}
    if isinstance(term, Var):
        fresh = cache.get(term)
        if fresh is None:
            # Fold any existing salt into the name so renaming an
            # already-renamed term cannot collide two distinct variables.
            base = f"{term.name}~{term.salt}" if term.salt else term.name
            fresh = Var(base, salt)
            cache[term] = fresh
        return fresh
    if isinstance(term, Struct):
        return Struct(
            term.functor,
            tuple(rename_term(arg, salt, cache) for arg in term.args),
        )
    return term
