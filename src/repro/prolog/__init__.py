"""A Prolog interpreter with OR-parallel execution (paper section 5.2).

Built from scratch so the reproduction owns the whole substrate:

- :mod:`repro.prolog.terms` -- atoms, numbers, variables, structures, lists;
- :mod:`repro.prolog.parser` -- a reader for a practical Prolog subset
  (clauses, operators, lists, cut, negation, arithmetic);
- :mod:`repro.prolog.unify` -- unification with trail-based undo;
- :mod:`repro.prolog.database` -- the clause database;
- :mod:`repro.prolog.engine` -- SLD resolution with backtracking, cut,
  and an inference counter used for simulated-time accounting;
- :mod:`repro.prolog.orparallel` -- clause-level OR-parallelism on the
  alternatives framework: each candidate clause races in its own copied
  world, the first solution wins, nothing needs merging.
"""

from repro.prolog.database import Clause, Database
from repro.prolog.engine import Engine, Solution
from repro.prolog.orparallel import OrParallelEngine, OrParallelResult
from repro.prolog.parser import parse_program, parse_query, parse_term
from repro.prolog.terms import Atom, Num, Struct, Term, Var, make_list

__all__ = [
    "Atom",
    "Clause",
    "Database",
    "Engine",
    "Num",
    "OrParallelEngine",
    "OrParallelResult",
    "Solution",
    "Struct",
    "Term",
    "Var",
    "make_list",
    "parse_program",
    "parse_query",
    "parse_term",
]
