"""OR-parallel Prolog execution on the alternatives framework (§5.2).

'More appropriate is rule-level parallelism ... The situation is similar
for OR-parallelism; this is more interesting to us, since it maps closely
to our problem of attempting alternatives in parallel.  The alternatives
here are specialized to predicates.'

At the query's principal choice point, each candidate clause becomes one
:class:`~repro.core.Alternative`: its body unifies the goal with that
clause's (renamed) head and, on success, solves the clause body to the
first solution with a private engine over *copied* bindings.  'What our
method does is copy, and since we choose only one alternative, no merging
is necessary.'  The fastest clause to produce a solution wins the race;
execution time is ``inferences x inference_time``, charged through the
alternative's context, so the simulated race reflects the real search
effort of each branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.core.alternative import AltContext, Alternative
from repro.core.concurrent import ConcurrentExecutor
from repro.core.result import AltResult
from repro.errors import AltBlockFailure, PrologError
from repro.process.primitives import EliminationMode
from repro.prolog.builtins import BUILTINS
from repro.prolog.database import Database
from repro.prolog.engine import Engine, Solution
from repro.prolog.parser import parse_query
from repro.prolog.terms import Atom, Struct, Term, Var, term_str, variables_of
from repro.prolog.unify import Bindings, Trail, resolve, undo_to, unify, walk
from repro.sim.costs import CostModel, FREE

_CONTROL = {(",", 2), (";", 2), ("->", 2), ("!", 0), ("\\+", 1), ("call", 1)}


@dataclass
class OrParallelResult:
    """Outcome of one OR-parallel first-solution query."""

    solution: Optional[Solution]
    alt_result: AltResult
    sequential_inferences: int
    """Inferences a plain depth-first engine needs for the same query."""

    inference_time: float
    prefix_inferences: int = 0
    """Deterministic reductions performed before the choice point when
    descending (shared by all branches, paid once)."""

    @property
    def parallel_time(self) -> float:
        """Simulated time of the OR-parallel race (incl. shared prefix)."""
        return (
            self.alt_result.elapsed
            + self.prefix_inferences * self.inference_time
        )

    @property
    def sequential_time(self) -> float:
        """Simulated time of sequential backtracking."""
        return self.sequential_inferences * self.inference_time

    @property
    def speedup(self) -> float:
        """Sequential over parallel time-to-first-solution."""
        if self.parallel_time <= 0:
            return float("inf")
        return self.sequential_time / self.parallel_time


class OrParallelEngine:
    """Race the clauses of the query's principal predicate."""

    def __init__(
        self,
        database: Database,
        cost_model: CostModel = FREE,
        inference_time: float = 1e-4,
        cpus: Optional[int] = None,
        elimination: EliminationMode = EliminationMode.ASYNCHRONOUS,
        max_inferences: Optional[int] = 5_000_000,
        seed: int = 0,
    ) -> None:
        self.database = database
        self.cost_model = cost_model
        self.inference_time = inference_time
        self.max_inferences = max_inferences
        self._executor_args = dict(
            cost_model=cost_model,
            cpus=cpus,
            elimination=elimination,
            seed=seed,
        )

    # ------------------------------------------------------------------

    def _principal_clauses(self, goal: Term):
        if isinstance(goal, Atom):
            indicator = (goal.name, 0)
        elif isinstance(goal, Struct):
            indicator = goal.indicator
        else:
            raise PrologError(f"not a callable goal: {goal!r}")
        if indicator in ((",", 2), (";", 2)):
            raise PrologError(
                "OR-parallel execution starts at a predicate call; "
                "wrap conjunctions in a driver predicate"
            )
        clauses = self.database.clauses_for(*indicator)
        if not clauses:
            raise PrologError(
                f"unknown predicate {indicator[0]}/{indicator[1]}"
            )
        return clauses

    def _clause_alternative(self, goal: Term, clause, slot: int) -> Alternative:
        def body(context: AltContext):
            engine = Engine(
                self.database,
                max_inferences=self.max_inferences,
                load_library=False,
            )
            activation = self.database.fresh_activation(clause)
            bindings: dict = {}
            trail: list = []
            # The OR-branch's private world: bindings are *copied* per
            # branch (fresh dict), exactly the copy-no-merge strategy.
            # The reduction step itself (goal-to-head unification) costs
            # one inference, matching the sequential engine's accounting.
            context.charge(self.inference_time)
            if not unify(goal, activation.head, bindings, trail):
                context.fail("clause head does not unify")
            solution_found = False
            query_vars = [
                v for v in variables_of(goal) if not v.name.startswith("_")
            ]
            answer = None
            branch_goal = (
                _conjoin(activation.body) if activation.body else Atom("true")
            )
            for _ in engine.solve_goal_fresh(branch_goal, bindings, trail, 0):
                solution_found = True
                answer = Solution(
                    {v.name: resolve(v, bindings) for v in query_vars}
                )
                break
            context.charge(engine.inferences * self.inference_time)
            undo_to(0, bindings, trail)
            if not solution_found:
                context.fail("no solution on this branch")
            context.put("solution", answer.as_strings())
            return answer

        return Alternative(name=f"clause-{slot}:{_head_str(clause)}", body=body)

    # ------------------------------------------------------------------

    def solve_first(
        self, query: Union[str, Term], descend: bool = False
    ) -> OrParallelResult:
        """Race clauses at a choice point; return the fastest solution.

        With ``descend=False`` (the default) the race happens at the
        query's principal predicate, which must have several clauses.
        With ``descend=True`` the engine first performs the query's
        *deterministic* reductions -- resolving through single-clause
        predicates, carrying the rest of the conjunction as a
        continuation -- and spawns the race at the first genuine choice
        point it meets.  This is the granularity control of section 5.2:
        spawning is deferred until there is real branching to exploit.

        Raises :class:`~repro.errors.AltBlockFailure` when no branch
        yields a solution (the query simply fails).
        """
        goal = parse_query(query) if isinstance(query, str) else query
        if descend:
            return self._solve_first_descend(goal)
        clauses = self._principal_clauses(goal)
        alternatives = [
            self._clause_alternative(goal, clause, slot)
            for slot, clause in enumerate(clauses, start=1)
        ]
        return self._race(goal, alternatives, prefix_inferences=0)

    def _race(
        self,
        goal: Term,
        alternatives: List[Alternative],
        prefix_inferences: int,
    ) -> OrParallelResult:
        executor = ConcurrentExecutor(**self._executor_args)
        sequential = self._sequential_inferences(goal)
        try:
            alt_result = executor.run(alternatives)
        except AltBlockFailure as failure:
            failure.sequential_inferences = sequential
            raise
        return OrParallelResult(
            solution=alt_result.value,
            alt_result=alt_result,
            sequential_inferences=sequential,
            inference_time=self.inference_time,
            prefix_inferences=prefix_inferences,
        )

    # ------------------------------------------------------------------
    # descent to the first choice point

    def _solve_first_descend(self, goal: Term) -> OrParallelResult:
        goals: List[Term] = list(_flatten(goal))
        bindings: Bindings = {}
        trail: Trail = []
        prefix = 0
        while goals:
            current = walk(goals[0], bindings)
            if isinstance(current, Var):
                raise PrologError("unbound variable called as a goal")
            indicator = (
                (current.name, 0)
                if isinstance(current, Atom)
                else current.indicator
            )
            if indicator in _CONTROL or indicator in BUILTINS:
                # Control constructs and builtins end the deterministic
                # descent; the remaining conjunction runs as one branch.
                break
            if not self.database.has_predicate(*indicator):
                raise PrologError(
                    f"unknown predicate {indicator[0]}/{indicator[1]}"
                )
            clauses = self.database.clauses_for(*indicator)
            if len(clauses) > 1:
                alternatives = [
                    self._continuation_alternative(
                        goal, current, list(goals[1:]), bindings, clause, slot
                    )
                    for slot, clause in enumerate(clauses, start=1)
                ]
                return self._race(goal, alternatives, prefix_inferences=prefix)
            activation = self.database.fresh_activation(clauses[0])
            prefix += 1
            if not unify(current, activation.head, bindings, trail):
                sequential = self._sequential_inferences(goal)
                failure = AltBlockFailure(
                    "query fails deterministically before any choice point"
                )
                failure.sequential_inferences = sequential
                raise failure
            goals = list(activation.body) + goals[1:]
        # No multi-clause choice point: run the residue as a single branch
        # so callers get a uniform result shape.
        residue = _conjoin(tuple(goals)) if goals else Atom("true")
        alternatives = [
            self._residue_alternative(goal, residue, bindings)
        ]
        return self._race(goal, alternatives, prefix_inferences=prefix)

    def _continuation_alternative(
        self,
        query_goal: Term,
        first_goal: Term,
        rest_goals: List[Term],
        shared_bindings: Bindings,
        clause,
        slot: int,
    ) -> Alternative:
        def body(context: AltContext):
            engine = Engine(
                self.database,
                max_inferences=self.max_inferences,
                load_library=False,
            )
            # Copy the shared prefix bindings: each branch owns a world.
            bindings: Bindings = dict(shared_bindings)
            trail: Trail = []
            activation = self.database.fresh_activation(clause)
            context.charge(self.inference_time)  # the reduction step
            if not unify(first_goal, activation.head, bindings, trail):
                context.fail("clause head does not unify")
            branch_goals = tuple(activation.body) + tuple(rest_goals)
            branch_goal = _conjoin(branch_goals) if branch_goals else Atom("true")
            answer = self._first_answer(engine, query_goal, branch_goal, bindings, trail)
            context.charge(engine.inferences * self.inference_time)
            if answer is None:
                context.fail("no solution on this branch")
            context.put("solution", answer.as_strings())
            return answer

        return Alternative(name=f"clause-{slot}:{_head_str(clause)}", body=body)

    def _residue_alternative(
        self, query_goal: Term, residue: Term, shared_bindings: Bindings
    ) -> Alternative:
        def body(context: AltContext):
            engine = Engine(
                self.database,
                max_inferences=self.max_inferences,
                load_library=False,
            )
            bindings: Bindings = dict(shared_bindings)
            trail: Trail = []
            answer = self._first_answer(engine, query_goal, residue, bindings, trail)
            context.charge(engine.inferences * self.inference_time)
            if answer is None:
                context.fail("the deterministic residue fails")
            return answer

        return Alternative(name="deterministic-residue", body=body)

    def _first_answer(
        self,
        engine: Engine,
        query_goal: Term,
        branch_goal: Term,
        bindings: Bindings,
        trail: Trail,
    ) -> Optional[Solution]:
        query_vars = [
            v for v in variables_of(query_goal) if not v.name.startswith("_")
        ]
        for _ in engine.solve_goal_fresh(branch_goal, bindings, trail, 0):
            answer = Solution(
                {v.name: resolve(v, bindings) for v in query_vars}
            )
            undo_to(0, bindings, trail)
            return answer
        undo_to(0, bindings, trail)
        return None

    def _sequential_inferences(self, goal: Term) -> int:
        engine = Engine(
            self.database,
            max_inferences=self.max_inferences,
            load_library=False,
        )
        engine.solve_first(goal)
        return engine.inferences


def _conjoin(goals) -> Term:
    """Fold a goal tuple back into a ','-tree for the engine."""
    result = goals[-1]
    for goal in reversed(goals[:-1]):
        result = Struct(",", (goal, result))
    return result


def _flatten(term: Term) -> List[Term]:
    """Flatten a ','-tree into a goal list."""
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        return _flatten(term.args[0]) + _flatten(term.args[1])
    return [term]


def _head_str(clause) -> str:
    text = term_str(clause.head)
    return text if len(text) <= 30 else text[:27] + "..."
