"""A reader for a practical Prolog subset.

Supports: facts and rules (``:-``), conjunction ``,``, disjunction ``;``,
negation ``\\+``, cut ``!``, unification and comparison operators,
arithmetic expressions with standard precedence, lists with ``[H|T]``
sugar, quoted atoms, ``%`` line comments and ``/* */`` block comments.

The grammar is a Pratt (operator-precedence) parser over a hand-written
tokenizer, following the standard Prolog operator table for the operators
we implement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import PrologSyntaxError
from repro.prolog.terms import Atom, EMPTY_LIST, Num, Struct, Term, Var, make_list

# operator table: name -> (precedence, type) for infix and prefix
_INFIX_OPS = {
    ":-": (1200, "xfx"),
    ";": (1100, "xfy"),
    "->": (1050, "xfy"),
    ",": (1000, "xfy"),
    "=": (700, "xfx"),
    "=..": (700, "xfx"),
    "\\=": (700, "xfx"),
    "==": (700, "xfx"),
    "\\==": (700, "xfx"),
    "is": (700, "xfx"),
    "<": (700, "xfx"),
    ">": (700, "xfx"),
    "=<": (700, "xfx"),
    ">=": (700, "xfx"),
    "=:=": (700, "xfx"),
    "=\\=": (700, "xfx"),
    "+": (500, "yfx"),
    "-": (500, "yfx"),
    "*": (400, "yfx"),
    "/": (400, "yfx"),
    "//": (400, "yfx"),
    "mod": (400, "yfx"),
    "**": (200, "xfx"),
}

_PREFIX_OPS = {
    ":-": (1200, "fx"),
    "\\+": (900, "fy"),
    "-": (200, "fy"),
    "+": (200, "fy"),
}

_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&")


@dataclass(frozen=True)
class Token:
    kind: str  # 'atom', 'var', 'num', 'punct', 'end'
    text: str
    position: int


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.text = text
        self.position = 0
        self.tokens: List[Token] = []
        self._scan()

    def _error(self, message: str) -> PrologSyntaxError:
        line = self.text.count("\n", 0, self.position) + 1
        return PrologSyntaxError(f"line {line}: {message}")

    def _scan(self) -> None:
        text = self.text
        n = len(text)
        while self.position < n:
            ch = text[self.position]
            if ch in " \t\r\n":
                self.position += 1
                continue
            if ch == "%":
                newline = text.find("\n", self.position)
                self.position = n if newline < 0 else newline + 1
                continue
            if text.startswith("/*", self.position):
                end = text.find("*/", self.position + 2)
                if end < 0:
                    raise self._error("unterminated block comment")
                self.position = end + 2
                continue
            start = self.position
            if ch.isdigit():
                self._scan_number(start)
            elif ch == "'":
                self._scan_quoted_atom(start)
            elif ch.isalpha() or ch == "_":
                self._scan_name(start)
            elif ch in "()[]|,!":
                self.position += 1
                kind = "atom" if ch in ",!" else "punct"
                self.tokens.append(Token(kind, ch, start))
            elif ch == ";":
                self.position += 1
                self.tokens.append(Token("atom", ";", start))
            elif ch in _SYMBOL_CHARS:
                self._scan_symbol(start)
            else:
                raise self._error(f"unexpected character {ch!r}")
        self.tokens.append(Token("end", "", n))

    def _scan_number(self, start: int) -> None:
        text = self.text
        position = start
        while position < len(text) and text[position].isdigit():
            position += 1
        if (
            position < len(text) - 1
            and text[position] == "."
            and text[position + 1].isdigit()
        ):
            position += 1
            while position < len(text) and text[position].isdigit():
                position += 1
            if position < len(text) and text[position] in "eE":
                position += 1
                if position < len(text) and text[position] in "+-":
                    position += 1
                while position < len(text) and text[position].isdigit():
                    position += 1
        self.position = position
        self.tokens.append(Token("num", text[start:position], start))

    def _scan_quoted_atom(self, start: int) -> None:
        text = self.text
        position = start + 1
        chunks = []
        while True:
            if position >= len(text):
                raise self._error("unterminated quoted atom")
            ch = text[position]
            if ch == "'":
                if position + 1 < len(text) and text[position + 1] == "'":
                    chunks.append("'")
                    position += 2
                    continue
                position += 1
                break
            chunks.append(ch)
            position += 1
        self.position = position
        self.tokens.append(Token("atom", "".join(chunks), start))

    def _scan_name(self, start: int) -> None:
        text = self.text
        position = start
        while position < len(text) and (text[position].isalnum() or text[position] == "_"):
            position += 1
        self.position = position
        word = text[start:position]
        kind = "var" if word[0].isupper() or word[0] == "_" else "atom"
        self.tokens.append(Token(kind, word, start))

    def _scan_symbol(self, start: int) -> None:
        text = self.text
        position = start
        while position < len(text) and text[position] in _SYMBOL_CHARS:
            position += 1
        word = text[start:position]
        # A '.' followed by whitespace/EOF is the clause terminator; a '.'
        # glued to symbols is part of an operator like ':-' or '=..'.
        if word == ".":
            self.position = position
            self.tokens.append(Token("punct", ".", start))
            return
        known = set(_INFIX_OPS) | set(_PREFIX_OPS)
        if word not in known and word.endswith(".") and word[:-1] in known:
            # Split a trailing clause terminator off an operator run,
            # e.g. 'X = a.' tokenized as '=', then '.'.
            word = word[:-1]
            position -= 1
        self.position = position
        self.tokens.append(Token("atom", word, start))


class _Parser:
    def __init__(self, tokens: List[Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.index = 0

    # ------------------------------------------------------------------

    def _error(self, message: str) -> PrologSyntaxError:
        token = self.peek()
        line = self.text.count("\n", 0, token.position) + 1
        return PrologSyntaxError(f"line {line}: {message} (at {token.text!r})")

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text if text is not None else kind
            raise self._error(f"expected {want!r}")
        return self.advance()

    # ------------------------------------------------------------------
    # Pratt parsing

    def parse_term(self, max_precedence: int = 1200) -> Term:
        left, left_precedence = self._parse_primary(max_precedence)
        return self._parse_infix(left, left_precedence, max_precedence)

    def _parse_infix(self, left: Term, left_precedence: int, max_precedence: int) -> Term:
        while True:
            token = self.peek()
            if token.kind != "atom" or token.text not in _INFIX_OPS:
                return left
            precedence, fixity = _INFIX_OPS[token.text]
            if precedence > max_precedence:
                return left
            left_limit = precedence - 1 if fixity in ("xfx", "xfy") else precedence
            if left_precedence > left_limit:
                return left
            self.advance()
            right_limit = precedence if fixity == "xfy" else precedence - 1
            right = self.parse_term(right_limit)
            left = Struct(token.text, (left, right))
            left_precedence = precedence

    def _parse_primary(self, max_precedence: int) -> Tuple[Term, int]:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            text = token.text
            value = float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            return Num(value), 0
        if token.kind == "var":
            self.advance()
            return Var(token.text), 0
        if token.kind == "punct" and token.text == "(":
            self.advance()
            inner = self.parse_term(1200)
            self.expect("punct", ")")
            return inner, 0
        if token.kind == "punct" and token.text == "[":
            return self._parse_list(), 0
        if token.kind == "atom":
            return self._parse_atom_or_struct(max_precedence)
        raise self._error("expected a term")

    def _parse_atom_or_struct(self, max_precedence: int) -> Tuple[Term, int]:
        token = self.advance()
        name = token.text
        following = self.peek()
        # functor( -- only when '(' is glued (standard Prolog requires it;
        # we accept any '(' directly after for simplicity).
        if following.kind == "punct" and following.text == "(":
            self.advance()
            args = [self.parse_term(999)]
            while self.peek().kind == "atom" and self.peek().text == ",":
                self.advance()
                args.append(self.parse_term(999))
            self.expect("punct", ")")
            return Struct(name, tuple(args)), 0
        if name in _PREFIX_OPS:
            precedence, fixity = _PREFIX_OPS[name]
            if precedence <= max_precedence and self._starts_term(following):
                limit = precedence if fixity == "fy" else precedence - 1
                operand = self.parse_term(limit)
                if (
                    name == "-"
                    and isinstance(operand, Num)
                ):
                    return Num(-operand.value), 0
                return Struct(name, (operand,)), precedence
        return Atom(name), 0

    def _starts_term(self, token: Token) -> bool:
        if token.kind in ("num", "var"):
            return True
        if token.kind == "punct" and token.text in ("(", "["):
            return True
        if token.kind == "atom" and token.text not in (",", "|"):
            return True
        return False

    def _parse_list(self) -> Term:
        self.expect("punct", "[")
        if self.peek().kind == "punct" and self.peek().text == "]":
            self.advance()
            return EMPTY_LIST
        items = [self.parse_term(999)]
        while self.peek().kind == "atom" and self.peek().text == ",":
            self.advance()
            items.append(self.parse_term(999))
        tail: Term = EMPTY_LIST
        if self.peek().kind == "punct" and self.peek().text == "|":
            self.advance()
            tail = self.parse_term(999)
        self.expect("punct", "]")
        return make_list(items, tail)

    # ------------------------------------------------------------------
    # clause/program level

    def parse_clause_term(self) -> Optional[Term]:
        if self.peek().kind == "end":
            return None
        term = self.parse_term(1200)
        self.expect("punct", ".")
        return term

    def at_end(self) -> bool:
        return self.peek().kind == "end"


def _parser_for(text: str) -> _Parser:
    return _Parser(_Tokenizer(text).tokens, text)


def parse_term(text: str) -> Term:
    """Parse a single term (no trailing '.')."""
    parser = _parser_for(text)
    term = parser.parse_term(1200)
    if not parser.at_end():
        raise parser._error("trailing input after term")
    return term


def parse_query(text: str) -> Term:
    """Parse a query: a term with an optional trailing '.'."""
    text = text.strip()
    if text.endswith("."):
        text = text[:-1]
    return parse_term(text)


def parse_program(text: str) -> List[Term]:
    """Parse a whole program: '.'-terminated clause terms."""
    parser = _parser_for(text)
    clauses = []
    while True:
        term = parser.parse_clause_term()
        if term is None:
            return clauses
        clauses.append(term)
