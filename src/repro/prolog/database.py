"""The clause database.

'A database of predicate values and rules is used to construct a set of
dependency relations.'  Clauses are indexed by predicate indicator
``(functor, arity)`` and stored in source order; each activation renames
the clause's variables with a fresh salt.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import PrologError
from repro.prolog.parser import parse_program
from repro.prolog.terms import Atom, Struct, Term, Var
from repro.prolog.unify import rename_term


@dataclass(frozen=True)
class Clause:
    """``head :- body_1, ..., body_n`` (facts have an empty body)."""

    head: Term
    body: Tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if isinstance(self.head, Var):
            raise PrologError("a clause head cannot be a variable")
        if isinstance(self.head, (Atom, Struct)):
            return
        raise PrologError(f"invalid clause head: {self.head!r}")

    @property
    def indicator(self) -> Tuple[str, int]:
        """The head's predicate indicator."""
        if isinstance(self.head, Atom):
            return (self.head.name, 0)
        assert isinstance(self.head, Struct)
        return self.head.indicator

    def rename(self, salt: int) -> "Clause":
        """A fresh activation with all variables salted."""
        cache: Dict[Var, Var] = {}
        return Clause(
            head=rename_term(self.head, salt, cache),
            body=tuple(rename_term(goal, salt, cache) for goal in self.body),
        )


def _flatten_conjunction(term: Term) -> Tuple[Term, ...]:
    if isinstance(term, Struct) and term.functor == "," and term.arity == 2:
        return _flatten_conjunction(term.args[0]) + _flatten_conjunction(term.args[1])
    return (term,)


def clause_from_term(term: Term) -> Clause:
    """Build a clause from a parsed ``head :- body`` or fact term."""
    if isinstance(term, Struct) and term.functor == ":-" and term.arity == 2:
        head, body = term.args
        return Clause(head=head, body=_flatten_conjunction(body))
    return Clause(head=term)


class Database:
    """An indexed, ordered store of clauses."""

    def __init__(self) -> None:
        self._clauses: Dict[Tuple[str, int], List[Clause]] = {}
        self._salt = itertools.count(1)

    # ------------------------------------------------------------------

    def add_clause(self, clause: Clause) -> None:
        """Append a clause (``assertz`` order)."""
        self._clauses.setdefault(clause.indicator, []).append(clause)

    def add_clause_front(self, clause: Clause) -> None:
        """Prepend a clause (``asserta`` order)."""
        self._clauses.setdefault(clause.indicator, []).insert(0, clause)

    def assertz(self, term: Term) -> None:
        """Add a parsed clause term at the end of its predicate."""
        self.add_clause(clause_from_term(term))

    def asserta(self, term: Term) -> None:
        """Add a parsed clause term at the front of its predicate."""
        self.add_clause_front(clause_from_term(term))

    def remove_clause(self, clause: Clause) -> bool:
        """Remove one stored clause (identity match); True on success."""
        bucket = self._clauses.get(clause.indicator)
        if not bucket:
            return False
        for index, stored in enumerate(bucket):
            if stored is clause:
                # Keep the (now possibly empty) bucket: the predicate
                # remains *known*, so calls fail rather than error.
                del bucket[index]
                return True
        return False

    def consult(self, source: str) -> int:
        """Load a program text; returns the number of clauses added."""
        terms = parse_program(source)
        for term in terms:
            self.assertz(term)
        return len(terms)

    def clauses_for(self, functor: str, arity: int) -> List[Clause]:
        """The clauses of one predicate, in assertion order."""
        return list(self._clauses.get((functor, arity), ()))

    def has_predicate(self, functor: str, arity: int) -> bool:
        """True when at least one clause exists for the indicator."""
        return bool(self._clauses.get((functor, arity)))

    def is_known(self, functor: str, arity: int) -> bool:
        """True when the predicate has ever had a clause (possibly all
        retracted since); calls to known-but-empty predicates fail
        instead of raising."""
        return (functor, arity) in self._clauses

    def predicates(self) -> List[Tuple[str, int]]:
        """All defined predicate indicators, sorted."""
        return sorted(self._clauses)

    def fresh_activation(self, clause: Clause) -> Clause:
        """Rename a clause with a database-unique salt."""
        return clause.rename(next(self._salt))

    def __len__(self) -> int:
        return sum(len(clauses) for clauses in self._clauses.values())

    def __repr__(self) -> str:
        return f"Database(predicates={len(self._clauses)}, clauses={len(self)})"
