"""Prolog term representation.

Terms are immutable and hashable.  Variables are identified by
``(name, salt)``: the salt is 0 for variables as written in source and a
fresh positive integer after clause renaming, so distinct clause
activations never capture each other's variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union


class Term:
    """Base class for all Prolog terms."""

    __slots__ = ()


@dataclass(frozen=True)
class Atom(Term):
    """A constant symbol: ``foo``, ``[]``, ``'quoted atom'``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Num(Term):
    """An integer or float."""

    value: Union[int, float]

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Term):
    """A logic variable."""

    name: str
    salt: int = 0

    def __str__(self) -> str:
        if self.salt:
            return f"_{self.name}{self.salt}"
        return self.name


@dataclass(frozen=True)
class Struct(Term):
    """A compound term ``functor(arg1, ..., argN)``."""

    functor: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        if not self.args:
            raise ValueError("a Struct needs at least one argument; use Atom")

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> Tuple[str, int]:
        """The predicate indicator ``(functor, arity)``."""
        return (self.functor, self.arity)

    def __str__(self) -> str:
        return term_str(self)


EMPTY_LIST = Atom("[]")
CONS = "."


def cons(head: Term, tail: Term) -> Struct:
    """The list cell ``'.'(head, tail)``."""
    return Struct(CONS, (head, tail))


def make_list(items: Iterable[Term], tail: Term = EMPTY_LIST) -> Term:
    """Build a Prolog list term from Python items."""
    result = tail
    for item in reversed(list(items)):
        result = cons(item, result)
    return result


def is_cons(term: Term) -> bool:
    """True for a list cell."""
    return isinstance(term, Struct) and term.functor == CONS and term.arity == 2


def list_items(term: Term) -> Tuple[List[Term], Term]:
    """Split a list term into ``(items, tail)``.

    The tail is ``[]`` for a proper list, a variable for a partial list.
    """
    items: List[Term] = []
    while is_cons(term):
        items.append(term.args[0])
        term = term.args[1]
    return items, term


def from_python(value) -> Term:
    """Convert a Python value (int/float/str/list/Term) into a term."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return Atom("true" if value else "fail")
    if isinstance(value, (int, float)):
        return Num(value)
    if isinstance(value, str):
        return Atom(value)
    if isinstance(value, (list, tuple)):
        return make_list([from_python(v) for v in value])
    raise TypeError(f"cannot convert {value!r} to a Prolog term")


def to_python(term: Term):
    """Convert a ground term into a Python value where natural."""
    if isinstance(term, Num):
        return term.value
    if isinstance(term, Atom):
        return term.name
    if is_cons(term) or term == EMPTY_LIST:
        items, tail = list_items(term)
        if tail != EMPTY_LIST:
            raise ValueError(f"not a proper list: {term_str(term)}")
        return [to_python(item) for item in items]
    return term_str(term)


_INFIX = {",", ";", ":-", "->", "=", "\\=", "==", "\\==", "is",
          "<", ">", "=<", ">=", "=:=", "=\\=",
          "+", "-", "*", "/", "//", "mod", "**"}


def term_str(term: Term) -> str:
    """Readable rendering with list and operator sugar."""
    if isinstance(term, (Atom, Num, Var)):
        return str(term)
    if isinstance(term, Struct):
        if is_cons(term):
            items, tail = list_items(term)
            inner = ",".join(term_str(item) for item in items)
            if tail == EMPTY_LIST:
                return f"[{inner}]"
            return f"[{inner}|{term_str(tail)}]"
        if term.arity == 2 and term.functor in _INFIX:
            left, right = term.args
            return f"{term_str(left)}{term.functor}{term_str(right)}"
        if term.arity == 1 and term.functor in ("-", "\\+"):
            return f"{term.functor}{term_str(term.args[0])}"
        inner = ",".join(term_str(arg) for arg in term.args)
        return f"{term.functor}({inner})"
    raise TypeError(f"not a term: {term!r}")


def variables_of(term: Term) -> List[Var]:
    """All variables in ``term``, in first-occurrence order."""
    seen: List[Var] = []
    stack = [term]
    found = set()
    while stack:
        current = stack.pop()
        if isinstance(current, Var):
            if current not in found:
                found.add(current)
                seen.append(current)
        elif isinstance(current, Struct):
            stack.extend(reversed(current.args))
    return seen
