"""The tracer: an always-on, low-overhead race event recorder.

One process-wide tracer is *installed* (the same registry pattern as the
:mod:`repro.resilience` fault injector); instrumented code asks for the
active tracer and emits through it.  When nothing is installed the
:data:`NULL_TRACER` is active: ``enabled`` is ``False`` and ``emit`` is a
no-argument-processing no-op, so every instrumentation site can guard its
attribute packing with ``if tracer.enabled:`` and the disabled path costs
one global read and one attribute check.

Timestamps are seconds since the tracer's epoch, measured with
``perf_counter`` -- a monotonic clock shared across ``os.fork``, so
events recorded in a forked child (and shipped back in its result record)
land on the same timeline as the parent's.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Iterable, Iterator, List, Optional

from repro.obs.events import TraceEvent
from repro.obs.metrics import MetricsRegistry


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False
    metrics: Optional[MetricsRegistry] = None

    def emit(self, kind, **_ignored) -> None:
        return None

    def now(self) -> float:
        return 0.0

    def next_block(self) -> int:
        return 0

    def mark(self) -> int:
        return 0

    def events_since(self, mark: int) -> List[TraceEvent]:
        return []

    def absorb(self, events) -> None:
        return None

    @property
    def events(self) -> List[TraceEvent]:
        return []

    def block_events(self, block: int) -> List[TraceEvent]:
        return []


#: The process-wide disabled tracer (a singleton; identity-comparable).
NULL_TRACER = NullTracer()


class Tracer:
    """Collects :class:`TraceEvent` records and feeds the metrics."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.perf_counter,
    ) -> None:
        self._clock = clock
        self.epoch = clock()
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self._block_ids = itertools.count(1)
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # ------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer's epoch."""
        return self._clock() - self.epoch

    def next_block(self) -> int:
        """Allocate the next block id (nested blocks get their own)."""
        return next(self._block_ids)

    def emit(
        self,
        kind: str,
        block: Optional[int] = None,
        arm: Optional[int] = None,
        name: str = "",
        ts: Optional[float] = None,
        **attrs,
    ) -> TraceEvent:
        """Record one event (thread-safe); returns the stored event.

        ``ts`` overrides the timestamp for events whose true time is known
        more precisely than the emission moment (e.g. per-arm finish times
        reported by a backend after the race concluded) -- it must be in
        this tracer's epoch-relative seconds.
        """
        event = TraceEvent(
            kind=kind,
            ts=self.now() if ts is None else ts,
            block=block,
            arm=arm,
            name=name,
            attrs=attrs,
        )
        with self._lock:
            self._events.append(event)
        metrics = self.metrics
        if metrics is not None:
            metrics.record(event)
        return event

    def absorb(self, events: Iterable[TraceEvent]) -> None:
        """Merge events recorded elsewhere (a forked child's shipment).

        The events keep their own timestamps and pids; they are folded
        into this tracer's metrics exactly as if emitted locally.
        """
        incoming = list(events)
        if not incoming:
            return
        with self._lock:
            self._events.extend(incoming)
        metrics = self.metrics
        if metrics is not None:
            for event in incoming:
                metrics.record(event)

    # ------------------------------------------------------------------
    # reading

    def mark(self) -> int:
        """An opaque position; pair with :meth:`events_since`."""
        with self._lock:
            return len(self._events)

    def events_since(self, mark: int) -> List[TraceEvent]:
        """Events recorded after ``mark`` (a child ships these back)."""
        with self._lock:
            return list(self._events[mark:])

    @property
    def events(self) -> List[TraceEvent]:
        """A snapshot of every recorded event, in emission order."""
        with self._lock:
            return list(self._events)

    def block_events(self, block: int) -> List[TraceEvent]:
        """Every event belonging to one block, sorted by timestamp."""
        with self._lock:
            picked = [e for e in self._events if e.block == block]
        picked.sort(key=lambda e: e.ts)
        return picked

    def clear(self) -> None:
        with self._lock:
            self._events = []


# ----------------------------------------------------------------------
# process-wide registry

_active: "Tracer | NullTracer" = NULL_TRACER


def install(tracer: Tracer) -> None:
    """Make ``tracer`` the process-wide active tracer."""
    global _active
    _active = tracer


def uninstall() -> None:
    """Disable tracing (restores the null tracer)."""
    global _active
    _active = NULL_TRACER


def active() -> "Tracer | NullTracer":
    """The active tracer; never ``None`` (the null tracer when disabled)."""
    return _active


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block.

    >>> from repro.obs import tracing
    >>> with tracing() as tracer:
    ...     pass  # races run here are recorded on ``tracer``
    """
    installed = tracer if tracer is not None else Tracer()
    previous = _active
    install(installed)
    try:
        yield installed
    finally:
        install(previous)  # type: ignore[arg-type]
