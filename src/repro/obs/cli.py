"""``python -m repro trace``: race a canonical block and dump its trace.

Runs one block from the :mod:`repro.obs.blocks` corpus under an installed
:class:`~repro.obs.Tracer` and writes the trace in Chrome trace-event
JSON (loadable in ``chrome://tracing`` / Perfetto) or JSONL, plus a
metrics summary.  ``--supervised`` wraps the race in a
:class:`~repro.resilience.Supervisor` so the exported trace also shows
watchdog / retry / degrade events when they occur.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.backends import BACKENDS, get_backend
from repro.obs.blocks import BLOCKS_BY_NAME, CANONICAL_BLOCKS, get_block
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.obs.tracer import Tracer, tracing
from repro.resilience.supervisor import Supervisor


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="race one canonical alternative block under a tracer",
    )
    parser.add_argument(
        "block",
        nargs="?",
        default="pure-winner",
        help="canonical block name (see --list); default: pure-winner",
    )
    parser.add_argument(
        "--list", action="store_true", help="list canonical blocks and exit"
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKENDS,
        help="execution backend to race on (default: serial)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="chrome",
        choices=("chrome", "jsonl"),
        help="trace export format (default: chrome trace-event JSON)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: trace-<block>-<backend>.<ext>)",
    )
    parser.add_argument(
        "--supervised",
        action="store_true",
        help="run under a Supervisor (watchdog + retries + autopsy)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metrics registry summary after the race",
    )
    return parser


def _list_blocks() -> int:
    width = max(len(block.name) for block in CANONICAL_BLOCKS)
    for block in CANONICAL_BLOCKS:
        print(f"  {block.name:<{width}}  {block.description}")
    return 0


def trace_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``trace`` subcommand."""
    args = _build_parser().parse_args(argv)
    if args.list:
        return _list_blocks()
    try:
        spec = get_block(args.block)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    backend = get_backend(args.backend)
    kwargs = {}
    if args.supervised and backend.is_parallel:
        kwargs["supervisor"] = Supervisor(arm_deadline=5.0, max_retries=1)

    tracer = Tracer()
    with tracing(tracer):
        outcome = spec.run(backend, **kwargs)

    if outcome.error is not None:
        print(f"block {spec.name!r} on {args.backend}: raised {outcome.error}")
    else:
        print(
            f"block {spec.name!r} on {args.backend}: "
            f"winner={outcome.winner!r} value={outcome.value!r}"
        )

    extension = "json" if args.fmt == "chrome" else "jsonl"
    path = args.out or f"trace-{spec.name}-{args.backend}.{extension}"
    if args.fmt == "chrome":
        write_chrome_trace(tracer.events, path)
    else:
        write_jsonl(tracer.events, path)
    print(f"{len(tracer.events)} events -> {path}")

    if args.metrics:
        print()
        for line in tracer.metrics.summary_lines():
            print(line)
    return 0


__all__ = ["trace_main"]
