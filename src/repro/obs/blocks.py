"""Canonical alternative blocks: the cross-backend equivalence corpus.

Each :class:`CanonicalBlock` describes one alternative block whose
*observable* outcome -- the returned value, the winning arm, the raised
error, and the bytes of the parent's address space after the block -- must
be identical no matter which execution backend races it.  The corpus
covers the interesting shapes: a pure fastest-first winner, guard vetoes
(pre-spawn, in-child, and at the acceptance test), the all-arms-fail FAIL
case, a crashing (hostile) arm, a block-level timeout, nested blocks, and
loser-write discard.

The same corpus backs two consumers:

- ``tests/obs/test_equivalence_matrix.py`` runs every block under the
  serial, thread, and process backends and asserts the outcomes agree
  byte for byte, using the attached :class:`~repro.obs.BlockTrace` to
  explain any divergence;
- ``python -m repro trace <block>`` runs one block under a tracer and
  exports the trace (JSONL or Chrome trace-event JSON).

Determinism across backends requires that an arm's *simulated* cost equal
its *wall-clock* sleep: the serial backend decides the race on the timing
model while the parallel backends decide it at the wall clock, so both
clocks must rank the arms identically.  Sleeps are spaced >= 0.2 s apart
to keep OS scheduling noise from reordering real races.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.alternative import Alternative
from repro.core.concurrent import ConcurrentExecutor
from repro.errors import AltBlockFailure, AltTimeout
from repro.independence import WriteSet

# A raw-byte write offset far from the variable directory's first pages:
# exercises shipback of pages the directory machinery never re-dirties.
RAW_OFFSET = 8192
FAST, MID, SLOW = 0.05, 0.3, 0.55


@dataclass(frozen=True)
class _ArmBody:
    """One sleeping arm's body as a picklable value (not a closure).

    A pre-warmed world pool ships an arm's alternative to a parked
    worker process by value; a closure would force every canonical block
    back onto the fork-per-arm path.  Arms carrying guard *callables*
    (lambdas) still do -- deliberately, so the matrix keeps exercising
    the fallback.
    """

    name: str
    seconds: float
    value: Any = None
    var: Optional[str] = None
    fail: bool = False
    crash: bool = False
    raw: Optional[bytes] = None
    raw_offset: int = RAW_OFFSET

    def __call__(self, ctx):
        ctx.sleep(self.seconds)
        if self.crash:
            raise RuntimeError(f"{self.name} crashed (hostile arm)")
        if self.fail:
            ctx.fail(f"{self.name} refuses")
        if self.raw is not None:
            ctx.space.write(self.raw_offset, self.raw)
        if self.var is not None:
            ctx.put(self.var, self.value)
        return self.value


def _arm(
    name: str,
    seconds: float,
    value: Any = None,
    var: Optional[str] = None,
    guard: Optional[Callable] = None,
    pre_guard: Optional[Callable] = None,
    fail: bool = False,
    crash: bool = False,
    raw: Optional[bytes] = None,
    raw_offset: int = RAW_OFFSET,
    writes: Optional[WriteSet] = None,
) -> Alternative:
    """One sleeping arm whose simulated cost equals its wall sleep."""
    return Alternative(
        name=name,
        body=_ArmBody(
            name=name,
            seconds=seconds,
            value=value,
            var=var,
            fail=fail,
            crash=crash,
            raw=raw,
            raw_offset=raw_offset,
        ),
        guard=guard,
        pre_guard=pre_guard,
        cost=seconds,
        writes=writes,
    )


@dataclass
class BlockOutcome:
    """What one backend observed running one canonical block."""

    value: Any = None
    winner: Optional[str] = None
    error: Optional[str] = None  # class name of the raised block error
    space_bytes: bytes = b""
    variables: Dict[str, Any] = field(default_factory=dict)
    trace: Any = None  # BlockTrace when a tracer was installed

    @property
    def key(self) -> tuple:
        """The cross-backend equivalence key."""
        return (self.value, self.winner, self.error, self.space_bytes)


@dataclass
class CanonicalBlock:
    """One entry of the equivalence corpus."""

    name: str
    description: str
    build: Callable[[ConcurrentExecutor], List[Alternative]]
    timeout: Optional[float] = None
    expect_winner: Optional[str] = None
    expect_value: Any = None
    expect_error: Optional[type] = None
    expect_vars: Dict[str, Any] = field(default_factory=dict)

    def run(self, backend, **executor_kwargs) -> BlockOutcome:
        """Race this block on ``backend``; capture the observable outcome."""
        executor = ConcurrentExecutor(
            backend=backend, timeout=self.timeout, **executor_kwargs
        )
        parent = executor.new_parent()
        outcome = BlockOutcome()
        try:
            result = executor.run(self.build(executor), parent=parent)
        except (AltBlockFailure, AltTimeout) as exc:
            outcome.error = type(exc).__name__
            outcome.trace = getattr(exc, "trace", None)
        else:
            outcome.value = result.value
            outcome.winner = result.winner.name
            outcome.trace = result.trace
        outcome.space_bytes = parent.space.read(0, parent.space.size)
        outcome.variables = {
            name: parent.space.get(name) for name in parent.space.names()
        }
        return outcome


def _nested_build(executor: ConcurrentExecutor) -> List[Alternative]:
    """An arm that writes, runs an inner block, then writes again.

    The raw write *before* the inner block lands on a page the inner
    commit never touches -- if the commit swap's dirty accounting replaced
    (rather than unioned) the dirty set, a fork-based backend would ship
    the inner pages but silently drop this one, and the matrix catches
    the divergence.
    """

    def compound(ctx):
        ctx.sleep(FAST)
        ctx.space.write(RAW_OFFSET, b"outer-pre")
        inner = ConcurrentExecutor(manager=executor.manager)
        result = inner.run(
            [
                _arm("deep-fast", 0.0, value="deep", var="deep"),
                _arm("deep-failing", 0.0, fail=True),
            ],
            parent=ctx.process,
        )
        ctx.put("after", "outer-post")
        return result.value

    return [
        Alternative(name="compound", body=compound, cost=FAST),
        _arm("flat-slow", SLOW, value="flat", var="who"),
    ]


CANONICAL_BLOCKS: List[CanonicalBlock] = [
    CanonicalBlock(
        name="pure-winner",
        description="three healthy arms; strictly the fastest wins",
        build=lambda ex: [
            _arm("fast", FAST, value="F", var="who"),
            _arm("mid", MID, value="M", var="who"),
            _arm("slow", SLOW, value="S", var="who"),
        ],
        expect_winner="fast",
        expect_value="F",
        expect_vars={"who": "F"},
    ),
    CanonicalBlock(
        name="four-arm-spread",
        description="four healthy arms with spread costs; the fastest wins",
        build=lambda ex: [
            _arm("a-fast", FAST, value="A", var="who"),
            _arm("b-mid", MID, value="B", var="who"),
            _arm("c-slow", SLOW, value="C", var="who"),
            _arm("d-slowest", 0.8, value="D", var="who"),
        ],
        expect_winner="a-fast",
        expect_value="A",
        expect_vars={"who": "A"},
    ),
    CanonicalBlock(
        name="acceptance-vetoes-fastest",
        description="fastest arm's acceptance test rejects; next-best wins",
        build=lambda ex: [
            _arm(
                "fast-wrong",
                FAST,
                value="bogus",
                var="who",
                guard=lambda ctx, value: False,
            ),
            _arm("mid-right", MID, value="M", var="who"),
        ],
        expect_winner="mid-right",
        expect_value="M",
        expect_vars={"who": "M"},
    ),
    CanonicalBlock(
        name="pre-guard-closed",
        description="fastest arm's enabling condition is closed",
        build=lambda ex: [
            _arm(
                "fast-closed",
                FAST,
                value="never",
                var="who",
                pre_guard=lambda ctx: False,
            ),
            _arm("mid-open", MID, value="M", var="who"),
        ],
        expect_winner="mid-open",
        expect_value="M",
        expect_vars={"who": "M"},
    ),
    CanonicalBlock(
        name="single-arm",
        description="a one-arm block degenerates to plain execution",
        build=lambda ex: [_arm("only", FAST, value=42, var="who")],
        expect_winner="only",
        expect_value=42,
        expect_vars={"who": 42},
    ),
    CanonicalBlock(
        name="fail-arm",
        description="every arm fails its guard: the block takes the FAIL arm",
        build=lambda ex: [
            _arm("no-1", FAST, fail=True),
            _arm("no-2", MID, fail=True),
            _arm("no-3", 0.1, fail=True),
        ],
        expect_error=AltBlockFailure,
    ),
    CanonicalBlock(
        name="hostile-arm",
        description="the fastest arm crashes; a healthy sibling still wins",
        build=lambda ex: [
            _arm("hostile", FAST, crash=True),
            _arm("healthy", MID, value="ok", var="who"),
        ],
        expect_winner="healthy",
        expect_value="ok",
        expect_vars={"who": "ok"},
    ),
    CanonicalBlock(
        name="timeout",
        description="no arm beats the block deadline: AltTimeout",
        build=lambda ex: [
            _arm("too-slow-1", 0.4, value=1, var="who"),
            _arm("too-slow-2", 0.5, value=2, var="who"),
        ],
        timeout=0.15,
        expect_error=AltTimeout,
    ),
    CanonicalBlock(
        name="nested-block",
        description="the winning arm runs an inner alternative block",
        build=_nested_build,
        expect_winner="compound",
        expect_value="deep",
        expect_vars={"deep": "deep", "after": "outer-post"},
    ),
    CanonicalBlock(
        name="late-success",
        description="two succeeding arms; the slower one is too late",
        build=lambda ex: [
            _arm("early", FAST, value="early", var="who"),
            _arm("late", MID, value="late", var="who"),
        ],
        expect_winner="early",
        expect_value="early",
        expect_vars={"who": "early"},
    ),
    CanonicalBlock(
        name="disjoint-arms",
        description=(
            "both arms declare disjoint page write-sets: the maximal-step "
            "commit lands *both* writes as one step, no loser is killed, "
            "and the lowest-index committer reports as winner"
        ),
        build=lambda ex: [
            _arm(
                "left",
                FAST,
                value="L",
                raw=b"left-lane",
                raw_offset=RAW_OFFSET,
                writes=WriteSet(ranges=((RAW_OFFSET, 64),)),
            ),
            _arm(
                "right",
                MID,
                value="R",
                raw=b"right-lane",
                raw_offset=RAW_OFFSET * 2,
                writes=WriteSet(ranges=((RAW_OFFSET * 2, 64),)),
            ),
        ],
        expect_winner="left",
        expect_value="L",
    ),
    CanonicalBlock(
        name="overlap-arms",
        description=(
            "both arms declare the *same* page: the engine refuses the "
            "step plan, so the block races classically and only the "
            "fastest arm's bytes land"
        ),
        build=lambda ex: [
            _arm(
                "first",
                FAST,
                value="F1",
                raw=b"first-bytes",
                raw_offset=RAW_OFFSET,
                writes=WriteSet(ranges=((RAW_OFFSET, 64),)),
            ),
            _arm(
                "second",
                MID,
                value="S2",
                raw=b"second-bytes!",
                raw_offset=RAW_OFFSET,
                writes=WriteSet(ranges=((RAW_OFFSET, 64),)),
            ),
        ],
        expect_winner="first",
        expect_value="F1",
    ),
    CanonicalBlock(
        name="loser-writes-discarded",
        description="each arm writes different state; only the winner's lands",
        build=lambda ex: [
            _arm("keeper", FAST, value="kept", var="kept", raw=b"winner-bytes"),
            _arm("discard", MID, value="dropped", var="dropped"),
        ],
        expect_winner="keeper",
        expect_value="kept",
        expect_vars={"kept": "kept"},
    ),
]


BLOCKS_BY_NAME: Dict[str, CanonicalBlock] = {
    block.name: block for block in CANONICAL_BLOCKS
}


def get_block(name: str) -> CanonicalBlock:
    """Look up a canonical block (raises ``KeyError`` with the roster)."""
    try:
        return BLOCKS_BY_NAME[name]
    except KeyError:
        roster = ", ".join(sorted(BLOCKS_BY_NAME))
        raise KeyError(f"no canonical block {name!r}; have: {roster}") from None
