"""Typed trace events for the race lifecycle.

Every observable step of an alternative block's concurrent execution --
from ``alt_spawn`` to the losers' elimination, and the predicated-message
machinery around it -- is witnessed by one :class:`TraceEvent`.  The kind
vocabulary is closed (see the ``EVENT_KINDS`` tuple) so exporters and the
test matrix can reason about it; ``attrs`` carries the kind-specific
payload (dirty-page counts, work seconds, backoff delays, ...).

Events are plain picklable dataclasses: the fork-based execution backend
ships the events a child emitted back to the parent inside its result
record, alongside the dirty pages.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

# -- block lifecycle ---------------------------------------------------
BLOCK_BEGIN = "block-begin"
BLOCK_END = "block-end"

# -- per-arm lifecycle -------------------------------------------------
ARM_SPAWN = "arm-spawn"
GUARD_EVAL = "guard-eval"
ARM_FINISH = "arm-finish"
WINNER_COMMIT = "winner-commit"
LOSER_ELIMINATE = "loser-eliminate"

# -- independence / maximal steps --------------------------------------
INDEP_STEP = "indep-step"
MAXIMAL_COMMIT = "maximal-commit"
DPOR_BACKTRACK = "dpor-backtrack"

# -- supervision -------------------------------------------------------
RETRY = "retry"
BACKOFF = "backoff"
WATCHDOG_SOFT = "watchdog-soft"
WATCHDOG_HARD = "watchdog-hard"
DEGRADE = "degrade"

# -- state shipment ----------------------------------------------------
PAGE_SHIPBACK = "page-shipback"
SHM_MAP = "shm-map"
POINTER_COMMIT = "pointer-commit"

# -- the pre-warmed world pool ------------------------------------------
POOL_LEASE = "pool-lease"

# -- predicated messages / multiple worlds (section 3.4.2) -------------
WORLD_SPLIT = "world-split"
WORLD_ELIMINATE = "world-eliminate"
PREDICATE_SEND = "predicate-send"
PREDICATE_ACCEPT = "predicate-accept"
PREDICATE_IGNORE = "predicate-ignore"

# -- chaos on the wire (section 4.1 distributed case) ------------------
NET_DROP = "net-drop"
NET_DUP = "net-dup"
NET_PARTITION = "net-partition"

# -- leases / remote supervision ---------------------------------------
LEASE_RENEW = "lease-renew"
LEASE_EXPIRE = "lease-expire"
WORKER_RESPAWN = "worker-respawn"

# -- router recovery ---------------------------------------------------
JOURNAL_REPLAY = "journal-replay"

# -- real-wire cluster runtime -----------------------------------------
CONN_OPEN = "conn-open"
CONN_DROP = "conn-drop"
DAEMON_RESPAWN = "daemon-respawn"

# -- cluster membership / authenticated gossip -------------------------
AUTH_REJECT = "auth-reject"
MEMBER_JOIN = "member-join"
MEMBER_SUSPECT = "member-suspect"
MEMBER_DEAD = "member-dead"

# -- per-endpoint circuit breaker --------------------------------------
BREAKER_OPEN = "breaker-open"
BREAKER_CLOSE = "breaker-close"

# -- the multi-tenant race server --------------------------------------
SERVER_ADMIT = "server-admit"
SERVER_REJECT = "server-reject"
SERVER_BATCH = "server-batch"
TENANT_QUANTUM = "tenant-quantum"

EVENT_KINDS = (
    BLOCK_BEGIN,
    BLOCK_END,
    ARM_SPAWN,
    GUARD_EVAL,
    ARM_FINISH,
    WINNER_COMMIT,
    LOSER_ELIMINATE,
    INDEP_STEP,
    MAXIMAL_COMMIT,
    DPOR_BACKTRACK,
    RETRY,
    BACKOFF,
    WATCHDOG_SOFT,
    WATCHDOG_HARD,
    DEGRADE,
    PAGE_SHIPBACK,
    SHM_MAP,
    POINTER_COMMIT,
    POOL_LEASE,
    WORLD_SPLIT,
    WORLD_ELIMINATE,
    PREDICATE_SEND,
    PREDICATE_ACCEPT,
    PREDICATE_IGNORE,
    NET_DROP,
    NET_DUP,
    NET_PARTITION,
    LEASE_RENEW,
    LEASE_EXPIRE,
    WORKER_RESPAWN,
    JOURNAL_REPLAY,
    CONN_OPEN,
    CONN_DROP,
    DAEMON_RESPAWN,
    AUTH_REJECT,
    MEMBER_JOIN,
    MEMBER_SUSPECT,
    MEMBER_DEAD,
    BREAKER_OPEN,
    BREAKER_CLOSE,
    SERVER_ADMIT,
    SERVER_REJECT,
    SERVER_BATCH,
    TENANT_QUANTUM,
)

#: Kinds that terminate one arm's span (exactly one ``ARM_FINISH`` per
#: spawned arm; ``LOSER_ELIMINATE`` additionally marks eliminated losers).
ARM_TERMINAL_KINDS = (ARM_FINISH, LOSER_ELIMINATE)


@dataclass
class TraceEvent:
    """One observed step of a race (or of the world machinery around it)."""

    kind: str
    ts: float
    """Seconds since the emitting tracer's epoch (``perf_counter``-based,
    so timestamps from a forked child remain comparable to the parent's)."""

    block: Optional[int] = None
    """The alternative block this event belongs to (``None`` for events
    outside any block, e.g. router deliveries)."""

    arm: Optional[int] = None
    """Arm index within the block, when the event concerns one arm."""

    name: str = ""
    """Human label: arm name, block label, message description."""

    pid: int = field(default_factory=os.getpid)
    """OS process id that emitted the event (children differ from the
    parent under the fork backend)."""

    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready flat representation (the JSONL exporter's row)."""
        row: Dict[str, Any] = {
            "kind": self.kind,
            "ts": round(self.ts, 9),
            "pid": self.pid,
        }
        if self.block is not None:
            row["block"] = self.block
        if self.arm is not None:
            row["arm"] = self.arm
        if self.name:
            row["name"] = self.name
        if self.attrs:
            row["attrs"] = self.attrs
        return row
