"""Counters, gauges, and fixed-bucket histograms for race statistics.

A :class:`MetricsRegistry` aggregates per-block and process-wide numbers
out of the trace stream: arm wall-clock, speedup versus the serial sum of
the arms, elimination latency, pages shipped, worlds split.  The tracer
feeds every emitted :class:`~repro.obs.events.TraceEvent` through
:meth:`MetricsRegistry.record`, so for every event kind the counter
``events.<kind>`` equals the number of events of that kind -- the
invariant the randomized property tests assert.

Histogram bucket boundaries are *fixed at construction* (never rebucketed)
so counts from different runs, backends, and processes are directly
addable, the way a production metrics pipeline needs them to be.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import events as ev

#: Default bucket upper bounds in seconds (an implicit +Inf bucket is
#: always appended).  Spans race wall-clocks from sub-millisecond arms to
#: multi-second supervised retries.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Cumulative-style histogram with fixed bucket boundaries."""

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        ordered = tuple(sorted(buckets))
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        if len(set(ordered)) != len(ordered):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.buckets = ordered
        self._counts = [0] * (len(ordered) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        slot = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations (equals the sum of all bucket counts)."""
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bucket_counts(self) -> List[int]:
        """Per-bucket counts; the last slot is the +Inf overflow bucket."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> Optional[float]:
        """Approximate ``q``-quantile from the bucket upper bounds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return None
            target = q * self._count
            running = 0
            for bound, bucket in zip(self.buckets, self._counts):
                running += bucket
                if running >= target:
                    return bound
            return float("inf")


class MetricsRegistry:
    """Create-on-demand registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name, buckets)
            return metric

    # ------------------------------------------------------------------
    # the tracer hook

    def record(self, event) -> None:
        """Fold one trace event into the aggregates.

        Guaranteed: ``events.<kind>`` counts exactly one per event of that
        kind, and every ``ARM_FINISH`` / ``LOSER_ELIMINATE`` /
        ``BLOCK_END`` contributes exactly one histogram observation.
        """
        self.counter("events." + event.kind).inc()
        kind = event.kind
        attrs = event.attrs
        if kind == ev.ARM_FINISH:
            self.histogram("arm_wall_seconds").observe(
                attrs.get("work_seconds", 0.0)
            )
        elif kind == ev.LOSER_ELIMINATE:
            self.counter("eliminations_total").inc()
            self.histogram("elimination_latency_seconds").observe(
                max(0.0, attrs.get("latency_seconds", 0.0))
            )
        elif kind == ev.WINNER_COMMIT:
            self.counter("wins_total").inc()
        elif kind == ev.PAGE_SHIPBACK:
            self.counter("pages_shipped_total").inc(attrs.get("pages", 0))
        elif kind == ev.WORLD_SPLIT:
            self.counter("worlds_split_total").inc()
        elif kind == ev.WORLD_ELIMINATE:
            self.counter("worlds_eliminated_total").inc()
        elif kind == ev.RETRY:
            self.counter("retries_total").inc()
        elif kind == ev.BLOCK_BEGIN:
            self.counter("blocks_total").inc()
        elif kind == ev.BLOCK_END:
            elapsed = attrs.get("elapsed_seconds", 0.0) or 0.0
            self.histogram("block_elapsed_seconds").observe(elapsed)
            serial_sum = attrs.get("serial_sum_seconds")
            if serial_sum and elapsed > 0:
                # Speedup versus running every arm back to back -- the
                # paper's sequential Scheme A cost for the same block.
                self.gauge("last_block_speedup").set(serial_sum / elapsed)

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-ready dump of every metric's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: metric.value for name, metric in sorted(counters.items())
            },
            "gauges": {
                name: metric.value for name, metric in sorted(gauges.items())
            },
            "histograms": {
                name: {
                    "buckets": list(metric.buckets),
                    "counts": metric.bucket_counts,
                    "count": metric.count,
                    "sum": metric.sum,
                }
                for name, metric in sorted(histograms.items())
            },
        }

    def summary_lines(self) -> Iterable[str]:
        """Terse human-readable dump (the CLI's metrics footer)."""
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            yield f"{name} = {value:g}"
        for name, value in snap["gauges"].items():
            yield f"{name} = {value:g}"
        for name, data in snap["histograms"].items():
            yield (
                f"{name}: count={data['count']} sum={data['sum']:.6g}s"
            )
