"""repro.obs: race observability -- structured tracing and metrics.

The paper's transparency claim (sections 3-4) is only demonstrable if a
race can be *seen*: which arm spawned when, who won the rendezvous, when
each loser's termination instruction landed, how many dirty pages the
winner shipped back.  This package provides:

- :class:`Tracer` / :func:`tracing` -- typed span/event records from the
  whole race lifecycle (executor, all execution backends, the supervisor,
  page shipback, the IPC router, and the multiple-worlds machinery);
- :class:`MetricsRegistry` -- counters, gauges, and fixed-bucket
  histograms aggregating per-block and process-wide statistics;
- :mod:`repro.obs.export` -- JSONL and Chrome ``chrome://tracing``
  exporters, plus the :class:`BlockTrace` attachment carried by
  ``AltResult.trace`` and ``RaceAutopsy.trace``;
- ``python -m repro trace <example>`` -- run a canonical block under any
  backend and dump its trace (see :mod:`repro.obs.blocks`).

When no tracer is installed the :data:`NULL_TRACER` is active and every
instrumentation point reduces to one global read plus an ``enabled``
check, keeping the disabled overhead near zero.
"""

from repro.obs import events
from repro.obs.events import EVENT_KINDS, TraceEvent
from repro.obs.export import (
    BlockTrace,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    active,
    install,
    tracing,
    uninstall,
)

__all__ = [
    "BlockTrace",
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "active",
    "events",
    "install",
    "to_chrome_trace",
    "to_jsonl",
    "tracing",
    "uninstall",
    "write_chrome_trace",
    "write_jsonl",
]
