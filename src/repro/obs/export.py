"""Trace exporters: JSONL and Chrome ``chrome://tracing`` trace-event JSON.

The Chrome exporter renders each alternative block as one trace "process"
(so blocks -- including nested ones -- group separately in the viewer),
each arm as one "thread" row carrying a single complete ``X`` span from
its spawn to its terminal event, and every other lifecycle event as an
instant.  The output is plain trace-event JSON, loadable in
``chrome://tracing`` and Perfetto alike.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.obs import events as ev
from repro.obs.events import TraceEvent

_US = 1_000_000  # trace-event timestamps are microseconds


# ----------------------------------------------------------------------
# JSONL

def to_jsonl(events: Iterable[TraceEvent]) -> str:
    """One JSON object per line, in emission order."""
    return "\n".join(
        json.dumps(event.to_dict(), sort_keys=True, default=repr)
        for event in events
    )


def write_jsonl(events: Iterable[TraceEvent], path: str) -> str:
    payload = to_jsonl(events)
    with open(path, "w") as handle:
        handle.write(payload)
        if payload:
            handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Chrome trace-event format

def _instant(event: TraceEvent, pid: int, tid: int) -> Dict[str, Any]:
    return {
        "name": event.kind + (f" {event.name}" if event.name else ""),
        "cat": event.kind,
        "ph": "i",
        "s": "t",
        "ts": event.ts * _US,
        "pid": pid,
        "tid": tid,
        "args": dict(event.attrs),
    }


def to_chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Render events as a trace-event JSON document (a dict)."""
    ordered = sorted(events, key=lambda e: e.ts)
    rows: List[Dict[str, Any]] = []
    spans: Dict[tuple, Dict[str, Any]] = {}  # (block, arm) -> span state
    block_names: Dict[int, str] = {}
    arm_names: Dict[tuple, str] = {}

    for event in ordered:
        pid = event.block if event.block is not None else 0
        tid = event.arm + 1 if event.arm is not None else 0
        key = (pid, event.arm)
        if event.kind == ev.BLOCK_BEGIN:
            block_names[pid] = event.name or f"block {pid}"
        if event.arm is not None and event.name:
            arm_names.setdefault((pid, tid), event.name)
        if event.kind == ev.ARM_SPAWN:
            spans[key] = {
                "begin": event.ts,
                "end": None,
                "name": event.name or f"arm {event.arm}",
                "args": dict(event.attrs),
            }
        elif event.kind in ev.ARM_TERMINAL_KINDS and key in spans:
            span = spans[key]
            # The latest terminal observation closes the span (an
            # eliminated loser may report both a finish and its kill).
            span["end"] = max(span["end"] or 0.0, event.ts)
            span["args"].update(event.attrs)
            span["args"]["terminal"] = event.kind
        rows.append(_instant(event, pid, tid))

    for (pid, arm), span in spans.items():
        end = span["end"] if span["end"] is not None else span["begin"]
        rows.append(
            {
                "name": span["name"],
                "cat": "arm",
                "ph": "X",
                "ts": span["begin"] * _US,
                "dur": max(0.0, end - span["begin"]) * _US,
                "pid": pid,
                "tid": arm + 1 if arm is not None else 0,
                "args": span["args"],
            }
        )

    # Metadata rows so the viewer shows block/arm labels, not bare ids.
    for pid, label in block_names.items():
        rows.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for (pid, tid), label in arm_names.items():
        rows.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return {"traceEvents": rows, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: str) -> str:
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events), handle, indent=1, default=repr)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# per-block attachment

@dataclass
class BlockTrace:
    """The slice of the trace belonging to one alternative block.

    Attached to :class:`~repro.core.result.AltResult` (``result.trace``),
    to raised block errors, and to the supervised race's
    :class:`~repro.resilience.RaceAutopsy` when tracing is active.
    """

    block: int
    events: List[TraceEvent] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def arm_events(self, arm: int) -> List[TraceEvent]:
        return [event for event in self.events if event.arm == arm]

    @property
    def winner_commits(self) -> List[TraceEvent]:
        return self.of_kind(ev.WINNER_COMMIT)

    @property
    def eliminations(self) -> List[TraceEvent]:
        return self.of_kind(ev.LOSER_ELIMINATE)

    def chrome(self) -> Dict[str, Any]:
        """This block as a Chrome trace-event document."""
        return to_chrome_trace(self.events)

    def jsonl(self) -> str:
        return to_jsonl(self.events)

    def write_chrome(self, path: str) -> str:
        return write_chrome_trace(self.events, path)

    def write_jsonl(self, path: str) -> str:
        return write_jsonl(self.events, path)

    def summary(self) -> str:
        """One line per event -- the divergence-explainer test helper."""
        lines = []
        for event in self.events:
            where = "" if event.arm is None else f" arm={event.arm}"
            label = f" {event.name}" if event.name else ""
            extra = f" {event.attrs}" if event.attrs else ""
            lines.append(
                f"[{event.ts:12.6f}] {event.kind}{where}{label}{extra}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
