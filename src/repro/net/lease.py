"""Leases and the home-node warden for distributed races.

The local supervisor (PR 2) can *see* its children die; a home node
racing arms on remote workstations cannot -- all it has is the wire.  So
each remote child holds a :class:`Lease`: a grant that stays valid only
while heartbeats keep arriving over the (possibly faulty) network.  The
:class:`RaceWarden` is the home-node policy generalizing
:class:`~repro.resilience.Supervisor` to that setting:

- a worker whose lease lapses (heartbeats lost, link partitioned, or the
  worker genuinely dead) is declared dead and its arm is re-spawned on a
  healthy node under a fresh *incarnation epoch*;
- the lapsed incarnation is fenced: the worker side of the lease expires
  on the same deadline, so an orphan self-terminates, and even a zombie
  that finishes its body cannot commit -- the winner-commit checks its
  epoch against the arm's current incarnation;
- when respawns are exhausted (or no healthy node remains), the whole
  block degrades to a serial replay on the home node.

Every lease ends in exactly one terminal state -- ``committed``,
``eliminated``, or ``expired`` -- which is the no-leaked-workers
invariant the chaos suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.check.runtime import checkpoint as _checkpoint
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer

#: Lease lifecycle states.  ``active`` is the only non-terminal one.
LEASE_STATES = ("active", "committed", "eliminated", "expired")


@dataclass
class Lease:
    """One remote incarnation's liveness grant."""

    worker: str
    arm: int
    epoch: int
    """Incarnation epoch of this grant; the fence at winner-commit."""

    granted_at: float
    interval: float
    """Heartbeat period the worker promised (simulated seconds)."""

    timeout: float
    """Grace after the last renewal before the warden declares death."""

    last_renewal: float = 0.0
    renewals: int = 0
    state: str = "active"
    ended_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.timeout <= 0:
            raise ValueError("lease interval and timeout must be positive")
        if self.timeout <= self.interval:
            raise ValueError(
                "lease timeout must exceed the heartbeat interval"
            )
        if not self.last_renewal:
            self.last_renewal = self.granted_at

    @property
    def deadline(self) -> float:
        """The instant the lease lapses absent further renewals.

        The same deadline governs both sides: the warden declares the
        worker dead at it, and an orphaned worker self-terminates at it
        -- neither needs the other to be reachable to agree.
        """
        return self.last_renewal + self.timeout

    @property
    def terminal(self) -> bool:
        return self.state != "active"

    def renew(self, at: float) -> None:
        """A heartbeat arrived at simulated instant ``at``."""
        _checkpoint("lease-renew", f"{self.worker}:{self.arm}")
        self._require_active("renew")
        if at > self.last_renewal:
            self.last_renewal = at
        self.renewals += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.LEASE_RENEW,
                arm=self.arm,
                name=self.worker,
                epoch=self.epoch,
                at=at,
                deadline=self.deadline,
            )

    def expire(self, at: float) -> None:
        """The deadline passed without a renewal: the grant is void."""
        self._require_active("expire")
        self.state = "expired"
        self.ended_at = at
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.LEASE_EXPIRE,
                arm=self.arm,
                name=self.worker,
                epoch=self.epoch,
                at=at,
                renewals=self.renewals,
            )

    def commit(self, at: float) -> None:
        """This incarnation won the race and shipped its pages home."""
        self._require_active("commit")
        self.state = "committed"
        self.ended_at = at

    def eliminate(self, at: float) -> None:
        """A sibling won; the termination message settles this grant."""
        self._require_active("eliminate")
        self.state = "eliminated"
        self.ended_at = at

    def _require_active(self, verb: str) -> None:
        if self.terminal:
            raise ValueError(
                f"cannot {verb} lease (arm {self.arm} epoch {self.epoch}): "
                f"already {self.state}"
            )

    def __repr__(self) -> str:
        return (
            f"Lease(arm={self.arm}, worker={self.worker!r}, "
            f"epoch={self.epoch}, state={self.state})"
        )


class LeaseTable:
    """The home node's book of every lease it ever granted."""

    def __init__(self) -> None:
        self.leases: List[Lease] = []
        self._epochs: Dict[int, int] = {}

    def grant(
        self,
        worker: str,
        arm: int,
        at: float,
        interval: float,
        timeout: float,
    ) -> Lease:
        """Grant a fresh incarnation of ``arm`` on ``worker``."""
        epoch = self._epochs.get(arm, 0) + 1
        self._epochs[arm] = epoch
        lease = Lease(
            worker=worker,
            arm=arm,
            epoch=epoch,
            granted_at=at,
            interval=interval,
            timeout=timeout,
        )
        self.leases.append(lease)
        return lease

    def current_epoch(self, arm: int) -> int:
        """The live incarnation epoch of ``arm`` (0 before any grant)."""
        return self._epochs.get(arm, 0)

    def outstanding(self) -> List[Lease]:
        """Leases still active (must be empty after a settled race)."""
        return [lease for lease in self.leases if not lease.terminal]

    @property
    def all_settled(self) -> bool:
        """True when every granted lease reached a terminal state."""
        return not self.outstanding()

    def settle(self, at: float, winner_arm: Optional[int] = None) -> None:
        """Drive every still-active lease terminal at the end of a race.

        The winning arm's current incarnation commits; everything else is
        eliminated (the termination message of section 3.2.1, priced at
        the caller's clock).
        """
        for lease in self.outstanding():
            if (
                winner_arm is not None
                and lease.arm == winner_arm
                and lease.epoch == self.current_epoch(lease.arm)
            ):
                lease.commit(at)
            else:
                lease.eliminate(at)


@dataclass
class RaceWarden:
    """Home-node supervision policy for one distributed race."""

    lease_interval: float = 0.02
    """Heartbeat period workers renew on (simulated seconds)."""

    lease_timeout: float = 0.08
    """Silence after which the warden declares a worker dead."""

    max_respawns: int = 2
    """Fresh incarnations one arm may burn before it is given up."""

    degrade_to_serial: bool = True
    """Replay the whole block serially on the home node when remote
    execution cannot be completed (no healthy nodes / respawns spent)."""

    table: LeaseTable = field(default_factory=LeaseTable)

    def __post_init__(self) -> None:
        if self.lease_interval <= 0:
            raise ValueError("lease_interval must be positive")
        if self.lease_timeout <= self.lease_interval:
            raise ValueError("lease_timeout must exceed lease_interval")
        if self.max_respawns < 0:
            raise ValueError("max_respawns cannot be negative")

    def respawns_left(self, attempts_used: int) -> bool:
        return attempts_used <= self.max_respawns
