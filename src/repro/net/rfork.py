"""Remote fork via checkpoint/restart (paper section 4.4).

'The major cost (since we implemented rfork() without operating system
modification) was creating a checkpoint of the process in its entirety.'

:func:`remote_fork` reproduces that pipeline on the simulated network:

1. checkpoint the process on the source node (cost proportional to the
   image size at the source's checkpoint rate);
2. ship the image over the link (latency + size / bandwidth);
3. restore it on the destination node.

The returned :class:`RemoteForkResult` itemizes the three phases so the
benchmark can report the same decomposition the paper discusses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.process.checkpoint import (
    Checkpoint,
    checkpoint_process,
    restore_process,
)
from repro.process.process import SimProcess
from repro.net.network import Network
from repro.sim.costs import CostModel


@dataclass(frozen=True)
class RemoteForkResult:
    """Outcome and cost decomposition of one remote fork."""

    process: SimProcess
    image_bytes: int
    checkpoint_time: float
    transfer_time: float
    restore_time: float

    @property
    def total_time(self) -> float:
        """End-to-end remote fork latency."""
        return self.checkpoint_time + self.transfer_time + self.restore_time


def remote_fork_nfs(
    network: Network,
    src: str,
    dst: str,
    process: SimProcess,
    nfs: "FileSystem",
    cost_model: CostModel = None,
    eager_fraction: float = 0.25,
) -> RemoteForkResult:
    """Remote fork through a shared network file system.

    The paper's implementation 'uses a network file system to reduce
    copying': the checkpoint is written once into the shared FS and the
    remote node restores by paging it in on demand, so only
    ``eager_fraction`` of the image crosses the wire before the process
    can run (the rest follows lazily, in the style of the 'on-demand
    state management techniques' of Theimer et al. that the paper cites).
    """
    from repro.pages.files import FileSystem  # local import: optional dep

    if not isinstance(nfs, FileSystem):
        raise TypeError("nfs must be a pages.files.FileSystem")
    if not 0.0 <= eager_fraction <= 1.0:
        raise ValueError("eager_fraction must be in [0, 1]")
    model = cost_model if cost_model is not None else network.cost_model
    image = checkpoint_process(process)
    path = f"/ckpt/{src}/{process.pid}"
    nfs.write_file(path, image.image)
    checkpoint_time = model.checkpoint_time(image.size)
    eager_bytes = int(image.size * eager_fraction)
    transfer_time = network.transfer(src, dst, eager_bytes)
    dst_node = network.node(dst)
    restored = restore_process(
        Checkpoint(nfs.read_file(path)),
        dst_node.store,
        pid=dst_node.manager.allocate_pid(),
    )
    dst_node.manager.register(restored)
    restore_time = model.restore_time(eager_bytes)
    return RemoteForkResult(
        process=restored,
        image_bytes=image.size,
        checkpoint_time=checkpoint_time,
        transfer_time=transfer_time,
        restore_time=restore_time,
    )


def remote_fork(
    network: Network,
    src: str,
    dst: str,
    process: SimProcess,
    cost_model: CostModel = None,
) -> RemoteForkResult:
    """Fork ``process`` from node ``src`` onto node ``dst``.

    The restored process gets a fresh pid on the destination's manager and
    is registered there.  Raises :class:`~repro.errors.NetworkError` when
    the nodes cannot communicate and :class:`~repro.errors.CheckpointError`
    on image problems.
    """
    model = cost_model if cost_model is not None else network.cost_model
    image = checkpoint_process(process)
    checkpoint_time = model.checkpoint_time(image.size)
    transfer_time = network.transfer(src, dst, image.size)
    dst_node = network.node(dst)
    restored = restore_process(
        image,
        dst_node.store,
        pid=dst_node.manager.allocate_pid(),
    )
    dst_node.manager.register(restored)
    restore_time = model.restore_time(image.size)
    return RemoteForkResult(
        process=restored,
        image_bytes=image.size,
        checkpoint_time=checkpoint_time,
        transfer_time=transfer_time,
        restore_time=restore_time,
    )
