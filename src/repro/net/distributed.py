"""Distributed execution of an alternative block across network nodes.

Section 4.1 prices the distributed case explicitly:

- *Memory copying*: 'In the distributed case we must actually copy state
  for a remote child so that it can read or write locally' -- here, the
  parent image is checkpointed once and shipped to each worker node;
- 'There is more copying to be performed during synchronization, as the
  changed state is updated in the parent's storage' -- the winner's dirty
  pages travel back over the network before the parent resumes;
- *Sibling elimination* becomes termination messages with network
  latency, naturally asynchronous.

Each alternative runs on its own node (real concurrency), and the
synchronization can be a single home-node semaphore or a majority
consensus across the workers.

With a :class:`~repro.net.lease.RaceWarden` attached the race is
*chaos-hardened*: every remote child holds a lease renewed by heartbeats
over the (possibly faulty) network, a worker whose lease lapses is
re-spawned on a healthy node under a fresh incarnation epoch, zombies
are fenced at winner-commit, a mid-race partition is converted into
loser-elimination instead of escaping as a raw
:class:`~repro.errors.NetworkError`, and when remote execution cannot
complete at all the block degrades to a serial replay on the home node
(the simulated-substrate analogue of PR 2's ``SerialBackend``
degradation).

Every random decision is drawn from a *keyed* RNG --
``Random(f"{seed}:{purpose}:{arm}")``, the same convention as the
:class:`~repro.resilience.FaultInjector` -- so distributed runs replay
bit-identically under a seed regardless of arm order or respawn count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.consensus.majority import MajorityConsensusSemaphore
from repro.consensus.node import ConsensusNode
from repro.core.alternative import AltContext, Alternative
from repro.core.result import AltOutcome, AltResult, OverheadBreakdown
from repro.core.selection import OrderedPolicy
from repro.core.sequential import SequentialExecutor, _run_body
from repro.errors import AltBlockFailure, NetworkError
from repro.net.lease import Lease, RaceWarden
from repro.net.network import Network
from repro.net.rfork import remote_fork
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.process.process import SimProcess
from repro.resilience.injector import active as _active_injector, suppressed
from repro.sim.costs import CostModel

#: Size of one heartbeat message on the wire (control traffic).
HEARTBEAT_BYTES = 64


@dataclass
class _RemoteRun:
    index: int
    node: str
    process: SimProcess
    succeeded: bool
    value: object
    detail: str
    duration: float
    pages_written: int
    arrival: float
    epoch: int = 0
    lease: Optional[Lease] = None
    zombie: bool = False
    """True for an incarnation the warden already declared dead whose
    body nonetheless ran to completion on the worker: it reaches the
    selection point only to be fenced."""

    @property
    def completion(self) -> float:
        return self.arrival + self.duration


class DistributedAltExecutor:
    """Race alternatives across workstations instead of local children."""

    def __init__(
        self,
        network: Network,
        home: str,
        workers: Sequence[str],
        cost_model: Optional[CostModel] = None,
        use_consensus: bool = False,
        seed: int = 0,
        warden: Optional[RaceWarden] = None,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker node")
        self.network = network
        self.home = home
        self.workers = list(workers)
        self.cost_model = (
            cost_model if cost_model is not None else network.cost_model
        )
        self.use_consensus = use_consensus
        self.seed = seed
        self.warden = warden
        network.node(home)  # validate early
        for worker in self.workers:
            network.node(worker)

    def new_parent(self, space_size: int = 64 * 1024) -> SimProcess:
        """A fresh parent on the home node."""
        return self.network.node(self.home).manager.create_initial(
            space_size=space_size
        )

    @staticmethod
    def over_sockets(
        endpoints,
        seed: int = 0,
        warden: Optional[RaceWarden] = None,
        use_consensus: bool = False,
        **kwargs,
    ):
        """The same executor semantics over real TCP worker daemons.

        ``endpoints`` is a sequence of
        :class:`~repro.cluster.executor.WorkerEndpoint` (or
        ``(name, host, port)`` tuples) naming live
        :class:`~repro.cluster.daemon.WorkerDaemon` processes.  The
        returned :class:`~repro.cluster.executor.ClusterExecutor` keeps
        this class's contract -- shipped parent images, dirty-page
        commit, leases with epoch fencing, degrade-to-serial -- with the
        simulated wire swapped for sockets and the simulated clock for a
        wall clock.
        """
        from repro.cluster.executor import ClusterExecutor, WorkerEndpoint

        resolved = [
            endpoint if isinstance(endpoint, WorkerEndpoint)
            else WorkerEndpoint(*endpoint)
            for endpoint in endpoints
        ]
        return ClusterExecutor(
            resolved, seed=seed, warden=warden,
            use_consensus=use_consensus, **kwargs,
        )

    # ------------------------------------------------------------------
    # keyed randomness (the FaultInjector convention)

    def _rng_for(self, purpose: str, index: int) -> random.Random:
        """A per-``(seed, purpose, arm)`` RNG.

        Keyed derivation means the draw an arm sees never depends on how
        many draws other arms (or earlier incarnations) consumed -- the
        property that makes a chaos run replay bit-identically.
        """
        return random.Random(f"{self.seed}:{purpose}:{index}")

    # ------------------------------------------------------------------

    def run(
        self,
        alternatives: Sequence[Alternative],
        parent: Optional[SimProcess] = None,
    ) -> AltResult:
        """Execute the block with one alternative per worker node.

        Alternatives beyond the worker count round-robin onto nodes; each
        still gets its own shipped copy of the parent image.
        """
        if not alternatives:
            raise ValueError("an alternative block needs at least one arm")
        parent = parent if parent is not None else self.new_parent()
        tracer = _active_tracer()
        block = tracer.next_block() if tracer.enabled else None
        if tracer.enabled:
            tracer.emit(
                _ev.BLOCK_BEGIN,
                block=block,
                name=f"alt-block#{block} [distributed]",
                backend="distributed",
                arms=len(alternatives),
                supervised=self.warden is not None,
            )
        try:
            result = self._run_inner(alternatives, parent, block)
        except AltBlockFailure as exc:
            if tracer.enabled:
                tracer.emit(
                    _ev.BLOCK_END,
                    block=block,
                    outcome=type(exc).__name__,
                    elapsed_seconds=float(getattr(exc, "elapsed", 0.0) or 0.0),
                )
            raise
        if tracer.enabled:
            tracer.emit(
                _ev.BLOCK_END,
                block=block,
                outcome="won",
                winner=result.winner.name,
                elapsed_seconds=result.elapsed,
            )
        return result

    def _run_inner(
        self,
        alternatives: Sequence[Alternative],
        parent: SimProcess,
        block: Optional[int],
    ) -> AltResult:
        timeline: List[Tuple[float, str]] = [(0.0, "block entered")]
        outcomes = [
            AltOutcome(index=i, name=a.name, status="untried")
            for i, a in enumerate(alternatives)
        ]
        runs, clock = self._ship_and_execute(
            alternatives, parent, outcomes, timeline, block
        )
        result = None
        if runs:
            result = self._select(parent, runs, outcomes, timeline, block)
        if result is not None:
            return result
        # Nothing committed remotely: degrade to a home-node serial
        # replay when a warden allows it, otherwise fail the block.
        reason = (
            "no worker node was reachable"
            if not runs
            else f"all {len([r for r in runs if not r.zombie])} remote "
            "alternatives failed"
        )
        if self.warden is not None and self.warden.degrade_to_serial:
            return self._degrade_serial(
                alternatives, parent, outcomes, timeline, clock, reason, block
            )
        latest = max((run.completion for run in runs), default=clock)
        for run in runs:
            if not run.zombie:
                outcomes[run.index].cpu_consumed = run.duration
        if self.warden is not None:
            # Failure settles too: no lease may outlive its race.
            self.warden.table.settle(at=latest, winner_arm=None)
        error = AltBlockFailure(reason)
        error.outcomes = outcomes
        error.elapsed = latest
        error.timeline = timeline
        raise error

    # ------------------------------------------------------------------
    # shipping + remote execution (with optional lease supervision)

    def _ship_and_execute(self, alternatives, parent, outcomes, timeline, block):
        model = self.cost_model
        warden = self.warden
        image_bytes = None
        clock = 0.0
        runs: List[_RemoteRun] = []
        dead_nodes: Set[str] = set()
        for index, arm in enumerate(alternatives):
            preferred = self.workers[index % len(self.workers)]
            tried: List[str] = []
            attempt = 0
            while True:
                if warden is None:
                    # Unsupervised: the arm lives and dies with its
                    # round-robin node (the PR-0 semantics).
                    node_name = (
                        preferred
                        if preferred not in tried
                        and self.network.reachable(self.home, preferred)
                        else None
                    )
                else:
                    node_name = self._pick_node(
                        preferred, tried, dead_nodes, clock
                    )
                if node_name is None:
                    outcomes[index].status = "failed"
                    outcomes[index].detail = (
                        f"node {preferred} unreachable"
                        if not tried
                        else "no reachable worker node"
                    )
                    timeline.append(
                        (clock,
                         f"{arm.name}: {preferred} unreachable"
                         if not tried
                         else f"{arm.name}: no reachable worker node")
                    )
                    break
                try:
                    forked = remote_fork(
                        self.network, self.home, node_name, parent,
                        cost_model=model,
                    )
                except NetworkError as exc:
                    # A partition opened mid-race: contain it here instead
                    # of letting it unwind the whole block.
                    tried.append(node_name)
                    timeline.append(
                        (clock, f"{arm.name}: ship to {node_name} failed ({exc})")
                    )
                    if warden is None:
                        outcomes[index].status = "failed"
                        outcomes[index].detail = f"node {node_name} unreachable"
                        break
                    continue
                if image_bytes is None:
                    image_bytes = forked.image_bytes
                    clock += forked.checkpoint_time  # checkpoint happens once
                # Transfers leave the home node serially; restores overlap.
                clock += forked.transfer_time
                arrival = clock + forked.restore_time
                child = forked.process
                context = AltContext(
                    child.space,
                    rng=self._rng_for("ctx", index),
                    alt_index=index + 1,
                    name=arm.name,
                    process=child,
                )
                succeeded, value, detail = _run_body(arm, context)
                duration = (
                    arm.sample_cost(self._rng_for("cost", index), context)
                    + arm.guard_cost
                )
                pages = child.space.pages_written
                duration += model.page_copy_time(pages)
                outcomes[index].pid = child.pid
                outcomes[index].duration = duration
                outcomes[index].pages_written = pages
                outcomes[index].started_at = arrival
                timeline.append((arrival, f"rfork {arm.name} onto {node_name}"))
                run = _RemoteRun(
                    index=index,
                    node=node_name,
                    process=child,
                    succeeded=succeeded,
                    value=value,
                    detail=detail,
                    duration=duration,
                    pages_written=pages,
                    arrival=arrival,
                )
                if warden is None:
                    runs.append(run)
                    break

                # -- supervised: the incarnation runs under a lease -----
                lease = warden.table.grant(
                    node_name, index, at=arrival,
                    interval=warden.lease_interval,
                    timeout=warden.lease_timeout,
                )
                run.lease = lease
                run.epoch = lease.epoch
                crash_at = self._crash_instant(index, arrival, duration)
                alive_until = crash_at if crash_at is not None else run.completion
                lapse = self._simulate_lease(
                    lease, node_name, alive_until,
                    beats_stop=crash_at is not None,
                )
                if lapse is None:
                    runs.append(run)  # lease held through completion
                    break
                # The warden declares this incarnation dead at ``lapse``;
                # the worker-side lease lapses on the same deadline, so an
                # orphan self-terminates instead of lingering.
                lease.expire(lapse)
                clock = max(clock, lapse)
                timeline.append(
                    (lapse, f"lease of {arm.name}@{node_name} expired "
                            f"(epoch {lease.epoch})")
                )
                if crash_at is not None:
                    dead_nodes.add(node_name)
                    run.succeeded = False
                    run.detail = "worker crashed mid-arm"
                elif run.succeeded:
                    # Zombie: the body finished remotely after home gave up
                    # on it.  It may still race to the selection point, but
                    # the epoch fence bars it from committing.
                    run.zombie = True
                    runs.append(run)
                tried.append(node_name)
                attempt += 1
                if not warden.respawns_left(attempt):
                    outcomes[index].status = "failed"
                    outcomes[index].detail = (
                        f"lease expired (epoch {lease.epoch}); "
                        "respawns exhausted"
                    )
                    break
                tracer = _active_tracer()
                if tracer.enabled:
                    tracer.emit(
                        _ev.WORKER_RESPAWN,
                        block=block,
                        arm=index,
                        name=arm.name,
                        dead_worker=node_name,
                        epoch=lease.epoch,
                        at=lapse,
                    )
        return runs, clock

    def _pick_node(
        self,
        preferred: str,
        tried: List[str],
        dead_nodes: Set[str],
        clock: float,
    ) -> Optional[str]:
        """The preferred node, else the next healthy reachable worker."""
        start = self.workers.index(preferred)
        rotation = self.workers[start:] + self.workers[:start]
        for name in rotation:
            if name in tried or name in dead_nodes:
                continue
            if self.network.reachable(self.home, name, at=clock):
                return name
        return None

    def _crash_instant(
        self, index: int, arrival: float, duration: float
    ) -> Optional[float]:
        """When the ``worker-crash`` fault kills this arm's node."""
        injector = _active_injector()
        if injector is None:
            return None
        rule = injector.draw("worker-crash", index)
        if rule is None:
            return None
        return arrival + min(rule.duration, duration)

    def _simulate_lease(
        self,
        lease: Lease,
        node: str,
        alive_until: float,
        beats_stop: bool,
    ) -> Optional[float]:
        """Heartbeat the lease over the faulty wire until ``alive_until``.

        Each beat is one :meth:`Network.transmit` (so injected loss,
        duplication, and partitions apply); arriving beats renew the
        lease.  Returns the instant the lease lapses, or ``None`` when it
        holds through ``alive_until`` (and beyond: the claim message is
        next).  ``beats_stop`` marks a crashed worker whose silence is
        permanent.
        """
        t = lease.granted_at + lease.interval
        while t <= alive_until + 1e-12:
            deliveries = self.network.transmit(
                node,
                self.home,
                ("hb", lease.arm, lease.epoch),
                nbytes=HEARTBEAT_BYTES,
                at=t,
            )
            for delivery in sorted(deliveries, key=lambda d: d.arrive_at):
                if delivery.arrive_at > lease.deadline:
                    return lease.deadline  # lapsed before this beat landed
                lease.renew(delivery.arrive_at)
            t += lease.interval
        if beats_stop:
            return lease.deadline  # silence is forever: certain lapse
        if lease.deadline < alive_until:
            return lease.deadline
        return None

    # ------------------------------------------------------------------
    # selection / commit (epoch-fenced)

    def _select(
        self, parent, runs, outcomes, timeline, block
    ) -> Optional[AltResult]:
        """Pick and commit a winner; ``None`` when nothing could commit."""
        model = self.cost_model
        tracer = _active_tracer()
        ordered = sorted(runs, key=lambda run: run.completion)
        semaphore = self._make_semaphore()
        sync_latency = (
            MajorityConsensusSemaphore(
                [ConsensusNode(w) for w in self.workers]
            ).latency(model)
            if self.use_consensus
            else model.network_latency + model.sync_latency
        )
        winner: Optional[_RemoteRun] = None
        state_ship = 0.0
        for run in ordered:
            name = outcomes[run.index].name
            if not run.succeeded:
                if not run.zombie:
                    outcomes[run.index].status = "failed"
                    outcomes[run.index].detail = run.detail
                    outcomes[run.index].finished_at = run.completion
                    timeline.append(
                        (run.completion,
                         f"{run.process.pid} aborts: {run.detail}")
                    )
                continue
            if not self._commit_allowed(run):
                # The incarnation-epoch fence: a zombie whose lease lapsed
                # (or that a newer incarnation superseded) must not ship
                # pages home, however fast it finished.
                timeline.append(
                    (run.completion,
                     f"zombie {name}@{run.node} fenced at winner-commit "
                     f"(epoch {run.epoch})")
                )
                if tracer.enabled:
                    tracer.emit(
                        _ev.LOSER_ELIMINATE,
                        block=block,
                        arm=run.index,
                        name=name,
                        reason="stale-epoch-fence",
                        epoch=run.epoch,
                    )
                continue
            if not self._try_sync(semaphore, run):
                continue
            dirty_bytes = run.pages_written * model.page_size
            try:
                state_ship = self.network.transfer(
                    run.node, self.home, dirty_bytes
                )
            except NetworkError as exc:
                # A mid-race partition cut the winner off before its pages
                # came home.  The commit never happened, so the grant dies
                # with the partition: re-arm the rendezvous and promote
                # the next finisher (loser-elimination, not a raw error).
                outcomes[run.index].status = "failed"
                outcomes[run.index].detail = (
                    f"unreachable at winner-commit: {exc}"
                )
                outcomes[run.index].finished_at = run.completion
                outcomes[run.index].cpu_consumed = run.duration
                timeline.append(
                    (run.completion + sync_latency,
                     f"{name} granted sync but partitioned; grant revoked")
                )
                if tracer.enabled:
                    tracer.emit(
                        _ev.LOSER_ELIMINATE,
                        block=block,
                        arm=run.index,
                        name=name,
                        reason="partitioned-at-commit",
                    )
                semaphore = self._make_semaphore()
                continue
            winner = run
            timeline.append(
                (run.completion, f"{name} requests sync")
            )
            break
        if winner is None:
            return None

        # Synchronization: the claim message travels home, then 'the
        # changed state is updated in the parent's storage'.
        resume_at = winner.completion + sync_latency + state_ship
        self._apply_remote_state(parent, winner.process)
        timeline.append(
            (winner.completion + sync_latency, "sync granted at home")
        )
        timeline.append((resume_at, "parent resumes (state shipped home)"))
        if tracer.enabled:
            tracer.emit(
                _ev.WINNER_COMMIT,
                block=block,
                arm=winner.index,
                name=outcomes[winner.index].name,
                pages=winner.pages_written,
                sim_time=winner.completion,
                epoch=winner.epoch or None,
            )

        winner_outcome = outcomes[winner.index]
        winner_outcome.status = "won"
        winner_outcome.value = winner.value
        winner_outcome.finished_at = winner.completion
        wasted = 0.0
        losers = [
            r for r in runs if r is not winner and not r.zombie
        ]
        for slot, run in enumerate(losers):
            kill_at = resume_at + model.network_latency + slot * model.kill_latency
            if outcomes[run.index].status == "untried":
                outcomes[run.index].status = "eliminated"
                outcomes[run.index].finished_at = min(run.completion, kill_at)
                timeline.append((kill_at, f"kill message to {run.node}"))
            consumed = min(run.duration, max(0.0, kill_at - run.arrival))
            outcomes[run.index].cpu_consumed = consumed
            wasted += consumed
        for run in (r for r in runs if r.zombie):
            # A zombie burned its full body before its lease fenced it.
            wasted += run.duration
        winner_outcome.cpu_consumed = winner.duration
        if self.warden is not None:
            self.warden.table.settle(at=resume_at, winner_arm=winner.index)

        overhead = OverheadBreakdown(
            setup=winner.arrival,  # checkpoint + ship + restore for winner
            runtime=model.page_copy_time(winner.pages_written),
            selection=sync_latency + state_ship,
        )
        return AltResult(
            value=winner.value,
            winner=winner_outcome,
            outcomes=outcomes,
            elapsed=resume_at,
            overhead=overhead,
            wasted_work=wasted,
            timeline=sorted(timeline, key=lambda pair: pair[0]),
        )

    def _commit_allowed(self, run: _RemoteRun) -> bool:
        """The incarnation-epoch fence checked at winner-commit."""
        if run.lease is None:
            return True
        if run.lease.terminal:
            return False
        return run.epoch == self.warden.table.current_epoch(run.index)

    # ------------------------------------------------------------------
    # degradation

    def _degrade_serial(
        self, alternatives, parent, outcomes, timeline, clock, reason, block
    ) -> AltResult:
        """Replay the block serially on the home node.

        The simulated-substrate analogue of the supervisor's
        ``SerialBackend`` degradation: arms run one at a time, in order,
        in fresh COW worlds of the home parent, with the fault injector
        suppressed (one clean chance before the block concedes).
        """
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(_ev.DEGRADE, block=block, reason=reason)
        timeline.append(
            (clock, f"degrading to serial replay at home ({reason})")
        )
        if self.warden is not None:
            # Remote leases settle before the replay touches the parent:
            # expired stay expired, anything still active is eliminated.
            self.warden.table.settle(at=clock, winner_arm=None)
        executor = SequentialExecutor(
            policy=OrderedPolicy(),
            try_all=True,
            seed=self.seed,
            manager=self.network.node(self.home).manager,
        )
        try:
            with suppressed():
                replay = executor.run(alternatives, parent=parent)
        except AltBlockFailure as exc:
            exc.timeline = sorted(
                timeline
                + [(clock + t, f"[replay] {label}")
                   for t, label in getattr(exc, "timeline", [])],
                key=lambda pair: pair[0],
            )
            exc.elapsed = clock + (getattr(exc, "elapsed", 0.0) or 0.0)
            raise
        merged = timeline + [
            (clock + t, f"[replay] {label}") for t, label in replay.timeline
        ]
        return AltResult(
            value=replay.value,
            winner=replay.winner,
            outcomes=replay.outcomes,
            elapsed=clock + replay.elapsed,
            overhead=replay.overhead,
            wasted_work=replay.wasted_work,
            timeline=sorted(merged, key=lambda pair: pair[0]),
        )

    # ------------------------------------------------------------------

    def _make_semaphore(self):
        if self.use_consensus:
            return MajorityConsensusSemaphore(
                [ConsensusNode(f"sync-{w}") for w in self.workers]
            )
        from repro.consensus.semaphore import SyncSemaphore

        return SyncSemaphore("home")

    def _try_sync(self, semaphore, run: _RemoteRun) -> bool:
        if isinstance(semaphore, MajorityConsensusSemaphore):
            try:
                return semaphore.try_acquire("block", run.process.pid)
            except Exception:
                return False
        return semaphore.try_acquire(run.process.pid)

    @staticmethod
    def _apply_remote_state(parent: SimProcess, winner: SimProcess) -> None:
        """Write the winner's dirty pages into the parent's storage."""
        table = winner.space.table
        page_size = winner.space.page_size
        for vpn in sorted(table.dirty_pages):
            data = table.read_page(vpn)
            offset = vpn * page_size
            length = min(len(data), parent.space.size - offset)
            if length > 0:
                parent.space.write(offset, data[:length])
