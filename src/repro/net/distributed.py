"""Distributed execution of an alternative block across network nodes.

Section 4.1 prices the distributed case explicitly:

- *Memory copying*: 'In the distributed case we must actually copy state
  for a remote child so that it can read or write locally' -- here, the
  parent image is checkpointed once and shipped to each worker node;
- 'There is more copying to be performed during synchronization, as the
  changed state is updated in the parent's storage' -- the winner's dirty
  pages travel back over the network before the parent resumes;
- *Sibling elimination* becomes termination messages with network
  latency, naturally asynchronous.

Each alternative runs on its own node (real concurrency), and the
synchronization can be a single home-node semaphore or a majority
consensus across the workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import random

from repro.consensus.majority import MajorityConsensusSemaphore
from repro.consensus.node import ConsensusNode
from repro.core.alternative import AltContext, Alternative
from repro.core.result import AltOutcome, AltResult, OverheadBreakdown
from repro.core.sequential import _run_body
from repro.errors import AltBlockFailure
from repro.net.network import Network
from repro.net.rfork import remote_fork
from repro.process.process import SimProcess
from repro.sim.costs import CostModel


@dataclass
class _RemoteRun:
    index: int
    node: str
    process: SimProcess
    succeeded: bool
    value: object
    detail: str
    duration: float
    pages_written: int
    arrival: float

    @property
    def completion(self) -> float:
        return self.arrival + self.duration


class DistributedAltExecutor:
    """Race alternatives across workstations instead of local children."""

    def __init__(
        self,
        network: Network,
        home: str,
        workers: Sequence[str],
        cost_model: Optional[CostModel] = None,
        use_consensus: bool = False,
        seed: int = 0,
    ) -> None:
        if not workers:
            raise ValueError("need at least one worker node")
        self.network = network
        self.home = home
        self.workers = list(workers)
        self.cost_model = (
            cost_model if cost_model is not None else network.cost_model
        )
        self.use_consensus = use_consensus
        self.seed = seed
        network.node(home)  # validate early
        for worker in self.workers:
            network.node(worker)

    def new_parent(self, space_size: int = 64 * 1024) -> SimProcess:
        """A fresh parent on the home node."""
        return self.network.node(self.home).manager.create_initial(
            space_size=space_size
        )

    # ------------------------------------------------------------------

    def run(
        self,
        alternatives: Sequence[Alternative],
        parent: Optional[SimProcess] = None,
    ) -> AltResult:
        """Execute the block with one alternative per worker node.

        Alternatives beyond the worker count round-robin onto nodes; each
        still gets its own shipped copy of the parent image.
        """
        if not alternatives:
            raise ValueError("an alternative block needs at least one arm")
        parent = parent if parent is not None else self.new_parent()
        model = self.cost_model
        rng = random.Random(self.seed)
        timeline: List[Tuple[float, str]] = [(0.0, "block entered")]
        outcomes = [
            AltOutcome(index=i, name=a.name, status="untried")
            for i, a in enumerate(alternatives)
        ]

        runs = self._ship_and_execute(
            alternatives, parent, outcomes, timeline, rng
        )
        return self._select(parent, runs, outcomes, timeline)

    def _ship_and_execute(self, alternatives, parent, outcomes, timeline, rng):
        model = self.cost_model
        image_bytes = None
        clock = 0.0
        runs: List[_RemoteRun] = []
        for index, arm in enumerate(alternatives):
            node_name = self.workers[index % len(self.workers)]
            if not self.network.reachable(self.home, node_name):
                outcomes[index].status = "failed"
                outcomes[index].detail = f"node {node_name} unreachable"
                timeline.append((clock, f"{arm.name}: {node_name} unreachable"))
                continue
            forked = remote_fork(
                self.network, self.home, node_name, parent, cost_model=model
            )
            if image_bytes is None:
                image_bytes = forked.image_bytes
                clock += forked.checkpoint_time  # checkpoint happens once
            # Transfers leave the home node serially; restores overlap.
            clock += forked.transfer_time
            arrival = clock + forked.restore_time
            child = forked.process
            context = AltContext(
                child.space,
                rng=random.Random(self.seed * 1000003 + index),
                alt_index=index + 1,
                name=arm.name,
                process=child,
            )
            succeeded, value, detail = _run_body(arm, context)
            duration = arm.sample_cost(rng, context) + arm.guard_cost
            pages = child.space.pages_written
            duration += model.page_copy_time(pages)
            outcomes[index].pid = child.pid
            outcomes[index].duration = duration
            outcomes[index].pages_written = pages
            outcomes[index].started_at = arrival
            timeline.append((arrival, f"rfork {arm.name} onto {node_name}"))
            runs.append(
                _RemoteRun(
                    index=index,
                    node=node_name,
                    process=child,
                    succeeded=succeeded,
                    value=value,
                    detail=detail,
                    duration=duration,
                    pages_written=pages,
                    arrival=arrival,
                )
            )
        if not runs:
            error = AltBlockFailure("no worker node was reachable")
            error.outcomes = outcomes
            error.elapsed = clock
            raise error
        return runs

    def _select(self, parent, runs, outcomes, timeline) -> AltResult:
        model = self.cost_model
        ordered = sorted(runs, key=lambda run: run.completion)
        winner: Optional[_RemoteRun] = None
        semaphore = self._make_semaphore()
        for run in ordered:
            if not run.succeeded:
                outcomes[run.index].status = "failed"
                outcomes[run.index].detail = run.detail
                outcomes[run.index].finished_at = run.completion
                timeline.append(
                    (run.completion, f"{run.process.pid} aborts: {run.detail}")
                )
                continue
            granted = self._try_sync(semaphore, run)
            if granted and winner is None:
                winner = run
                timeline.append(
                    (run.completion, f"{outcomes[run.index].name} requests sync")
                )
                break
        if winner is None:
            error = AltBlockFailure(
                f"all {len(runs)} remote alternatives failed"
            )
            latest = max(run.completion for run in runs)
            for run in runs:
                outcomes[run.index].cpu_consumed = run.duration
            error.outcomes = outcomes
            error.elapsed = latest
            error.timeline = timeline
            raise error

        # Synchronization: the claim message travels home, then 'the
        # changed state is updated in the parent's storage'.
        sync_latency = (
            MajorityConsensusSemaphore(
                [ConsensusNode(w) for w in self.workers]
            ).latency(model)
            if self.use_consensus
            else model.network_latency + model.sync_latency
        )
        dirty_bytes = winner.pages_written * model.page_size
        state_ship = self.network.transfer(winner.node, self.home, dirty_bytes)
        resume_at = winner.completion + sync_latency + state_ship
        self._apply_remote_state(parent, winner.process)
        timeline.append(
            (winner.completion + sync_latency, "sync granted at home")
        )
        timeline.append((resume_at, "parent resumes (state shipped home)"))

        winner_outcome = outcomes[winner.index]
        winner_outcome.status = "won"
        winner_outcome.value = winner.value
        winner_outcome.finished_at = winner.completion
        wasted = 0.0
        for slot, run in enumerate(r for r in runs if r is not winner):
            kill_at = resume_at + model.network_latency + slot * model.kill_latency
            if outcomes[run.index].status == "untried":
                outcomes[run.index].status = "eliminated"
                outcomes[run.index].finished_at = min(run.completion, kill_at)
                timeline.append((kill_at, f"kill message to {run.node}"))
            consumed = min(run.duration, max(0.0, kill_at - run.arrival))
            outcomes[run.index].cpu_consumed = consumed
            wasted += consumed
        winner_outcome.cpu_consumed = winner.duration

        overhead = OverheadBreakdown(
            setup=winner.arrival,  # checkpoint + ship + restore for winner
            runtime=model.page_copy_time(winner.pages_written),
            selection=sync_latency + state_ship,
        )
        return AltResult(
            value=winner.value,
            winner=winner_outcome,
            outcomes=outcomes,
            elapsed=resume_at,
            overhead=overhead,
            wasted_work=wasted,
            timeline=sorted(timeline, key=lambda pair: pair[0]),
        )

    def _make_semaphore(self):
        if self.use_consensus:
            return MajorityConsensusSemaphore(
                [ConsensusNode(f"sync-{w}") for w in self.workers]
            )
        from repro.consensus.semaphore import SyncSemaphore

        return SyncSemaphore("home")

    def _try_sync(self, semaphore, run: _RemoteRun) -> bool:
        if isinstance(semaphore, MajorityConsensusSemaphore):
            try:
                return semaphore.try_acquire("block", run.process.pid)
            except Exception:
                return False
        return semaphore.try_acquire(run.process.pid)

    @staticmethod
    def _apply_remote_state(parent: SimProcess, winner: SimProcess) -> None:
        """Write the winner's dirty pages into the parent's storage."""
        table = winner.space.table
        page_size = winner.space.page_size
        for vpn in sorted(table.dirty_pages):
            data = table.read_page(vpn)
            offset = vpn * page_size
            length = min(len(data), parent.space.size - offset)
            if length > 0:
                parent.space.write(offset, data[:length])
