"""Process migration via checkpoint/restart (Smith & Ioannidis 1989).

Section 4.4 cites 'the process migration scheme we implemented using'
``rfork()``.  :func:`migrate` is the stop-and-copy version: freeze the
process, checkpoint it in its entirety, ship it, restore it on the
destination with the *same pid* ('up to and including maintenance of the
process id'), and silently retire the original -- the move must not look
like completion or failure to anyone holding predicates on the process.

The NFS variant reduces the stop-and-copy downtime by paging the image in
lazily, in the style of Theimer's 'preemptable remote execution'
facilities that the paper cites as the more sophisticated approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CheckpointError
from repro.net.network import Network
from repro.net.rfork import remote_fork, remote_fork_nfs
from repro.pages.files import FileSystem
from repro.process.process import ProcessState, SimProcess
from repro.sim.costs import CostModel


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one migration."""

    process: SimProcess
    src: str
    dst: str
    image_bytes: int
    downtime: float
    """Time the process is frozen: from checkpoint start until the
    destination copy can run."""

    @property
    def pid_preserved(self) -> bool:
        """Migration keeps the process identity."""
        return True


def migrate(
    network: Network,
    src: str,
    dst: str,
    process: SimProcess,
    nfs: Optional[FileSystem] = None,
    eager_fraction: float = 0.25,
    cost_model: Optional[CostModel] = None,
) -> MigrationResult:
    """Move ``process`` from ``src`` to ``dst``; returns the new handle.

    The original is retired without a status broadcast (it did not
    complete; it moved).  Raises
    :class:`~repro.errors.CheckpointError` if the process cannot be
    frozen and :class:`~repro.errors.NetworkError` if the nodes cannot
    communicate.
    """
    if process.is_terminal:
        raise CheckpointError(
            f"cannot migrate terminal process {process.pid}"
        )
    src_manager = network.node(src).manager
    if src_manager.processes.get(process.pid) is not process:
        raise CheckpointError(
            f"process {process.pid} does not live on node {src!r}"
        )
    original_pid = process.pid
    if nfs is not None:
        forked = remote_fork_nfs(
            network, src, dst, process, nfs,
            eager_fraction=eager_fraction, cost_model=cost_model,
        )
    else:
        forked = remote_fork(network, src, dst, process, cost_model=cost_model)
    moved = forked.process
    dst_manager = network.node(dst).manager

    # Maintain the process id: rebind the restored copy to the original
    # pid unless the destination already uses it.
    if original_pid not in dst_manager.processes:
        del dst_manager.processes[moved.pid]
        moved.pid = original_pid
        dst_manager.processes[original_pid] = moved

    # Retire the original silently; its predicates stay open, carried by
    # the moved copy.
    src_manager.exit(process, notify=False)
    del src_manager.processes[original_pid]

    return MigrationResult(
        process=moved,
        src=src,
        dst=dst,
        image_bytes=forked.image_bytes,
        downtime=forked.total_time,
    )
