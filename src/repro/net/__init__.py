"""Simulated network and distributed substrate.

Provides the nodes-and-links model under the distributed experiments:
per-link latency/bandwidth, partitions (static and timed), the remote
fork built from whole-process checkpointing (paper section 4.4's
``rfork()``), fault-injectable links driven by the seeded chaos plans,
and the lease/warden machinery that keeps a distributed race correct
when the wire turns hostile.
"""

from repro.net.distributed import DistributedAltExecutor
from repro.net.lease import LEASE_STATES, Lease, LeaseTable, RaceWarden
from repro.net.migration import MigrationResult, migrate
from repro.net.network import (
    Delivery,
    FaultyLink,
    NetFaultPlan,
    NetNode,
    Network,
    link_key,
)
from repro.net.rfork import RemoteForkResult, remote_fork, remote_fork_nfs

__all__ = [
    "Delivery",
    "DistributedAltExecutor",
    "FaultyLink",
    "LEASE_STATES",
    "Lease",
    "LeaseTable",
    "MigrationResult",
    "NetFaultPlan",
    "NetNode",
    "Network",
    "RaceWarden",
    "RemoteForkResult",
    "link_key",
    "migrate",
    "remote_fork",
    "remote_fork_nfs",
]
