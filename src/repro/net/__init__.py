"""Simulated network and distributed substrate.

Provides the nodes-and-links model under the distributed experiments:
per-link latency/bandwidth, partitions, and the remote fork built from
whole-process checkpointing (paper section 4.4's ``rfork()``).
"""

from repro.net.distributed import DistributedAltExecutor
from repro.net.migration import MigrationResult, migrate
from repro.net.network import NetNode, Network
from repro.net.rfork import RemoteForkResult, remote_fork, remote_fork_nfs

__all__ = [
    "DistributedAltExecutor",
    "MigrationResult",
    "NetNode",
    "Network",
    "RemoteForkResult",
    "migrate",
    "remote_fork",
    "remote_fork_nfs",
]
