"""A small simulated network of workstation nodes.

Each :class:`NetNode` owns its own page store and process manager (memory
is not shared across the network -- 'in the distributed case we must
actually copy state for a remote child').  :class:`Network` provides
loss-free FIFO links with latency and bandwidth, and supports partitions
for failure experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set

from repro.errors import NetworkError
from repro.pages.store import PageStore
from repro.process.primitives import ProcessManager
from repro.sim.costs import CostModel, MODERN_COMMODITY


@dataclass
class Link:
    """A bidirectional link with one-way latency and bandwidth."""

    latency: float
    bandwidth: float

    def transfer_time(self, nbytes: int) -> float:
        """One-way time to move ``nbytes`` over the link."""
        if nbytes < 0:
            raise ValueError("byte count cannot be negative")
        return self.latency + nbytes / self.bandwidth


class NetNode:
    """A workstation: its own store, its own kernel, a name."""

    def __init__(self, name: str, page_size: int = 4096) -> None:
        self.name = name
        self.store = PageStore(page_size=page_size)
        self.manager = ProcessManager(self.store)
        self.bytes_sent = 0
        self.bytes_received = 0

    def __repr__(self) -> str:
        return f"NetNode({self.name!r})"


class Network:
    """Named nodes joined by configurable links."""

    def __init__(self, cost_model: CostModel = MODERN_COMMODITY) -> None:
        self.cost_model = cost_model
        self.nodes: Dict[str, NetNode] = {}
        self._links: Dict[FrozenSet[str], Link] = {}
        self._partitions: Set[FrozenSet[str]] = set()
        self.transfers = 0
        self.bytes_transferred = 0

    # ------------------------------------------------------------------
    # topology

    def add_node(self, name: str, page_size: Optional[int] = None) -> NetNode:
        """Create and register a node."""
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        node = NetNode(
            name,
            page_size=page_size if page_size is not None else self.cost_model.page_size,
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> NetNode:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"no such node: {name!r}") from None

    def connect(
        self,
        a: str,
        b: str,
        latency: Optional[float] = None,
        bandwidth: Optional[float] = None,
    ) -> Link:
        """Join two nodes; defaults come from the cost model."""
        self.node(a)
        self.node(b)
        if a == b:
            raise NetworkError("cannot link a node to itself")
        link = Link(
            latency=latency if latency is not None else self.cost_model.network_latency,
            bandwidth=(
                bandwidth
                if bandwidth is not None
                else self.cost_model.network_bandwidth
            ),
        )
        self._links[frozenset((a, b))] = link
        return link

    def link(self, a: str, b: str) -> Link:
        """The link between two nodes (raises when absent)."""
        key = frozenset((a, b))
        try:
            return self._links[key]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    # ------------------------------------------------------------------
    # partitions

    def partition(self, a: str, b: str) -> None:
        """Cut communication between two nodes."""
        self.link(a, b)  # must exist
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore communication between two nodes."""
        self._partitions.discard(frozenset((a, b)))

    def reachable(self, a: str, b: str) -> bool:
        """True when a direct, unpartitioned link exists."""
        key = frozenset((a, b))
        return key in self._links and key not in self._partitions

    # ------------------------------------------------------------------
    # transfers

    def transfer(self, src: str, dst: str, nbytes: int) -> float:
        """Move ``nbytes`` from ``src`` to ``dst``; return elapsed time.

        Raises :class:`NetworkError` when the nodes are not reachable.
        """
        if not self.reachable(src, dst):
            raise NetworkError(f"{src!r} cannot reach {dst!r}")
        elapsed = self.link(src, dst).transfer_time(nbytes)
        self.node(src).bytes_sent += nbytes
        self.node(dst).bytes_received += nbytes
        self.transfers += 1
        self.bytes_transferred += nbytes
        return elapsed

    def __repr__(self) -> str:
        return (
            f"Network(nodes={sorted(self.nodes)}, links={len(self._links)}, "
            f"partitions={len(self._partitions)})"
        )
