"""A small simulated network of workstation nodes.

Each :class:`NetNode` owns its own page store and process manager (memory
is not shared across the network -- 'in the distributed case we must
actually copy state for a remote child').  :class:`Network` joins nodes
with :class:`FaultyLink` objects: loss-free FIFO by default, but every
message-level :meth:`Network.transmit` consults the seeded
:class:`~repro.resilience.FaultInjector` registry at the ``net-*`` fault
points, so an armed :class:`~repro.resilience.NetFaultPlan` turns the
wire hostile -- message loss, duplication, reordering, latency spikes,
and timed partitions -- while staying keyed-RNG deterministic.

Two transfer APIs coexist:

- :meth:`Network.transfer` is the PR-0 bulk API (cost accounting only);
  it still raises :class:`~repro.errors.NetworkError` on a partition.
- :meth:`Network.transmit` is message-grained: a partitioned or dropped
  message is silently lost (the realistic semantics -- the sender only
  learns from missing acks or lapsed leases), duplication yields two
  :class:`Delivery` records, and every chaos decision is traced
  (``net-drop`` / ``net-dup`` / ``net-partition``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set

from repro.errors import NetworkError
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.pages.store import PageStore
from repro.process.primitives import ProcessManager
from repro.resilience.chaos import NetFaultPlan  # re-exported convenience
from repro.resilience.injector import active as _active_injector
from repro.sim.costs import CostModel, MODERN_COMMODITY

__all__ = [
    "Delivery",
    "FaultyLink",
    "Link",
    "NetFaultPlan",
    "NetNode",
    "Network",
    "link_key",
]


def link_key(a: str, b: str) -> str:
    """The canonical draw key of the link between two nodes."""
    return "|".join(sorted((a, b)))


@dataclass
class Link:
    """A bidirectional link with one-way latency and bandwidth."""

    latency: float
    bandwidth: float

    def transfer_time(self, nbytes: int) -> float:
        """One-way time to move ``nbytes`` over the link."""
        if nbytes < 0:
            raise ValueError("byte count cannot be negative")
        return self.latency + nbytes / self.bandwidth


@dataclass
class FaultyLink(Link):
    """A link whose deliveries consult the fault-injector registry.

    With no injector installed (the common case) every consultation is a
    single registry read returning ``None`` -- the link behaves exactly
    like the loss-free :class:`Link` it replaced.
    """

    key: str = ""
    """The injector draw key (``"a|b"``); chaos plans may restrict their
    rules to specific links through it."""

    def draw(self, point: str):
        """Consult the installed injector at ``point`` for this link."""
        injector = _active_injector()
        if injector is None:
            return None
        return injector.draw(point, self.key)


@dataclass(frozen=True)
class Delivery:
    """One copy of a transmitted message that actually arrives."""

    src: str
    dst: str
    payload: Any
    nbytes: int
    sent_at: float
    arrive_at: float
    duplicate: bool = False
    """True for the extra copy an injected ``net-dup`` produced."""

    @property
    def latency(self) -> float:
        return self.arrive_at - self.sent_at


class NetNode:
    """A workstation: its own store, its own kernel, a name."""

    def __init__(self, name: str, page_size: int = 4096) -> None:
        self.name = name
        self.store = PageStore(page_size=page_size)
        self.manager = ProcessManager(self.store)
        self.bytes_sent = 0
        self.bytes_received = 0

    def __repr__(self) -> str:
        return f"NetNode({self.name!r})"


class Network:
    """Named nodes joined by configurable (faultable) links."""

    def __init__(self, cost_model: CostModel = MODERN_COMMODITY) -> None:
        self.cost_model = cost_model
        self.nodes: Dict[str, NetNode] = {}
        self._links: Dict[FrozenSet[str], FaultyLink] = {}
        self._partitions: Set[FrozenSet[str]] = set()
        self._timed_partitions: Dict[FrozenSet[str], float] = {}
        self.transfers = 0
        self.bytes_transferred = 0
        # chaos accounting (message-level transmit only)
        self.drops = 0
        self.dups = 0
        self.reorders = 0
        self.delays = 0
        self.partitions_opened = 0

    # ------------------------------------------------------------------
    # topology

    def add_node(self, name: str, page_size: Optional[int] = None) -> NetNode:
        """Create and register a node."""
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        node = NetNode(
            name,
            page_size=page_size if page_size is not None else self.cost_model.page_size,
        )
        self.nodes[name] = node
        return node

    def node(self, name: str) -> NetNode:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"no such node: {name!r}") from None

    def connect(
        self,
        a: str,
        b: str,
        latency: Optional[float] = None,
        bandwidth: Optional[float] = None,
    ) -> FaultyLink:
        """Join two nodes; defaults come from the cost model."""
        self.node(a)
        self.node(b)
        if a == b:
            raise NetworkError("cannot link a node to itself")
        link = FaultyLink(
            latency=latency if latency is not None else self.cost_model.network_latency,
            bandwidth=(
                bandwidth
                if bandwidth is not None
                else self.cost_model.network_bandwidth
            ),
            key=link_key(a, b),
        )
        self._links[frozenset((a, b))] = link
        return link

    def link(self, a: str, b: str) -> FaultyLink:
        """The link between two nodes (raises when absent)."""
        key = frozenset((a, b))
        try:
            return self._links[key]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    # ------------------------------------------------------------------
    # partitions

    def partition(self, a: str, b: str, until: Optional[float] = None) -> None:
        """Cut communication between two nodes.

        ``until`` makes the partition *timed*: it heals by itself at that
        simulated instant (queries must pass their clock via
        ``reachable(..., at=now)`` to observe the healing).
        """
        self.link(a, b)  # must exist
        key = frozenset((a, b))
        if until is None:
            self._partitions.add(key)
        else:
            self._timed_partitions[key] = max(
                until, self._timed_partitions.get(key, 0.0)
            )

    def heal(self, a: str, b: str) -> None:
        """Restore communication between two nodes."""
        key = frozenset((a, b))
        self._partitions.discard(key)
        self._timed_partitions.pop(key, None)

    def reachable(self, a: str, b: str, at: Optional[float] = None) -> bool:
        """True when a direct, unpartitioned link exists.

        Timed partitions block until their expiry instant; callers that
        track simulated time pass it as ``at`` (``None`` treats any open
        timed partition as still in force).
        """
        key = frozenset((a, b))
        if key not in self._links or key in self._partitions:
            return False
        until = self._timed_partitions.get(key)
        if until is not None:
            if at is None or at < until:
                return False
            del self._timed_partitions[key]  # healed on its own
        return True

    def partition_heals_at(self, a: str, b: str) -> Optional[float]:
        """When the timed partition on a link lapses (``None`` if none)."""
        return self._timed_partitions.get(frozenset((a, b)))

    # ------------------------------------------------------------------
    # transfers

    def transfer(self, src: str, dst: str, nbytes: int) -> float:
        """Move ``nbytes`` from ``src`` to ``dst``; return elapsed time.

        Raises :class:`NetworkError` when the nodes are not reachable.
        """
        if not self.reachable(src, dst):
            raise NetworkError(f"{src!r} cannot reach {dst!r}")
        elapsed = self.link(src, dst).transfer_time(nbytes)
        self.node(src).bytes_sent += nbytes
        self.node(dst).bytes_received += nbytes
        self.transfers += 1
        self.bytes_transferred += nbytes
        return elapsed

    def transmit(
        self,
        src: str,
        dst: str,
        payload: Any = None,
        nbytes: int = 0,
        at: float = 0.0,
    ) -> List[Delivery]:
        """Send one message at simulated instant ``at``.

        Returns the :class:`Delivery` copies that actually arrive: empty
        on loss or partition, one normally, two under an injected
        duplication.  Never raises on a partition -- a cut link silently
        eats traffic, and the sender finds out the way real senders do
        (missing acknowledgements, lapsed leases).
        """
        link = self.link(src, dst)
        key = frozenset((src, dst))
        tracer = _active_tracer()

        # A transmit may be the unlucky one during which a timed
        # partition opens; the triggering message is the first casualty.
        rule = link.draw("net-partition")
        if rule is not None:
            self.partition(src, dst, until=at + rule.duration)
            self.partitions_opened += 1
            if tracer.enabled:
                tracer.emit(
                    _ev.NET_PARTITION,
                    name=link.key,
                    at=at,
                    heals_at=at + rule.duration,
                )
        if not self.reachable(src, dst, at=at):
            self.drops += 1
            if tracer.enabled:
                tracer.emit(
                    _ev.NET_DROP, name=link.key, at=at, reason="partitioned"
                )
            return []
        if link.draw("net-drop") is not None:
            self.drops += 1
            if tracer.enabled:
                tracer.emit(
                    _ev.NET_DROP, name=link.key, at=at, reason="lost"
                )
            return []

        latency = link.transfer_time(nbytes)
        delay_rule = link.draw("net-delay")
        if delay_rule is not None:
            latency += delay_rule.duration
            self.delays += 1
        if link.draw("net-reorder") is not None:
            # Push the arrival past a few link-latencies of later traffic.
            latency += 3.0 * link.latency
            self.reorders += 1

        deliveries = [
            Delivery(
                src=src, dst=dst, payload=payload, nbytes=nbytes,
                sent_at=at, arrive_at=at + latency,
            )
        ]
        if link.draw("net-dup") is not None:
            self.dups += 1
            if tracer.enabled:
                tracer.emit(_ev.NET_DUP, name=link.key, at=at)
            deliveries.append(
                Delivery(
                    src=src, dst=dst, payload=payload, nbytes=nbytes,
                    sent_at=at, arrive_at=at + latency + link.latency,
                    duplicate=True,
                )
            )
        for copy in deliveries:
            self.node(src).bytes_sent += nbytes
            self.node(dst).bytes_received += nbytes
            self.transfers += 1
            self.bytes_transferred += nbytes
        return deliveries

    def __repr__(self) -> str:
        return (
            f"Network(nodes={sorted(self.nodes)}, links={len(self._links)}, "
            f"partitions={len(self._partitions) + len(self._timed_partitions)})"
        )
