"""``alt_spawn`` / ``alt_wait`` / ``alt_sync`` (paper section 3.2).

:class:`ProcessManager` is the kernel-side mechanism: it creates processes,
forks alternative groups with COW address spaces and sibling-rivalry
predicates, arbitrates the at-most-once rendezvous, performs the atomic
page-pointer swap into the parent, and eliminates losing siblings either
synchronously or asynchronously.

Timing is not modelled here -- callers (the concurrent executor, tests)
drive the mechanism in whatever order their schedule dictates, and the
manager guarantees the *semantics*: at most one child synchronizes, the
parent observes exactly one timeline, and everyone else's effects vanish.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import (
    AltBlockFailure,
    AltTimeout,
    ProcessStateError,
    TooLate,
)
from repro.pages.address_space import AddressSpace
from repro.pages.store import PageStore
from repro.process.process import ProcessState, SimProcess

StatusListener = Callable[[int, bool], None]
"""Called as ``listener(pid, completed)`` when a process reaches a final
status; this is the hook the predicate/IPC layers use for resolution."""


class EliminationMode(enum.Enum):
    """When losing siblings are terminated (section 3.2.1)."""

    SYNCHRONOUS = "synchronous"
    """Siblings are deleted before execution resumes in the parent."""

    ASYNCHRONOUS = "asynchronous"
    """Deletion happens at some time after ``alt_wait`` resumes; the paper
    suspects this 'will give better execution-time performance ... at the
    expense of resource utilization measures such as throughput'."""


@dataclass
class AltGroup:
    """Bookkeeping for one executed alternative block."""

    group_id: int
    parent_pid: int
    child_pids: List[int]
    winner_pid: Optional[int] = None
    failed_pids: List[int] = field(default_factory=list)
    pending_elimination: List[int] = field(default_factory=list)
    closed: bool = False
    """Set once the parent's ``alt_wait`` has concluded the block."""

    @property
    def all_failed(self) -> bool:
        """True when every alternative aborted without synchronizing."""
        return (
            self.winner_pid is None
            and len(self.failed_pids) == len(self.child_pids)
        )

    @property
    def decided(self) -> bool:
        """True once a winner exists or all alternatives failed."""
        return self.winner_pid is not None or self.all_failed


class ProcessManager:
    """The process-management component of the simulated kernel."""

    def __init__(self, store: Optional[PageStore] = None) -> None:
        self.store = store if store is not None else PageStore()
        self._pids = itertools.count(1)
        self._group_ids = itertools.count(1)
        self.processes: Dict[int, SimProcess] = {}
        self.groups: Dict[int, AltGroup] = {}
        self._listeners: List[StatusListener] = []
        self._elimination_hooks: Dict[int, Callable[[], None]] = {}
        # Overhead counters (inputs to the cost model).
        self.forks_performed = 0
        self.kills_issued = 0
        self.syncs_performed = 0

    # ------------------------------------------------------------------
    # process creation

    def create_initial(self, space_size: int = 64 * 1024) -> SimProcess:
        """Create a root process with a fresh address space."""
        space = AddressSpace(self.store, space_size)
        space.table.clear_dirty()
        process = SimProcess(pid=self.allocate_pid(), space=space)
        self.processes[process.pid] = process
        return process

    def allocate_pid(self) -> int:
        """Hand out a fresh, never-used pid."""
        return next(self._pids)

    def register(self, process: SimProcess) -> SimProcess:
        """Adopt an externally built process (e.g. a restored checkpoint).

        The process's address space must live in this manager's store.
        """
        if process.space.store is not self.store:
            raise ProcessStateError(
                f"process {process.pid} was built on a different store"
            )
        if process.pid in self.processes:
            raise ProcessStateError(f"pid {process.pid} already registered")
        self.processes[process.pid] = process
        return process

    def on_status_change(self, listener: StatusListener) -> None:
        """Register for final-status notifications (predicate resolution)."""
        self._listeners.append(listener)

    def attach_elimination_hook(self, pid: int, hook: Callable[[], None]) -> None:
        """Deliver the termination instruction for ``pid`` through ``hook``.

        The concurrent executor registers each racing child's cancellation
        token here; when the kernel actually eliminates the child (the
        section 3.2.1 kill, synchronous or asynchronous), the hook fires
        so a body still running under a real parallel backend stops at its
        next cooperative checkpoint instead of burning CPU to completion.
        """
        self._elimination_hooks[pid] = hook

    def detach_elimination_hook(self, pid: int) -> None:
        """Drop a hook that will never fire (e.g. the winner's)."""
        self._elimination_hooks.pop(pid, None)

    def _deliver_elimination(self, pid: int) -> None:
        hook = self._elimination_hooks.pop(pid, None)
        if hook is not None:
            hook()

    def _notify(self, pid: int, completed: bool) -> None:
        for listener in self._listeners:
            listener(pid, completed)

    # ------------------------------------------------------------------
    # alt_spawn

    def alt_spawn(self, parent: SimProcess, n: int) -> List[SimProcess]:
        """Spawn ``n`` mutually oblivious alternatives of ``parent``.

        Each child COW-inherits the parent's page map and receives the
        sibling-rivalry predicate of section 3.3: it assumes its own
        success and each sibling's failure, on top of the parent's own
        predicates.  The parent blocks (``WAITING``) until ``alt_wait``.
        """
        if n < 1:
            raise ValueError("alt_spawn needs at least one alternative")
        if parent.state != ProcessState.RUNNABLE:
            raise ProcessStateError(
                f"parent {parent.pid} is {parent.state.value}; cannot spawn"
            )
        group = AltGroup(
            group_id=next(self._group_ids),
            parent_pid=parent.pid,
            child_pids=[],
        )
        children: List[SimProcess] = []
        child_pids = [next(self._pids) for _ in range(n)]
        for index, pid in enumerate(child_pids, start=1):
            child_space = parent.space.fork()
            self.forks_performed += 1
            child = SimProcess(
                pid=pid,
                space=child_space,
                predicate=parent.predicate.child_predicate(pid, child_pids),
                parent_pid=parent.pid,
                alt_index=index,
                group_id=group.group_id,
                registers=dict(parent.registers),
            )
            self.processes[pid] = child
            group.child_pids.append(pid)
            children.append(child)
        self.groups[group.group_id] = group
        parent.transition(ProcessState.WAITING)
        return children

    # ------------------------------------------------------------------
    # child-side synchronization

    def alt_sync(self, child: SimProcess, guard_ok: bool = True) -> bool:
        """A child attempts the rendezvous at the end of its computation.

        Returns True when this child won.  A child arriving after a
        sibling already synchronized is told it is 'too late' and raises
        :class:`TooLate`; the caller should terminate it.  A child whose
        guard failed aborts without synchronizing and returns False.
        """
        if child.group_id is None:
            raise ProcessStateError(f"process {child.pid} is not an alternative")
        group = self.groups[child.group_id]
        if child.state != ProcessState.RUNNABLE:
            raise ProcessStateError(
                f"process {child.pid} is {child.state.value}; cannot sync"
            )
        if not guard_ok:
            self._abort_child(group, child)
            return False
        if group.winner_pid is not None:
            child.transition(ProcessState.ELIMINATED)
            child.space.release()
            self._notify(child.pid, False)
            raise TooLate(
                f"process {child.pid}: sibling {group.winner_pid} already "
                f"synchronized"
            )
        group.winner_pid = child.pid
        self.syncs_performed += 1
        return True

    def _abort_child(self, group: AltGroup, child: SimProcess) -> None:
        child.transition(ProcessState.FAILED)
        child.space.release()
        group.failed_pids.append(child.pid)
        self._notify(child.pid, False)

    def fail(self, child: SimProcess) -> None:
        """Explicitly abort a child (its guard or body failed)."""
        if child.group_id is None:
            raise ProcessStateError(f"process {child.pid} is not an alternative")
        group = self.groups[child.group_id]
        if child.state != ProcessState.RUNNABLE:
            raise ProcessStateError(
                f"process {child.pid} is {child.state.value}; cannot fail"
            )
        self._abort_child(group, child)

    # ------------------------------------------------------------------
    # parent-side wait

    def alt_wait(
        self,
        parent: SimProcess,
        timed_out: bool = False,
        elimination: EliminationMode = EliminationMode.SYNCHRONOUS,
    ) -> SimProcess:
        """Complete the rendezvous in the parent.

        Absorbs the winning child's state by atomically replacing the
        parent's page pointer with the child's, maintains the process id
        ('the flow of control through the child appears to have been
        seamless'), and eliminates the losing siblings.

        Raises :class:`AltBlockFailure` when every child aborted and
        :class:`AltTimeout` when the caller reports the timeout expired
        with no winner.
        """
        if parent.state != ProcessState.WAITING:
            raise ProcessStateError(
                f"process {parent.pid} is {parent.state.value}; not waiting"
            )
        group = self._group_of_parent(parent)
        if group.winner_pid is None:
            if group.all_failed:
                group.closed = True
                parent.transition(ProcessState.RUNNABLE)
                raise AltBlockFailure(
                    f"all {len(group.child_pids)} alternatives failed"
                )
            if timed_out:
                self._eliminate_losers(group, winner_pid=None)
                self._drain_pending(group)
                group.closed = True
                parent.transition(ProcessState.RUNNABLE)
                raise AltTimeout(
                    "alt_wait timed out with no successful alternative"
                )
            raise ProcessStateError(
                "alt_wait called before any child synchronized or failed; "
                "drive the children first"
            )
        winner = self.processes[group.winner_pid]
        parent.space.adopt(winner.space)
        parent.predicate = parent.predicate.resolve(winner.pid, True) \
            if parent.predicate.mentions(winner.pid) else parent.predicate
        winner.transition(ProcessState.SYNCED)
        self._notify(winner.pid, True)
        self._eliminate_losers(group, winner_pid=winner.pid)
        if elimination is EliminationMode.SYNCHRONOUS:
            self._drain_pending(group)
        group.closed = True
        parent.transition(ProcessState.RUNNABLE)
        return winner

    # ------------------------------------------------------------------
    # maximal-step commit (independence-engine fast path)

    def alt_step_commit(
        self,
        parent: SimProcess,
        committers: List[SimProcess],
        pages: Dict[int, List[int]],
    ) -> SimProcess:
        """Commit several provably page-disjoint alternatives as one step.

        ``committers`` lists the successful children in commit order: the
        first is the step's *primary* (the flow of control the parent
        appears to continue), and ``pages`` maps every other committer's
        pid to the virtual pages grafted from its space into the
        primary's.  The graft is the three-phase validate / snapshot /
        commit of :func:`repro.independence.commit.graft_step`: a
        :class:`~repro.errors.PageApplyError` leaves the kernel state
        completely untouched (parent still ``WAITING``, every child still
        ``RUNNABLE``), so the caller can fall back to the classic
        first-success rendezvous.

        After a successful graft every committer synchronizes (there is
        no loser among them -- the step is order-free), the parent adopts
        the primary's space, and any child that neither committed nor
        already reached a terminal state is eliminated.
        """
        from repro.independence.commit import graft_step

        if parent.state != ProcessState.WAITING:
            raise ProcessStateError(
                f"process {parent.pid} is {parent.state.value}; not waiting"
            )
        if len(committers) < 2:
            raise ValueError("a maximal step needs at least two committers")
        group = self._group_of_parent(parent)
        if group.winner_pid is not None:
            raise ProcessStateError(
                f"group {group.group_id} already synchronized "
                f"(winner {group.winner_pid})"
            )
        for child in committers:
            if child.group_id != group.group_id:
                raise ProcessStateError(
                    f"process {child.pid} is not an alternative of "
                    f"group {group.group_id}"
                )
            if child.state != ProcessState.RUNNABLE:
                raise ProcessStateError(
                    f"process {child.pid} is {child.state.value}; "
                    "cannot commit"
                )
        primary, secondaries = committers[0], committers[1:]
        # May raise PageApplyError with every space intact (validation)
        # or the primary rolled back (commit failure) -- either way no
        # kernel state has changed yet and the classic path still works.
        graft_step(
            primary.space,
            [(child.space, pages.get(child.pid, ())) for child in secondaries],
        )
        group.winner_pid = primary.pid
        self.syncs_performed += len(committers)
        parent.space.adopt(primary.space)
        for child in committers:
            if parent.predicate.mentions(child.pid):
                parent.predicate = parent.predicate.resolve(child.pid, True)
            child.transition(ProcessState.SYNCED)
            self._notify(child.pid, True)
        for child in secondaries:
            child.space.release()
        self._eliminate_losers(group, winner_pid=primary.pid)
        self._drain_pending(group)
        group.closed = True
        parent.transition(ProcessState.RUNNABLE)
        return primary

    def _group_of_parent(self, parent: SimProcess) -> AltGroup:
        candidates = [
            g
            for g in self.groups.values()
            if g.parent_pid == parent.pid and not g.closed
        ]
        if not candidates:
            raise ProcessStateError(
                f"process {parent.pid} has no open alternative group"
            )
        return candidates[-1]

    def _eliminate_losers(self, group: AltGroup, winner_pid: Optional[int]) -> None:
        for pid in group.child_pids:
            process = self.processes[pid]
            if pid == winner_pid or process.is_terminal:
                continue
            group.pending_elimination.append(pid)

    def _drain_pending(self, group: AltGroup) -> int:
        """Actually terminate siblings queued for elimination."""
        drained = 0
        for pid in group.pending_elimination:
            process = self.processes[pid]
            self._deliver_elimination(pid)
            if process.is_terminal:
                continue
            process.transition(ProcessState.ELIMINATED)
            process.space.release()
            self.kills_issued += 1
            self._notify(pid, False)
            drained += 1
        group.pending_elimination = []
        return drained

    def drain_eliminations(self, group_id: int) -> int:
        """Perform deferred (asynchronous) sibling elimination."""
        return self._drain_pending(self.groups[group_id])

    # ------------------------------------------------------------------
    # normal exit

    def exit(self, process: SimProcess, notify: bool = True) -> None:
        """Terminate a non-alternative process normally.

        ``notify=False`` suppresses the status broadcast -- used by
        process migration, where the process has not *completed*, it has
        moved: its predicates must stay unresolved.
        """
        process.transition(ProcessState.EXITED)
        process.space.release()
        if notify:
            self._notify(process.pid, True)
