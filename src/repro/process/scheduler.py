"""Processor-sharing race scheduler.

Section 4.2 distinguishes *real* concurrency (one processor per
alternative) from *virtual* concurrency ('some sharing of hardware, for
example through multiprocessing').  When ``C_best`` shares CPUs with its
siblings, 'C_j's runtime must be added to the runtime overhead of C_best'.

:class:`ProcessorSharing` is a deterministic fluid model of that effect:
``cpus`` processors are shared equally among the active jobs, so with ``M``
active jobs each progresses at rate ``min(1, cpus / M)``.  It exposes the
two quantities the analysis needs -- per-job completion times and per-job
CPU actually consumed (the wasted-work / throughput cost of speculation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

_EPS = 1e-12


@dataclass
class Job:
    """One schedulable computation in the race."""

    job_id: Hashable
    arrival: float
    demand: float
    remaining: float = field(init=False)
    consumed: float = 0.0
    completed_at: Optional[float] = None
    cancelled_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival time cannot be negative")
        if self.demand < 0:
            raise ValueError("CPU demand cannot be negative")
        self.remaining = self.demand

    @property
    def finished(self) -> bool:
        """Completed or cancelled."""
        return self.completed_at is not None or self.cancelled_at is not None


class ProcessorSharing:
    """Deterministic egalitarian processor-sharing simulator."""

    def __init__(self, cpus: int) -> None:
        if cpus < 1:
            raise ValueError("need at least one CPU")
        self.cpus = cpus
        self.now = 0.0
        self._jobs: Dict[Hashable, Job] = {}

    # ------------------------------------------------------------------

    def add(self, job_id: Hashable, arrival: float, demand: float) -> Job:
        """Register a job arriving at ``arrival`` needing ``demand`` CPU-s."""
        if job_id in self._jobs:
            raise ValueError(f"duplicate job id {job_id!r}")
        if arrival < self.now - _EPS:
            raise ValueError("cannot add a job in the simulated past")
        job = Job(job_id, arrival, demand)
        self._jobs[job_id] = job
        return job

    def job(self, job_id: Hashable) -> Job:
        """Look up a job by id."""
        return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        """All jobs in insertion order."""
        return list(self._jobs.values())

    def cancel(self, job_id: Hashable) -> None:
        """Terminate a job at the current time (sibling elimination)."""
        job = self._jobs[job_id]
        if not job.finished:
            job.cancelled_at = self.now

    def _active(self) -> List[Job]:
        return [
            j
            for j in self._jobs.values()
            if not j.finished and j.arrival <= self.now + _EPS
        ]

    def _next_arrival(self) -> Optional[float]:
        future = [
            j.arrival
            for j in self._jobs.values()
            if not j.finished and j.arrival > self.now + _EPS
        ]
        return min(future) if future else None

    # ------------------------------------------------------------------

    def step_to_next_completion(self) -> Optional[Tuple[float, Hashable]]:
        """Advance until some job completes; return ``(time, job_id)``.

        Returns ``None`` when no live job remains.  Jobs with zero demand
        complete the instant they arrive.
        """
        while True:
            active = self._active()
            if not active:
                next_arrival = self._next_arrival()
                if next_arrival is None:
                    return None
                self.now = next_arrival
                continue
            # Zero-demand jobs complete immediately.
            for job in active:
                if job.remaining <= _EPS:
                    job.remaining = 0.0
                    job.completed_at = self.now
                    return (self.now, job.job_id)
            rate = min(1.0, self.cpus / len(active))
            time_to_done = min(job.remaining / rate for job in active)
            next_arrival = self._next_arrival()
            horizon = self.now + time_to_done
            if next_arrival is not None and next_arrival < horizon - _EPS:
                dt = next_arrival - self.now
                self._consume(active, rate, dt)
                self.now = next_arrival
                continue
            self._consume(active, rate, time_to_done)
            self.now = horizon
            for job in active:
                if job.remaining <= _EPS:
                    job.remaining = 0.0
                    job.completed_at = self.now
                    return (self.now, job.job_id)

    def advance_to(self, when: float) -> None:
        """Consume work up to absolute time ``when`` without stopping at
        completions.  Used to account for losers that keep burning CPU
        until their (staggered) termination instructions land."""
        if when < self.now - _EPS:
            raise ValueError("cannot advance into the past")
        while self.now < when - _EPS:
            active = self._active()
            if not active:
                next_arrival = self._next_arrival()
                if next_arrival is None or next_arrival > when:
                    self.now = when
                    return
                self.now = next_arrival
                continue
            rate = min(1.0, self.cpus / len(active))
            time_to_done = min(job.remaining / rate for job in active)
            next_arrival = self._next_arrival()
            horizon = min(
                when,
                self.now + time_to_done,
                next_arrival if next_arrival is not None else float("inf"),
            )
            dt = horizon - self.now
            self._consume(active, rate, dt)
            self.now = horizon
            for job in active:
                if job.remaining <= _EPS and job.completed_at is None:
                    job.remaining = 0.0
                    job.completed_at = self.now

    def run_to_completion(self) -> Dict[Hashable, float]:
        """Run every remaining job; return completion times by id."""
        while self.step_to_next_completion() is not None:
            pass
        return {
            j.job_id: j.completed_at
            for j in self._jobs.values()
            if j.completed_at is not None
        }

    @staticmethod
    def _consume(active: List[Job], rate: float, dt: float) -> None:
        for job in active:
            work = rate * dt
            job.remaining = max(0.0, job.remaining - work)
            job.consumed += work

    # ------------------------------------------------------------------
    # accounting

    def total_consumed(self) -> float:
        """CPU-seconds consumed by all jobs so far."""
        return sum(j.consumed for j in self._jobs.values())

    def wasted_work(self, winner_id: Hashable) -> float:
        """CPU-seconds consumed by everyone except ``winner_id``.

        This is the throughput price of speculation (section 4.1 item 3).
        """
        return sum(
            j.consumed for j in self._jobs.values() if j.job_id != winner_id
        )
