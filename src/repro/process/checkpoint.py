"""Whole-process checkpoint/restart.

The paper's unmodified-kernel ``rfork()`` (section 4.4, footnote 5) works
'by dumping the state of the process into a file in such a way that the
file is executable; a bootstrapping routine restores the registers and data
segments and returns control to the caller of the checkpoint routine'.

:func:`checkpoint_process` serializes a :class:`SimProcess` -- every mapped
page plus the register file and predicate -- into an opaque byte image, and
:func:`restore_process` reconstitutes it, possibly in a different
:class:`~repro.pages.PageStore` (i.e., on a different simulated node).  The
image size is the dominant cost driver of the remote fork, exactly as in
the paper ('the major cost was creating a checkpoint of the process in its
entirety').
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Optional

from repro.errors import CheckpointError
from repro.pages.address_space import AddressSpace
from repro.pages.store import PageStore
from repro.pages.table import PageTable
from repro.predicates.predicate import Predicate
from repro.process.process import ProcessState, SimProcess

_MAGIC = b"RPCK1"


@dataclass(frozen=True)
class Checkpoint:
    """An opaque, shippable process image."""

    image: bytes

    @property
    def size(self) -> int:
        """Image size in bytes (drives checkpoint/transfer/restore cost)."""
        return len(self.image)


def checkpoint_process(process: SimProcess) -> Checkpoint:
    """Dump ``process`` in its entirety into a byte image.

    A return value distinguishes the checkpoint from the restored copy:
    the restored process carries ``registers['__restored__'] = True``.
    """
    if process.is_terminal:
        raise CheckpointError(
            f"cannot checkpoint terminal process {process.pid} "
            f"({process.state.value})"
        )
    pages = {
        vpn: process.space.table.read_page(vpn)
        for vpn in process.space.table.mapped_pages()
    }
    payload = {
        "pid": process.pid,
        "size": process.space.size,
        "page_size": process.space.page_size,
        "pages": pages,
        "registers": dict(process.registers),
        "predicate_must": sorted(process.predicate.must),
        "predicate_cannot": sorted(process.predicate.cannot),
        "alt_index": process.alt_index,
    }
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    # The paper's rfork dumps the process 'in its entirety': pad the image
    # to at least the full address-space size so that shared zero pages
    # (which pickle would otherwise deduplicate) are charged for honestly.
    header = len(blob).to_bytes(8, "big")
    image = _MAGIC + header + blob
    if len(image) < process.space.size:
        image += bytes(process.space.size - len(image))
    return Checkpoint(image=image)


def restore_process(
    checkpoint: Checkpoint,
    store: PageStore,
    pid: Optional[int] = None,
) -> SimProcess:
    """Reconstitute a checkpointed process inside ``store``.

    ``pid`` defaults to the checkpointed pid; pass a fresh one when the
    original is still alive on another node.
    """
    if not checkpoint.image.startswith(_MAGIC):
        raise CheckpointError("not a process checkpoint image")
    try:
        offset = len(_MAGIC)
        blob_len = int.from_bytes(checkpoint.image[offset:offset + 8], "big")
        blob = checkpoint.image[offset + 8:offset + 8 + blob_len]
        payload = pickle.loads(blob)
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint image: {exc}") from exc
    if payload["page_size"] != store.page_size:
        raise CheckpointError(
            f"checkpoint page size {payload['page_size']} does not match "
            f"target store page size {store.page_size}"
        )
    table = PageTable(store)
    for vpn, data in payload["pages"].items():
        table.map_page(vpn, data)
    table.clear_dirty()
    space = AddressSpace.__new__(AddressSpace)
    space.store = store
    space.size = payload["size"]
    space.page_size = payload["page_size"]
    space.table = table
    space._vars_cache = None
    registers = dict(payload["registers"])
    registers["__restored__"] = True
    return SimProcess(
        pid=pid if pid is not None else payload["pid"],
        space=space,
        predicate=Predicate.of(
            payload["predicate_must"], payload["predicate_cannot"]
        ),
        state=ProcessState.RUNNABLE,
        registers=registers,
        alt_index=payload["alt_index"],
    )
