"""Process management (paper section 3.2).

'Two primitives encapsulate the entire semantics of the process management
component': ``alt_spawn(n)`` creates the mutually oblivious alternatives as
COW children of the parent, and ``alt_wait(TIMEOUT)`` establishes 'a single
path through the tree of possible computations' by absorbing the first
successfully synchronizing child and eliminating its siblings.
"""

from repro.process.checkpoint import Checkpoint, checkpoint_process, restore_process
from repro.process.primitives import AltGroup, EliminationMode, ProcessManager
from repro.process.process import ProcessState, SimProcess
from repro.process.scheduler import Job, ProcessorSharing

__all__ = [
    "AltGroup",
    "Checkpoint",
    "EliminationMode",
    "Job",
    "ProcessManager",
    "ProcessorSharing",
    "ProcessState",
    "SimProcess",
    "checkpoint_process",
    "restore_process",
]
