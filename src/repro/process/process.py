"""Simulated processes.

A :class:`SimProcess` is 'an independently schedulable stream of
instructions ... associated with some unit of state, e.g., an address
space'.  Here the unit of state is a COW :class:`~repro.pages.AddressSpace`
plus a small register file (a dict), and the lifecycle states track the
alternative-execution protocol.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.pages.address_space import AddressSpace
from repro.predicates.predicate import Predicate


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    RUNNABLE = "runnable"
    """Created and eligible to run."""

    WAITING = "waiting"
    """Parent blocked in ``alt_wait`` ('the parent is constrained to remain
    blocked while the children are executing')."""

    SYNCED = "synced"
    """Child that won the rendezvous; its state was absorbed."""

    FAILED = "failed"
    """Child whose guard did not hold; it aborted without synchronizing."""

    ELIMINATED = "eliminated"
    """Losing sibling terminated by the scheduler."""

    EXITED = "exited"
    """Normal termination outside any alternative group."""


_TERMINAL = {
    ProcessState.SYNCED,
    ProcessState.FAILED,
    ProcessState.ELIMINATED,
    ProcessState.EXITED,
}


@dataclass
class SimProcess:
    """A simulated process: pid, address space, predicate, lifecycle."""

    pid: int
    space: AddressSpace
    predicate: Predicate = field(default_factory=Predicate.empty)
    parent_pid: Optional[int] = None
    state: ProcessState = ProcessState.RUNNABLE
    registers: Dict[str, Any] = field(default_factory=dict)
    alt_index: int = 0
    """Value ``alt_spawn`` returned in this process: 0 in the parent,
    1..n in the alternates."""

    group_id: Optional[int] = None
    """The alternative group this process belongs to (children only)."""

    cpu_consumed: float = 0.0
    """Seconds of simulated CPU charged to this process."""

    @property
    def is_terminal(self) -> bool:
        """True once the process can no longer run."""
        return self.state in _TERMINAL

    @property
    def is_alternative(self) -> bool:
        """True for a child spawned by ``alt_spawn``."""
        return self.alt_index > 0

    def transition(self, new_state: ProcessState) -> None:
        """Move to ``new_state``; terminal states are sticky."""
        from repro.errors import ProcessStateError

        if self.is_terminal and new_state != self.state:
            raise ProcessStateError(
                f"process {self.pid} is {self.state.value}; "
                f"cannot become {new_state.value}"
            )
        self.state = new_state

    def __repr__(self) -> str:
        return (
            f"SimProcess(pid={self.pid}, state={self.state.value}, "
            f"alt_index={self.alt_index}, predicate={self.predicate!r})"
        )
