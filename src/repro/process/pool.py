"""A pre-warmed world pool: parked worker processes that race arms on demand.

``alt_spawn`` pays a per-block *setup* cost (section 4.1 item 1): the
fork-based backend forks one fresh child per arm per race, and the fork
itself -- duplicating the parent, re-importing nothing but still paying
the OS -- dominates commit latency for small blocks.  A
:class:`WorldPool` amortizes it: N blank workers are forked **once** and
parked on a control pipe; each race *leases* a parked worker instead of
forking, hands it the arm (by value) plus a snapshot of the racing
world, and recycles the worker afterwards.

A lease travels over the worker's control pipe as a length-prefixed
pickle; the result comes back over the worker's *persistent* result pipe
in the exact wire format a freshly forked child would use
(:mod:`repro.core.backends.wire`), so the collecting loop cannot tell a
pooled arm from a forked one.  Dirty pages ride the same zero-copy
shared-memory slab fabric (:mod:`repro.pages.shm`) when available: the
parent writes the snapshot's non-zero pages into the arm's slab, the
worker rebuilds its private world from those slots, runs the body, and
overwrites the slots with its dirty pages -- page images cross the
control pipe only when shared memory is off.

Failure discipline matches direct forks exactly:

- ``SIGTERM`` on a leased worker cancels the arm's token (cooperative
  elimination); on a parked worker it is a no-op;
- ``SIGKILL`` (watchdog escalation, grace expiry) kills the worker; the
  parent sees EOF on the persistent pipe, concludes the arm abnormally,
  and the pool respawns a fresh worker at :meth:`finish`;
- a lease whose record never fully arrived leaves the worker's stream
  suspect: the worker is killed and respawned, never re-parked;
- every record echoes its lease's ``epoch``; a mismatched echo (a stale
  world's leftovers) poisons the worker instead of corrupting the race;
- the ``pool-worker-stale`` fault point injects exactly that staleness,
  and an injected or real lease failure falls back to a direct fork --
  pooling is a pure optimization, never a semantic dependency.

Workers are *not* in the backend's orphan registry: their lifetime
belongs to the pool, which kills and reaps every worker at
:meth:`shutdown` (``atexit``-registered).
"""

from __future__ import annotations

import atexit
import os
import pickle
import random
import signal
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.backends.base import CancellationToken
from repro.core.backends import wire
from repro.errors import Eliminated, FaultInjected
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.pages.address_space import AddressSpace
from repro.pages.shm import ShmSlab
from repro.pages.store import PageStore
from repro.resilience.injector import active as _active_injector

__all__ = ["Lease", "WorldPool", "default_pool", "shutdown_default_pool"]

_LEN = struct.Struct("!I")
"""Control-pipe framing: 4-byte length prefix, then a pickled message."""

DEFAULT_POOL_SIZE = 2


def _read_exact(fd: int, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` on EOF (parent died)."""
    chunks = []
    while count:
        try:
            chunk = os.read(fd, count)
        except InterruptedError:  # pragma: no cover - EINTR, retried
            continue
        if not chunk:
            return None
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


@dataclass
class Lease:
    """One arm handed to a parked worker (what ``run_arms`` tracks)."""

    index: int
    pid: int
    result_fd: int
    epoch: int


class _LeaseRecord:
    """Pool-internal ledger entry for one outstanding lease.

    Keyed by epoch (unique per grant), so settlement is immune to pid
    reuse: a respawned worker that happens to receive a recycled pid can
    never be parked or killed on behalf of a lease it was not granted.
    """

    __slots__ = ("worker", "granted_at")

    def __init__(self, worker: "_Worker", granted_at: float) -> None:
        self.worker = worker
        self.granted_at = granted_at


class _Worker:
    """Parent-side handle on one pooled process."""

    __slots__ = ("pid", "ctrl_fd", "result_fd", "busy")

    def __init__(self, pid: int, ctrl_fd: int, result_fd: int) -> None:
        self.pid = pid
        self.ctrl_fd = ctrl_fd
        self.result_fd = result_fd
        self.busy = False


class WorldPool:
    """N pre-forked workers, parked until a race leases them."""

    def __init__(self, size: int = DEFAULT_POOL_SIZE) -> None:
        if size < 1:
            raise ValueError("a world pool needs at least one worker")
        if not hasattr(os, "fork"):
            raise RuntimeError("WorldPool requires os.fork")
        self.size = size
        self._workers: List[_Worker] = []
        self._epoch = 0
        self._active: Dict[int, _LeaseRecord] = {}
        """Outstanding leases by epoch; the single source of settlement."""

        self._lock = threading.Lock()
        self._closed = False
        self.leases_granted = 0
        self.fallbacks = 0
        """Lease attempts that fell back to a direct fork (diagnostics)."""

        self.respawns = 0
        for _ in range(size):
            self._workers.append(self._spawn())
        atexit.register(self.shutdown)

    # ------------------------------------------------------------------
    # parent side

    def _spawn(self) -> _Worker:
        ctrl_read, ctrl_write = os.pipe()
        result_read, result_write = os.pipe()
        # Block SIGTERM across the fork: the mask is inherited, so a
        # SIGTERM aimed at the child before _worker_main installs its
        # handler stays pending instead of killing it with the default
        # disposition.  The child unblocks once the handler is in place.
        old_mask = signal.pthread_sigmask(
            signal.SIG_BLOCK, {signal.SIGTERM}
        )
        try:
            try:
                pid = os.fork()
            except BaseException:
                # fork failed (e.g. EAGAIN): don't leak the pipes.
                for fd in (ctrl_read, ctrl_write, result_read, result_write):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                raise
            if pid == 0:
                # In the child the mask intentionally stays blocked
                # until _worker_main installs its handler; os._exit
                # below means the outer finally never runs here.
                try:
                    os.close(ctrl_write)
                    os.close(result_read)
                    # Sibling workers' parent-end fds leak through the
                    # fork; drop them so a dead sibling's pipes
                    # actually EOF.
                    for sibling in self._workers:
                        for fd in (sibling.ctrl_fd, sibling.result_fd):
                            try:
                                os.close(fd)
                            except OSError:
                                pass
                    _worker_main(ctrl_read, result_write)
                finally:  # pragma: no cover - _worker_main never returns
                    os._exit(wire.EXIT_SHIP_FAILED)
            os.close(ctrl_read)
            os.close(result_write)
        finally:
            # Restore even when fork or the parent-side setup raises:
            # the calling thread must not keep SIGTERM blocked forever.
            signal.pthread_sigmask(signal.SIG_SETMASK, old_mask)
        return _Worker(pid, ctrl_write, result_read)

    def _discard(self, worker: _Worker) -> Optional[int]:
        """Kill, reap, and forget one worker; returns its wait status."""
        try:
            os.kill(worker.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        while True:
            try:
                _, status = os.waitpid(worker.pid, 0)
                break
            except InterruptedError:  # pragma: no cover - EINTR
                continue
            except ChildProcessError:
                status = None
                break
        for fd in (worker.ctrl_fd, worker.result_fd):
            try:
                os.close(fd)
            except OSError:
                pass
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
        return status

    def _replace(self, worker: _Worker) -> Optional[int]:
        status = self._discard(worker)
        if not self._closed:
            fresh = self._spawn()
            with self._lock:
                self._workers.append(fresh)
            self.respawns += 1
        return status

    def lease(
        self,
        task,
        start: float,
        pre_fault: Optional[Tuple] = None,
        ship_fault: Optional[Tuple] = None,
        slab: Optional[ShmSlab] = None,
    ) -> Optional[Lease]:
        """Hand one arm to a parked worker; ``None`` means fork instead.

        Falls back (returning ``None``) whenever pooling cannot be
        transparent: no free worker, an alternative that does not pickle,
        a context without a space, or an injected ``pool-worker-stale``
        fault.  The caller loses nothing but the amortization.
        """
        if self._closed:
            return None
        space = getattr(task.context, "space", None)
        if task.alternative is None or space is None:
            self.fallbacks += 1
            return None
        # Selection, the busy flip, the epoch draw, and the ledger entry
        # happen in ONE critical section: concurrent multi-block callers
        # can interleave here arbitrarily and still never double-lease a
        # worker or observe a granted-but-unregistered lease.
        with self._lock:
            worker = next((w for w in self._workers if not w.busy), None)
            if worker is None:
                self.fallbacks += 1
                return None
            worker.busy = True
            self._epoch += 1
            epoch = self._epoch
            self._active[epoch] = _LeaseRecord(worker, time.monotonic())
        injector = _active_injector()
        if (
            injector is not None
            and injector.draw("pool-worker-stale", task.index) is not None
        ):
            # The injected stale world: this worker's state is declared
            # unusable, so it is recycled and the arm forks directly.
            self._settle(epoch, recycle=True)
            self.fallbacks += 1
            return None
        snapshot_pairs: List[Tuple[int, int]] = []
        snapshot_inline: Dict[int, bytes] = {}
        zero_frame = space.store.zero_frame_id
        nonzero = [
            vpn
            for vpn in range(space.num_pages)
            if space.table.frame_of(vpn) != zero_frame
        ]
        if slab is not None and len(nonzero) <= slab.slots:
            # The arm's response slab doubles as the snapshot carrier:
            # the worker reads its world out of these slots, then
            # overwrites them with its dirty pages on the way back.
            for slot, vpn in enumerate(nonzero):
                slab.write_slot(slot, space.table.read_page_view(vpn))
                snapshot_pairs.append((vpn, slot))
        else:
            for vpn in nonzero:
                snapshot_inline[vpn] = space.table.read_page(vpn)
        message = {
            "kind": "lease",
            "epoch": epoch,
            "index": task.index,
            "name": task.name,
            "alternative": task.alternative,
            "rng_seed": task.rng_seed,
            "space_size": space.size,
            "page_size": space.page_size,
            "snapshot_pairs": snapshot_pairs,
            "snapshot_inline": snapshot_inline,
            "slab_name": None if slab is None else slab.name,
            "slab_slots": None if slab is None else slab.slots,
            "slab_slot_size": None if slab is None else slab.slot_size,
            "start": start,
            "pre_fault": pre_fault,
            "ship_fault": ship_fault,
            "trace_block": getattr(task.context, "trace_block", None),
        }
        try:
            blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            # Closures, local classes, live fds: not portable by value.
            self._settle(epoch, recycle=False)
            self.fallbacks += 1
            return None
        try:
            if not wire.write_all(worker.ctrl_fd, _LEN.pack(len(blob)) + blob):
                raise BrokenPipeError("pool worker hung up")
        except OSError:
            self._settle(epoch, recycle=True)
            self.fallbacks += 1
            return None
        self.leases_granted += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.POOL_LEASE,
                block=getattr(task.context, "trace_block", None),
                arm=task.index,
                name=task.name,
                worker_pid=worker.pid,
                epoch=epoch,
                snapshot_pages=len(nonzero),
                transport="shm" if slab is not None else "pipe",
            )
        return Lease(
            index=task.index,
            pid=worker.pid,
            result_fd=worker.result_fd,
            epoch=epoch,
        )

    def _settle(self, epoch: int, recycle: bool) -> Optional[int]:
        """Close out one lease exactly once; ``None`` if already settled.

        Popping the ledger entry under the lock makes settlement
        idempotent and race-free: of any number of concurrent callers
        (two executors finishing, a reclaim sweep, a fallback path in
        ``lease`` itself), exactly one wins the pop and touches the
        worker; the rest see an already-settled epoch and do nothing.
        """
        with self._lock:
            record = self._active.pop(epoch, None)
        if record is None:
            return None
        if recycle:
            return self._replace(record.worker)
        with self._lock:
            record.worker.busy = False
        return None

    def finish(
        self, leases: Dict[int, Lease], clean: Set[int]
    ) -> Dict[int, Optional[int]]:
        """Settle every lease after a race: park, or kill-and-respawn.

        ``clean`` holds the arm indexes whose records were fully absorbed
        (the worker's stream is positively known to be drained); any
        other leased worker is recycled, because bytes may still be in
        flight on its persistent pipe.  Returns wait statuses for workers
        that died, keyed by arm index, for exit-status annotation.

        Resolution goes through the epoch-keyed lease ledger, never
        through pids: a lease whose epoch was already settled (a reclaim
        sweep got there first, or ``finish`` ran twice) is skipped, and a
        respawned worker that inherited a recycled pid can never be
        confused with the lease's original worker.
        """
        statuses: Dict[int, Optional[int]] = {}
        for index, lease in leases.items():
            with self._lock:
                record = self._active.pop(lease.epoch, None)
            if record is None:
                continue  # already settled elsewhere: idempotent
            worker = record.worker
            alive = True
            try:
                done, status = os.waitpid(worker.pid, os.WNOHANG)
                if done != 0:
                    alive = False
                    statuses[index] = status
            except ChildProcessError:  # pragma: no cover - reaped elsewhere
                alive = False
                statuses[index] = None
            if not alive:
                for fd in (worker.ctrl_fd, worker.result_fd):
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                with self._lock:
                    if worker in self._workers:
                        self._workers.remove(worker)
                if not self._closed:
                    fresh = self._spawn()
                    with self._lock:
                        self._workers.append(fresh)
                    self.respawns += 1
                continue
            if index in clean:
                with self._lock:
                    worker.busy = False
            else:
                statuses.setdefault(index, self._replace(worker))
        return statuses

    def reclaim_abandoned(self, older_than: float = 30.0) -> int:
        """Recycle workers whose lease was never settled (caller crash).

        A caller that leased a worker and then died without reaching
        ``finish`` leaves the worker busy forever -- pool exhaustion by
        attrition.  This sweep recycles every lease older than
        ``older_than`` seconds; settlement idempotence (``_settle``)
        makes it safe to race against a late ``finish``.  Returns the
        number of workers reclaimed.
        """
        now = time.monotonic()
        with self._lock:
            stale = [
                epoch
                for epoch, record in self._active.items()
                if now - record.granted_at >= older_than
            ]
        reclaimed = 0
        for epoch in stale:
            with self._lock:
                record = self._active.pop(epoch, None)
            if record is None:
                continue  # a late finish won the settlement race
            self._replace(record.worker)
            reclaimed += 1
        return reclaimed

    @property
    def inflight(self) -> int:
        """Leases granted and not yet settled."""
        with self._lock:
            return len(self._active)

    @property
    def parked(self) -> int:
        """Workers currently free to take a lease."""
        with self._lock:
            return sum(1 for worker in self._workers if not worker.busy)

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [worker.pid for worker in self._workers]

    def shutdown(self) -> None:
        """Stop every worker (idempotent; also runs at interpreter exit)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            workers = list(self._workers)
            self._workers = []
            self._active.clear()
        goodbye = pickle.dumps({"kind": "exit"})
        for worker in workers:
            try:
                wire.write_all(worker.ctrl_fd, _LEN.pack(len(goodbye)) + goodbye)
            except OSError:
                pass
        deadline = time.monotonic() + 2.0
        pending = {worker.pid: worker for worker in workers}
        while pending and time.monotonic() < deadline:
            for pid in list(pending):
                try:
                    done, _ = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid
                if done != 0:
                    del pending[pid]
            if pending:
                time.sleep(0.01)
        for pid, worker in pending.items():
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            try:
                os.waitpid(pid, 0)
            except (ChildProcessError, InterruptedError):
                pass
        for worker in workers:
            for fd in (worker.ctrl_fd, worker.result_fd):
                try:
                    os.close(fd)
                except OSError:
                    pass

    def __repr__(self) -> str:
        return (
            f"WorldPool(size={self.size}, parked={self.parked}, "
            f"leases={self.leases_granted}, respawns={self.respawns})"
        )


# ----------------------------------------------------------------------
# worker side (runs in the forked pool process; exits via os._exit only)


def _worker_main(ctrl_fd: int, result_fd: int) -> None:
    current: Dict[str, Optional[CancellationToken]] = {"token": None}

    def on_sigterm(signum, frame):
        token = current["token"]
        if token is not None:
            token.cancel()

    signal.signal(signal.SIGTERM, on_sigterm)
    # The parent blocked SIGTERM around the fork; any signal that raced
    # the spawn is delivered here, to the real handler, not the default.
    signal.pthread_sigmask(signal.SIG_UNBLOCK, {signal.SIGTERM})
    while True:
        header = _read_exact(ctrl_fd, _LEN.size)
        if header is None:
            os._exit(0)  # parent is gone; nothing left to serve
        blob = _read_exact(ctrl_fd, _LEN.unpack(header)[0])
        if blob is None:
            os._exit(0)
        try:
            message = pickle.loads(blob)
        except Exception:  # pragma: no cover - garbled control stream
            os._exit(wire.EXIT_SHIP_FAILED)
        if message.get("kind") == "exit":
            os._exit(0)
        _serve_lease(message, result_fd, current)


def _serve_lease(
    message: dict, result_fd: int, current: dict
) -> None:
    """Run one leased arm and ship its record; may never return (faults)."""
    from repro.core.alternative import AltContext
    from repro.core.backends.process import build_result_record
    from repro.core.sequential import _run_body

    index = message["index"]
    epoch = message["epoch"]
    start = message["start"]
    pre_fault = message["pre_fault"]
    ship_fault = message["ship_fault"]
    tracer = _active_tracer()
    trace_mark = tracer.mark()
    began = time.perf_counter() - start
    abnormal = False
    space = None
    slab: Optional[ShmSlab] = None
    try:
        if pre_fault is not None:
            kind, duration, fault_detail = pre_fault
            if kind == "sigkill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif kind == "hang":
                # A wedged world: ignore the cooperative kill, stall, and
                # die -- the parent's escalation (or this exit) ends it.
                signal.signal(signal.SIGTERM, signal.SIG_IGN)
                time.sleep(duration)
                os._exit(wire.EXIT_HANG)
            elif kind == "raise":
                raise FaultInjected(fault_detail)
        # Rebuild the racing world from the lease's snapshot: a fresh
        # store, the snapshot's non-zero pages, and a clean dirty set so
        # shipback carries exactly what the body writes.
        store = PageStore(page_size=message["page_size"])
        space = AddressSpace(store, message["space_size"])
        if message["slab_name"] is not None:
            slab = ShmSlab.attach(
                message["slab_name"],
                message["slab_slots"],
                message["slab_slot_size"],
            )
        for vpn, slot in message["snapshot_pairs"]:
            space.table.map_page(vpn, slab.read_slot(slot))
        for vpn, data in message["snapshot_inline"].items():
            space.table.map_page(vpn, data)
        space.table.clear_dirty()
        token = CancellationToken()
        current["token"] = token
        context = AltContext(
            space,
            rng=random.Random(message["rng_seed"]),
            alt_index=index + 1,
            name=message["name"],
            process=None,
            token=token,
        )
        context.trace_block = message["trace_block"]
        succeeded, value, detail = _run_body(message["alternative"], context)
        cancelled = False
    except Eliminated as exc:
        succeeded, value, detail, cancelled = False, None, str(exc), True
    except BaseException as exc:
        succeeded, value, detail, cancelled = False, None, repr(exc), False
        abnormal = True
    finally:
        current["token"] = None
    finished = time.perf_counter() - start
    record = build_result_record(
        index, space, succeeded, value, detail, cancelled, abnormal,
        began, finished, slab=slab,
    )
    record["pool_epoch"] = epoch
    if tracer.enabled:
        record["trace"] = tracer.events_since(trace_mark)
    try:
        exit_code = wire.write_record(result_fd, record, ship_fault)
    except BaseException:
        os._exit(wire.EXIT_SHIP_FAILED)
    if ship_fault is not None or exit_code == wire.EXIT_TRUNCATED:
        # A ship fault leaves this worker's persistent stream unusable
        # (dangling or mangled bytes): die like a forked child would and
        # let the pool respawn a clean replacement.
        os._exit(exit_code)
    if slab is not None:
        slab.dispose()


# ----------------------------------------------------------------------
# the process-wide default pool (the REPRO_WORLD_POOL=1 path)

_default_pool: Optional[WorldPool] = None
_default_lock = threading.Lock()


def default_pool(size: int = DEFAULT_POOL_SIZE) -> WorldPool:
    """The lazily created process-wide pool (one per interpreter)."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool._closed:
            _default_pool = WorldPool(size)
        return _default_pool


def shutdown_default_pool() -> None:
    """Tear down the process-wide pool (tests call this to leave no
    children behind)."""
    global _default_pool
    with _default_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None:
        pool.shutdown()
