"""Declarative chaos scenarios for the simulated network.

A :class:`NetFaultPlan` names, in one plain dataclass, how hostile the
wire should be: per-transmit loss/duplication/reordering probabilities, a
latency-spike rate, timed partitions, and remote worker crashes.  The
plan compiles into ordinary :class:`~repro.resilience.FaultRule` rows
over the ``net-*`` fault points, so every chaos decision flows through
the same seeded, keyed-RNG :class:`~repro.resilience.FaultInjector` the
backends already consult -- a chaos run is exactly as replayable as a
PR 2 fault-injection run.

:data:`CHAOS_SCENARIOS` is the closed scenario vocabulary the CI
``chaos-matrix`` job and the distributed soak test iterate: each named
scenario must leave a distributed alternative block observably
equivalent to a serial replay of the same block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.resilience.injector import FaultInjector, FaultRule


@dataclass(frozen=True)
class NetFaultPlan:
    """One declarative chaos scenario over the network's links.

    Probabilities are per consultation (per transmitted message for the
    wire faults, per spawned remote arm for ``worker_crash``).  ``links``
    restricts the wire faults to specific link keys (``"a|b"``, endpoint
    names sorted); ``None`` afflicts every link.
    """

    loss: float = 0.0
    """Per-message drop probability (``net-drop``)."""

    duplication: float = 0.0
    """Per-message duplicate-delivery probability (``net-dup``)."""

    reorder: float = 0.0
    """Per-message probability of being delayed past later traffic."""

    delay: float = 0.0
    """Per-message latency-spike probability (``net-delay``)."""

    delay_seconds: float = 0.05
    """Extra one-way latency a spiked delivery pays."""

    partition: float = 0.0
    """Per-transmit probability that a timed partition opens."""

    partition_seconds: float = 0.25
    """How long an injected partition lasts (simulated seconds)."""

    partition_times: Optional[int] = 1
    """How many partitions one link may suffer (``None`` = unlimited)."""

    worker_crash: float = 0.0
    """Per-arm probability that the remote worker dies mid-body."""

    crash_after_seconds: float = 0.01
    """How long after its arm starts a crashed worker survives."""

    links: Optional[FrozenSet[str]] = None

    def rules(self) -> List[FaultRule]:
        """Compile the plan into injector rules (``times=None`` wire
        faults: chaos does not exhaust)."""
        out: List[FaultRule] = []
        if self.loss:
            out.append(FaultRule(
                "net-drop", arms=self.links, probability=self.loss,
                times=None, detail="chaos: message lost",
            ))
        if self.duplication:
            out.append(FaultRule(
                "net-dup", arms=self.links, probability=self.duplication,
                times=None, detail="chaos: message duplicated",
            ))
        if self.reorder:
            out.append(FaultRule(
                "net-reorder", arms=self.links, probability=self.reorder,
                times=None, detail="chaos: message reordered",
            ))
        if self.delay:
            out.append(FaultRule(
                "net-delay", arms=self.links, probability=self.delay,
                times=None, duration=self.delay_seconds,
                detail="chaos: latency spike",
            ))
        if self.partition:
            out.append(FaultRule(
                "net-partition", arms=self.links, probability=self.partition,
                times=self.partition_times, duration=self.partition_seconds,
                detail="chaos: timed partition",
            ))
        if self.worker_crash:
            out.append(FaultRule(
                "worker-crash", probability=self.worker_crash, times=1,
                duration=self.crash_after_seconds,
                detail="chaos: worker died mid-arm",
            ))
        return out

    def injector(self, seed: int = 0) -> FaultInjector:
        """A fresh seeded injector armed with this plan's rules."""
        return FaultInjector(seed=seed, rules=self.rules())


#: The canonical chaos matrix: every scenario the CI job soaks.  Rates
#: are deliberately violent (well above production loss rates) so every
#: recovery path fires within a short simulated run.
CHAOS_SCENARIOS: Dict[str, NetFaultPlan] = {
    "loss": NetFaultPlan(loss=0.25),
    "dup": NetFaultPlan(duplication=0.35, loss=0.05),
    "partition": NetFaultPlan(partition=0.5, partition_seconds=0.3),
    "worker-crash": NetFaultPlan(worker_crash=0.9, crash_after_seconds=0.02),
}


def chaos_injector(scenario: str, seed: int = 0) -> FaultInjector:
    """The injector for one named scenario of :data:`CHAOS_SCENARIOS`."""
    try:
        plan = CHAOS_SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; "
            f"expected one of {', '.join(sorted(CHAOS_SCENARIOS))}"
        ) from None
    return plan.injector(seed=seed)


def scenario_names() -> Iterable[str]:
    """Stable iteration order for parametrized suites."""
    return tuple(CHAOS_SCENARIOS)
