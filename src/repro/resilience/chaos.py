"""Declarative chaos scenarios for the simulated network.

A :class:`NetFaultPlan` names, in one plain dataclass, how hostile the
wire should be: per-transmit loss/duplication/reordering probabilities, a
latency-spike rate, timed partitions, and remote worker crashes.  The
plan compiles into ordinary :class:`~repro.resilience.FaultRule` rows
over the ``net-*`` fault points, so every chaos decision flows through
the same seeded, keyed-RNG :class:`~repro.resilience.FaultInjector` the
backends already consult -- a chaos run is exactly as replayable as a
PR 2 fault-injection run.

:data:`CHAOS_SCENARIOS` is the closed scenario vocabulary the CI
``chaos-matrix`` job and the distributed soak test iterate: each named
scenario must leave a distributed alternative block observably
equivalent to a serial replay of the same block.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.resilience.injector import FaultInjector, FaultRule


@dataclass(frozen=True)
class NetFaultPlan:
    """One declarative chaos scenario over the network's links.

    Probabilities are per consultation (per transmitted message for the
    wire faults, per spawned remote arm for ``worker_crash``).  ``links``
    restricts the wire faults to specific link keys (``"a|b"``, endpoint
    names sorted); ``None`` afflicts every link.
    """

    loss: float = 0.0
    """Per-message drop probability (``net-drop``)."""

    duplication: float = 0.0
    """Per-message duplicate-delivery probability (``net-dup``)."""

    reorder: float = 0.0
    """Per-message probability of being delayed past later traffic."""

    delay: float = 0.0
    """Per-message latency-spike probability (``net-delay``)."""

    delay_seconds: float = 0.05
    """Extra one-way latency a spiked delivery pays."""

    partition: float = 0.0
    """Per-transmit probability that a timed partition opens."""

    partition_seconds: float = 0.25
    """How long an injected partition lasts (simulated seconds)."""

    partition_times: Optional[int] = 1
    """How many partitions one link may suffer (``None`` = unlimited)."""

    worker_crash: float = 0.0
    """Per-arm probability that the remote worker dies mid-body."""

    crash_after_seconds: float = 0.01
    """How long after its arm starts a crashed worker survives."""

    links: Optional[FrozenSet[str]] = None

    def rules(self) -> List[FaultRule]:
        """Compile the plan into injector rules (``times=None`` wire
        faults: chaos does not exhaust)."""
        out: List[FaultRule] = []
        if self.loss:
            out.append(FaultRule(
                "net-drop", arms=self.links, probability=self.loss,
                times=None, detail="chaos: message lost",
            ))
        if self.duplication:
            out.append(FaultRule(
                "net-dup", arms=self.links, probability=self.duplication,
                times=None, detail="chaos: message duplicated",
            ))
        if self.reorder:
            out.append(FaultRule(
                "net-reorder", arms=self.links, probability=self.reorder,
                times=None, detail="chaos: message reordered",
            ))
        if self.delay:
            out.append(FaultRule(
                "net-delay", arms=self.links, probability=self.delay,
                times=None, duration=self.delay_seconds,
                detail="chaos: latency spike",
            ))
        if self.partition:
            out.append(FaultRule(
                "net-partition", arms=self.links, probability=self.partition,
                times=self.partition_times, duration=self.partition_seconds,
                detail="chaos: timed partition",
            ))
        if self.worker_crash:
            out.append(FaultRule(
                "worker-crash", probability=self.worker_crash, times=1,
                duration=self.crash_after_seconds,
                detail="chaos: worker died mid-arm",
            ))
        return out

    def injector(self, seed: int = 0) -> FaultInjector:
        """A fresh seeded injector armed with this plan's rules."""
        return FaultInjector(seed=seed, rules=self.rules())

    def wire(self, seed: int = 0) -> "WireImpairments":
        """Compile the plan for the *real* wire.

        The returned :class:`WireImpairments` makes one decision per
        framed record an impairment proxy forwards, with the same keyed
        derivation -- ``Random(f"{seed}:{point}:{link}:{call#}")`` -- the
        simulated :class:`~repro.net.network.FaultyLink` consults, so a
        chaos scenario replays the same drop/dup/delay pattern whether
        the frames cross a simulated link or a localhost socket.
        """
        return WireImpairments(self, seed=seed)


@dataclass
class WireDecision:
    """What one framed record suffers on its way through the proxy."""

    drop: bool = False
    duplicate: bool = False
    delay: float = 0.0
    """Extra seconds the proxy stalls before forwarding this frame."""

    hold: bool = False
    """Reorder: hold this frame and release it after the next one."""


class WireImpairments:
    """A :class:`NetFaultPlan` compiled into per-frame wire decisions.

    The impairment proxy consults :meth:`decide` once per complete frame
    it is about to forward on one link.  Decisions are drawn from keyed
    RNGs -- ``Random(f"{seed}:{point}:{link}:{n}")`` with ``n`` the
    per-``(point, link)`` consultation counter -- so a scenario's
    drop/dup/delay pattern is a pure function of the frame *ordinals* on
    each link, independent of wall-clock interleaving across links.

    Partitions are windows in real time: when the partition draw fires,
    the link goes dark for ``partition_seconds`` and every frame in the
    window (both directions) is silently dropped, exactly the simulated
    wire's "partitioned transmit is silent loss" semantics.  Counters
    (``drops``/``dups``/``delays``/``holds``/``partitions_opened``) are
    the proxy-side chaos accounting the tests assert against.
    """

    def __init__(
        self,
        plan: NetFaultPlan,
        seed: int = 0,
        clock=time.monotonic,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self._clock = clock
        self._lock = threading.Lock()
        self._calls: Dict[tuple, int] = {}
        self._partition_until: Dict[str, float] = {}
        self._partitions_used: Dict[str, int] = {}
        self.drops = 0
        self.dups = 0
        self.delays = 0
        self.holds = 0
        self.partitions_opened = 0

    def _afflicts(self, link: str) -> bool:
        return self.plan.links is None or link in self.plan.links

    def _fires(self, point: str, link: str, probability: float) -> bool:
        """One keyed draw for ``point`` on ``link`` (counter advances
        even for misses, like the injector's call numbering)."""
        if probability <= 0.0:
            return False
        key = (point, link)
        n = self._calls.get(key, 0)
        self._calls[key] = n + 1
        if probability >= 1.0:
            return True
        rng = random.Random(f"{self.seed}:{point}:{link}:{n}")
        return rng.random() < probability

    def partitioned(self, link: str, now: Optional[float] = None) -> bool:
        """Is ``link`` inside an open partition window right now?"""
        with self._lock:
            until = self._partition_until.get(link, 0.0)
        return (now if now is not None else self._clock()) < until

    def decide(self, link: str) -> WireDecision:
        """The fate of the next frame crossing ``link``."""
        now = self._clock()
        with self._lock:
            if not self._afflicts(link):
                return WireDecision()
            # An open partition swallows everything, both directions.
            if now < self._partition_until.get(link, 0.0):
                self.drops += 1
                return WireDecision(drop=True)
            if self.plan.partition and self._fires("net-partition", link,
                                                   self.plan.partition):
                used = self._partitions_used.get(link, 0)
                if (self.plan.partition_times is None
                        or used < self.plan.partition_times):
                    self._partitions_used[link] = used + 1
                    self._partition_until[link] = (
                        now + self.plan.partition_seconds
                    )
                    self.partitions_opened += 1
                    self.drops += 1  # this frame is the first casualty
                    return WireDecision(drop=True)
            if self.plan.loss and self._fires("net-drop", link,
                                              self.plan.loss):
                self.drops += 1
                return WireDecision(drop=True)
            decision = WireDecision()
            if self.plan.duplication and self._fires(
                    "net-dup", link, self.plan.duplication):
                self.dups += 1
                decision.duplicate = True
            if self.plan.reorder and self._fires(
                    "net-reorder", link, self.plan.reorder):
                self.holds += 1
                decision.hold = True
            if self.plan.delay and self._fires(
                    "net-delay", link, self.plan.delay):
                self.delays += 1
                decision.delay = self.plan.delay_seconds
            return decision


#: The canonical chaos matrix: every scenario the CI job soaks.  Rates
#: are deliberately violent (well above production loss rates) so every
#: recovery path fires within a short simulated run.
CHAOS_SCENARIOS: Dict[str, NetFaultPlan] = {
    "loss": NetFaultPlan(loss=0.25),
    "dup": NetFaultPlan(duplication=0.35, loss=0.05),
    "partition": NetFaultPlan(partition=0.5, partition_seconds=0.3),
    "worker-crash": NetFaultPlan(worker_crash=0.9, crash_after_seconds=0.02),
}


def chaos_injector(scenario: str, seed: int = 0) -> FaultInjector:
    """The injector for one named scenario of :data:`CHAOS_SCENARIOS`."""
    try:
        plan = CHAOS_SCENARIOS[scenario]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; "
            f"expected one of {', '.join(sorted(CHAOS_SCENARIOS))}"
        ) from None
    return plan.injector(seed=seed)


def scenario_names() -> Iterable[str]:
    """Stable iteration order for parametrized suites."""
    return tuple(CHAOS_SCENARIOS)
