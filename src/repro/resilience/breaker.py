"""A per-endpoint circuit breaker for flaky remote peers.

The cluster executor dials worker daemons on every shipment.  When an
endpoint is down, every attempt costs a full connect timeout -- and a
race under chaos can burn its whole budget re-dialling the same corpse.
A :class:`CircuitBreaker` is the standard cure, tuned for the cluster's
failure vocabulary:

- **closed** (the healthy state): calls flow; consecutive failures are
  counted, and a success resets the count;
- **open**: after ``fail_threshold`` consecutive failures the breaker
  trips (``breaker-open`` trace event) and :meth:`allow` answers
  ``False`` until ``cooldown`` elapses -- the rotation simply skips the
  endpoint instead of paying the timeout again;
- **half-open**: once the cooldown expires, exactly one probe is let
  through.  If it succeeds the breaker closes (``breaker-close``);
  if it fails the breaker re-opens with the cooldown scaled by
  ``backoff`` (capped at ``max_cooldown``), the same
  exponential-backoff shape the :class:`~repro.resilience.Supervisor`
  retries with.

The breaker never *decides* anything is dead -- that is the membership
table's job; it only rations connection attempts.  The two compose:
suspicion marks the endpoint undesirable, the breaker makes retrying it
cheap.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer

#: Breaker lifecycle states.
BREAKER_STATES = ("closed", "open", "half-open")


class CircuitBreaker:
    """Failure-rationing gate in front of one remote endpoint."""

    def __init__(
        self,
        name: str = "",
        fail_threshold: int = 3,
        cooldown: float = 0.5,
        backoff: float = 2.0,
        max_cooldown: float = 8.0,
        clock=time.monotonic,
    ) -> None:
        if fail_threshold < 1:
            raise ValueError("fail_threshold must be at least 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.name = name
        self.fail_threshold = fail_threshold
        self.base_cooldown = cooldown
        self.backoff = backoff
        self.max_cooldown = max_cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self.state = "closed"
        self.consecutive_failures = 0
        self.current_cooldown = cooldown
        self.open_until = 0.0
        self._probe_outstanding = False
        self.opened_count = 0
        self.closed_count = 0
        self.rejected = 0

    # ------------------------------------------------------------------

    def allow(self, now: Optional[float] = None) -> bool:
        """May the caller attempt this endpoint right now?

        Closed: always.  Open: not until the cooldown expires, at which
        point the breaker goes half-open and admits exactly one probe.
        Half-open: only while no probe is outstanding.
        """
        at = self._clock() if now is None else now
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if at < self.open_until:
                    self.rejected += 1
                    return False
                self.state = "half-open"
                self._probe_outstanding = True
                return True
            # half-open: one probe at a time
            if self._probe_outstanding:
                self.rejected += 1
                return False
            self._probe_outstanding = True
            return True

    def record_success(self, now: Optional[float] = None) -> None:
        """The endpoint answered: reset, closing the breaker if tripped."""
        with self._lock:
            was = self.state
            self.state = "closed"
            self.consecutive_failures = 0
            self.current_cooldown = self.base_cooldown
            self._probe_outstanding = False
        if was != "closed":
            self.closed_count += 1
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.BREAKER_CLOSE,
                    name=self.name,
                    attrs_from=was,
                    closed_count=self.closed_count,
                )

    def record_failure(
        self, now: Optional[float] = None, detail: str = ""
    ) -> bool:
        """A connect/ship attempt failed; returns True when this trips
        (or re-trips) the breaker open."""
        at = self._clock() if now is None else now
        tripped = False
        with self._lock:
            self.consecutive_failures += 1
            if self.state == "half-open":
                # The probe failed: back off harder before the next one.
                self.current_cooldown = min(
                    self.current_cooldown * self.backoff, self.max_cooldown
                )
                self.state = "open"
                self.open_until = at + self.current_cooldown
                self._probe_outstanding = False
                tripped = True
            elif (
                self.state == "closed"
                and self.consecutive_failures >= self.fail_threshold
            ):
                self.state = "open"
                self.open_until = at + self.current_cooldown
                tripped = True
        if tripped:
            self.opened_count += 1
            tracer = _active_tracer()
            if tracer.enabled:
                tracer.emit(
                    _ev.BREAKER_OPEN,
                    name=self.name,
                    failures=self.consecutive_failures,
                    cooldown_seconds=self.current_cooldown,
                    detail=detail,
                )
        return tripped

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, {self.state}, "
            f"failures={self.consecutive_failures}, "
            f"opened={self.opened_count})"
        )
