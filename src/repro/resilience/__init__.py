"""Fault injection and race supervision for the real backends.

Two halves:

- :mod:`repro.resilience.injector` -- a seedable :class:`FaultInjector`
  with named fault points (``arm-raise``, ``arm-hang``, ``arm-sigkill``,
  ``pipe-truncate``, ``record-corrupt``, ``slow-guard``,
  ``page-apply-fail``) consulted by the backends,
  ``AddressSpace.apply_pages``, and guard evaluation through a
  lightweight module registry, so every failure mode is reproducible;
- :mod:`repro.resilience.supervisor` -- the :class:`Supervisor` policy
  (per-arm watchdog deadlines, retry with exponential backoff and seeded
  jitter, graceful degradation to a serial replay) and the structured
  :class:`RaceAutopsy` every supervised race returns.

:mod:`repro.resilience.chaos` adds declarative :class:`NetFaultPlan`
scenarios over the ``net-*`` fault points (message loss, duplication,
reordering, latency spikes, timed partitions, worker crashes), compiled
into the same injector machinery; :data:`CHAOS_SCENARIOS` is the closed
matrix the chaos suite and CI soak.
"""

from repro.resilience.breaker import BREAKER_STATES, CircuitBreaker
from repro.resilience.chaos import (
    CHAOS_SCENARIOS,
    NetFaultPlan,
    WireDecision,
    WireImpairments,
    chaos_injector,
    scenario_names,
)
from repro.resilience.injector import (
    FAULT_POINTS,
    FaultInjector,
    FaultRule,
    active,
    injected,
    install,
    suppressed,
    uninstall,
)
from repro.resilience.supervisor import (
    ArmAutopsy,
    AttemptAutopsy,
    RaceAutopsy,
    Supervisor,
    Watchdog,
    classify_outcome,
)

__all__ = [
    "BREAKER_STATES",
    "CHAOS_SCENARIOS",
    "CircuitBreaker",
    "FAULT_POINTS",
    "ArmAutopsy",
    "AttemptAutopsy",
    "FaultInjector",
    "FaultRule",
    "NetFaultPlan",
    "RaceAutopsy",
    "Supervisor",
    "Watchdog",
    "WireDecision",
    "WireImpairments",
    "active",
    "chaos_injector",
    "classify_outcome",
    "injected",
    "install",
    "scenario_names",
    "suppressed",
    "uninstall",
]
