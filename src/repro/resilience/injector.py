"""Deterministic fault injection for the real execution backends.

A racing arm can die in ways the paper's happy-path race (section 3.2)
never discusses: the body raises, the child wedges and ignores the
termination instruction, the OS kills it outright, the result record is
truncated or corrupted on the pipe, a guard hangs, the page shipback
fails.  Each of those failure modes gets a *named fault point*; a
seedable :class:`FaultInjector` decides -- reproducibly -- whether the
fault fires at each consultation, so every failure mode has a
deterministic test.

Consulting sites (backends, ``_run_body``, ``AddressSpace.apply_pages``)
ask the module-level registry via :func:`active`; when no injector is
installed (the overwhelmingly common case) that is a single attribute
read.  Forked children inherit the installed injector through ``os.fork``
and consult their own per-arm counters, so parent/child divergence never
changes a decision: every draw is keyed on ``(point, arm, call#)`` and a
per-key RNG derived from the seed.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import FaultInjected

#: Every named fault point a consulting site may draw.
FAULT_POINTS = (
    "arm-raise",        # the arm's body raises an unexpected exception
    "arm-hang",         # the arm wedges, ignoring the termination instruction
    "arm-sigkill",      # the arm dies abruptly (SIGKILL in a forked child)
    "pipe-truncate",    # the child dies mid-shipback: a truncated record
    "record-corrupt",   # the result record's bytes are flipped on the wire
    "slow-guard",       # guard evaluation stalls
    "page-apply-fail",  # replaying shipped page images into the space fails
    "shm-attach-fail",  # a shared-memory slab cannot be mapped for an arm
    "pool-worker-stale",  # a pooled world's snapshot epoch is out of date
    "step-commit-fail",  # a maximal-step graft dies mid-commit (keyed by vpn)
    # -- the wire (section 4.1's distributed case under chaos) ---------
    "net-drop",         # a message is lost in flight
    "net-dup",          # a message is delivered more than once
    "net-reorder",      # a message is delayed past later traffic
    "net-delay",        # a latency spike on one delivery
    "net-partition",    # a timed partition opens on the link
    "worker-crash",     # a remote worker node dies mid-arm
)


@dataclass
class FaultRule:
    """One armed fault: where it fires, how often, and how hard.

    ``arms=None`` matches every arm; ``times=None`` never exhausts;
    ``on_calls`` restricts firing to specific 1-based consultations of the
    same ``(point, arm)`` key (so a rule can hit only the first attempt of
    a supervised retry loop, for example).
    """

    point: str
    arms: Optional[frozenset] = None
    """Arm keys this rule matches: integer arm indexes at the backend
    fault points, link keys (``"a|b"``) at the ``net-*`` points, channel
    keys at the IPC points.  ``None`` matches every key."""

    probability: float = 1.0
    times: Optional[int] = 1
    on_calls: Optional[frozenset] = None
    duration: float = 3600.0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; "
                f"expected one of {', '.join(FAULT_POINTS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.arms is not None:
            self.arms = frozenset(self.arms)
        if self.on_calls is not None:
            self.on_calls = frozenset(self.on_calls)

    def matches_arm(self, arm) -> bool:
        return self.arms is None or arm in self.arms


class FaultInjector:
    """Seeded, reproducible fault decisions over named fault points.

    >>> injector = FaultInjector(seed=7).arm_sigkill(arms=[0, 1])
    >>> injector.draw("arm-sigkill", arm=0) is not None
    True
    >>> injector.draw("arm-sigkill", arm=0) is None  # times=1 exhausted
    True
    """

    def __init__(self, seed: int = 0, rules: Iterator[FaultRule] = ()) -> None:
        self.seed = seed
        self.rules: List[FaultRule] = list(rules)
        self._lock = threading.Lock()
        self._calls: Dict[Tuple[str, Optional[int]], int] = {}
        self._fired_count: Dict[int, Dict[Optional[int], int]] = {}
        self.log: List[Tuple[str, Optional[int], int]] = []
        """Every firing, as ``(point, arm, call#)`` -- the autopsy's input."""

    # ------------------------------------------------------------------
    # rule construction (chainable)

    def add(self, point: str, **kwargs) -> "FaultInjector":
        """Arm a :class:`FaultRule`; returns ``self`` for chaining."""
        self.rules.append(FaultRule(point=point, **kwargs))
        return self

    def arm_raise(self, **kw) -> "FaultInjector":
        return self.add("arm-raise", **kw)

    def arm_hang(self, **kw) -> "FaultInjector":
        return self.add("arm-hang", **kw)

    def arm_sigkill(self, **kw) -> "FaultInjector":
        return self.add("arm-sigkill", **kw)

    def pipe_truncate(self, **kw) -> "FaultInjector":
        return self.add("pipe-truncate", **kw)

    def record_corrupt(self, **kw) -> "FaultInjector":
        return self.add("record-corrupt", **kw)

    def slow_guard(self, **kw) -> "FaultInjector":
        return self.add("slow-guard", **kw)

    def page_apply_fail(self, **kw) -> "FaultInjector":
        return self.add("page-apply-fail", **kw)

    def shm_attach_fail(self, **kw) -> "FaultInjector":
        return self.add("shm-attach-fail", **kw)

    def pool_worker_stale(self, **kw) -> "FaultInjector":
        return self.add("pool-worker-stale", **kw)

    def step_commit_fail(self, **kw) -> "FaultInjector":
        return self.add("step-commit-fail", **kw)

    def net_drop(self, **kw) -> "FaultInjector":
        return self.add("net-drop", **kw)

    def net_dup(self, **kw) -> "FaultInjector":
        return self.add("net-dup", **kw)

    def net_reorder(self, **kw) -> "FaultInjector":
        return self.add("net-reorder", **kw)

    def net_delay(self, **kw) -> "FaultInjector":
        return self.add("net-delay", **kw)

    def net_partition(self, **kw) -> "FaultInjector":
        return self.add("net-partition", **kw)

    def worker_crash(self, **kw) -> "FaultInjector":
        return self.add("worker-crash", **kw)

    # ------------------------------------------------------------------
    # drawing

    def _rng_for(self, point: str, arm, call: int) -> random.Random:
        # Keyed RNG: the decision depends only on (seed, point, arm, call),
        # never on draw order across arms/threads/processes.
        key = f"{self.seed}:{point}:{arm}:{call}"
        return random.Random(key)

    def draw(self, point: str, arm=None) -> Optional[FaultRule]:
        """Consult the injector at ``point`` for ``arm``.

        ``arm`` is any hashable draw key: an integer arm index at the
        backend points, a link or channel key at the ``net-*`` points.
        Returns the matching :class:`FaultRule` when the fault fires this
        call, ``None`` otherwise.  Thread-safe; counters are per
        ``(point, arm)``.

        When a draw observer is installed (the model checker's recording
        and replay hook, see :func:`set_draw_observer`), the naturally
        selected rule index is reported to it and the observer's answer
        becomes the effective outcome -- this is how a recorded schedule
        forces the same fault decisions regardless of RNG state.
        """
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        with self._lock:
            key = (point, arm)
            call = self._calls.get(key, 0) + 1
            self._calls[key] = call
            natural: Optional[int] = None
            for rule_id, rule in enumerate(self.rules):
                if rule.point != point or not rule.matches_arm(arm):
                    continue
                fired = self._fired_count.setdefault(rule_id, {})
                if rule.times is not None and fired.get(arm, 0) >= rule.times:
                    continue
                if rule.on_calls is not None and call not in rule.on_calls:
                    continue
                if rule.probability < 1.0:
                    if self._rng_for(point, arm, call).random() >= rule.probability:
                        continue
                natural = rule_id
                break
            effective = natural
            observer = _draw_observer
            if observer is not None:
                effective = observer(point, str(arm), call, natural)
                if effective is not None and not 0 <= effective < len(self.rules):
                    effective = natural
            if effective is None:
                return None
            chosen = self.rules[effective]
            fired = self._fired_count.setdefault(effective, {})
            fired[arm] = fired.get(arm, 0) + 1
            self.log.append((point, arm, call))
            return chosen

    def fire_or_raise(self, point: str, arm=None) -> None:
        """Draw ``point``; raise :class:`~repro.errors.FaultInjected` on fire."""
        rule = self.draw(point, arm)
        if rule is not None:
            raise FaultInjected(
                rule.detail or f"injected fault at {point} (arm {arm})"
            )

    def reset(self) -> None:
        """Forget all counters and the firing log (rules stay armed)."""
        with self._lock:
            self._calls.clear()
            self._fired_count.clear()
            del self.log[:]

    def __repr__(self) -> str:
        points = sorted({rule.point for rule in self.rules})
        return f"FaultInjector(seed={self.seed}, points={points})"


# ----------------------------------------------------------------------
# the module registry: what consulting sites actually poll

_registry_lock = threading.Lock()
_active: Optional[FaultInjector] = None
_suppressed = 0
_draw_observer = None


def set_draw_observer(observer) -> None:
    """Install (or clear, with ``None``) the process-wide draw observer.

    The observer is called as ``observer(point, key, call, natural)``
    under the injector's lock, where ``natural`` is the rule index that
    would fire this draw (``None`` for a clean draw); its return value
    replaces ``natural`` as the effective outcome.  Used by
    ``repro.check`` to record every fault decision and to force recorded
    decisions during replay.  Must be fast and must not re-enter the
    injector.
    """
    global _draw_observer
    with _registry_lock:
        _draw_observer = observer


def install(injector: FaultInjector) -> None:
    """Make ``injector`` the process-wide active injector."""
    global _active
    with _registry_lock:
        _active = injector


def uninstall() -> None:
    """Remove the active injector (consulting sites see ``None`` again)."""
    global _active
    with _registry_lock:
        _active = None


def active() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` when absent or suppressed."""
    if _suppressed:
        return None
    return _active


@contextmanager
def injected(injector: FaultInjector):
    """Install ``injector`` for the duration of the ``with`` block."""
    previous = _active
    install(injector)
    try:
        yield injector
    finally:
        with _registry_lock:
            globals()["_active"] = previous


@contextmanager
def suppressed():
    """Silence the active injector (the supervisor's clean serial replay)."""
    global _suppressed
    with _registry_lock:
        _suppressed += 1
    try:
        yield
    finally:
        with _registry_lock:
            _suppressed -= 1
