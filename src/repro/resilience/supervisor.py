"""Race supervision policy: deadlines, retries, degradation, autopsies.

The paper's race assumes arms either synchronize or fail their guard.  A
production executor must also survive arms that *die* -- crash, hang, or
corrupt their result on the way back -- without losing the parent's
world.  :class:`Supervisor` is the policy object
:class:`~repro.core.concurrent.ConcurrentExecutor` consults when a real
(parallel) backend races:

- a :class:`Watchdog` enforces a per-arm deadline, first delivering the
  cooperative termination instruction and then escalating to a forcible
  kill after a grace period;
- *retryable* failures (abnormal deaths: signals, corruption, hangs --
  never semantic guard failures) are retried with exponential backoff
  plus seeded jitter, each retry spawned as a fresh copy-on-write world
  so the block's mutual-exclusion semantics hold across attempts;
- when every real-backend arm died abnormally, the executor degrades to
  a :class:`~repro.core.backends.serial.SerialBackend` replay before
  conceding to the FAIL arm.

Whatever happens, the caller receives a structured :class:`RaceAutopsy`
-- per-arm outcome, delivered signal, retries, elapsed time, attempt by
attempt -- attached to the result on success and to the raised error on
failure, instead of a bare exception.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer


@dataclass
class ArmAutopsy:
    """How one arm ended, in one attempt of a supervised race."""

    index: int
    name: str
    outcome: str
    """One of 'won', 'failed', 'eliminated', 'crashed', 'killed', 'hung',
    'corrupt', 'timeout'."""

    detail: str = ""
    signal: Optional[int] = None
    """The OS signal that terminated the arm's process, when one did."""

    elapsed: float = 0.0
    abnormal: bool = False
    """True when the arm died rather than failed: these are the retryable
    outcomes."""


@dataclass
class AttemptAutopsy:
    """One attempt (initial race, retry, or degraded replay)."""

    number: int
    backend: str
    winner_index: Optional[int]
    timed_out: bool
    elapsed: float
    arms: List[ArmAutopsy] = field(default_factory=list)
    degraded: bool = False
    """True for the serial-replay attempt after every real arm died."""

    backoff_before: float = 0.0
    """Seconds the supervisor slept before launching this attempt."""

    @property
    def all_abnormal(self) -> bool:
        """Every arm of this attempt died abnormally (nothing semantic)."""
        return bool(self.arms) and all(arm.abnormal for arm in self.arms)

    @property
    def any_retryable(self) -> bool:
        return any(arm.abnormal for arm in self.arms)


@dataclass
class RaceAutopsy:
    """The full post-mortem of one supervised alternative block."""

    attempts: List[AttemptAutopsy] = field(default_factory=list)
    outcome: str = "unresolved"
    """'won' | 'degraded' (serial replay rescued the block) | 'failed' |
    'timeout'."""

    winner_index: Optional[int] = None
    total_elapsed: float = 0.0
    faults_fired: List[tuple] = field(default_factory=list)
    """``(point, arm, call#)`` firings copied from the active injector."""

    trace: object = None
    """A :class:`~repro.obs.BlockTrace` for the supervised block when
    tracing was on; ``None`` otherwise."""

    @property
    def degraded(self) -> bool:
        return any(attempt.degraded for attempt in self.attempts)

    @property
    def total_retries(self) -> int:
        """Attempts beyond the first, excluding the degraded replay."""
        return max(
            0, len([a for a in self.attempts if not a.degraded]) - 1
        )

    def arm_history(self, index: int) -> List[ArmAutopsy]:
        """Every attempt's record for arm ``index``, in attempt order."""
        return [
            arm
            for attempt in self.attempts
            for arm in attempt.arms
            if arm.index == index
        ]

    def summary(self) -> str:
        """A human-readable post-mortem, one line per attempt."""
        lines = [
            f"RaceAutopsy: outcome={self.outcome} "
            f"attempts={len(self.attempts)} retries={self.total_retries} "
            f"elapsed={self.total_elapsed:.3f}s"
        ]
        for attempt in self.attempts:
            kind = "replay" if attempt.degraded else f"attempt {attempt.number}"
            arms = ", ".join(
                f"{arm.name}={arm.outcome}"
                + (f"(sig{arm.signal})" if arm.signal else "")
                for arm in attempt.arms
            )
            lines.append(
                f"  {kind} [{attempt.backend}]"
                + (f" +{attempt.backoff_before:.3f}s backoff"
                   if attempt.backoff_before else "")
                + f": {arms or 'no arms ran'}"
            )
        return "\n".join(lines)


@dataclass
class Supervisor:
    """Supervision policy for races on real (parallel) backends."""

    arm_deadline: Optional[float] = None
    """Wall seconds each arm gets before the watchdog intervenes
    (``None`` disables the watchdog)."""

    kill_grace: float = 1.0
    """Seconds between the watchdog's cooperative termination and its
    forcible kill."""

    max_retries: int = 1
    """Extra full-race attempts granted when an arm died abnormally."""

    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    jitter: float = 0.5
    """Fraction of the backoff randomized (0 = deterministic delays)."""

    degrade_to_serial: bool = True
    """After the last retry, replay the block on a ``SerialBackend`` when
    every real arm died abnormally (the generalized-recovery-block move:
    give the arms one clean, ordered chance before the FAIL arm)."""

    clean_replay: bool = True
    """Suppress the active fault injector during the degraded replay."""

    seed: int = 0
    """Seeds the jitter RNG, keeping supervised schedules reproducible."""

    def __post_init__(self) -> None:
        if self.arm_deadline is not None and self.arm_deadline <= 0:
            raise ValueError("arm_deadline must be positive")
        if self.kill_grace < 0:
            raise ValueError("kill_grace cannot be negative")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def backoff(self, retry_number: int) -> float:
        """Delay before retry ``retry_number`` (1-based): capped
        exponential with seeded jitter."""
        if retry_number < 1:
            raise ValueError("retry numbers are 1-based")
        base = min(
            self.backoff_cap,
            self.backoff_base * (self.backoff_factor ** (retry_number - 1)),
        )
        if not self.jitter:
            return base
        spread = base * self.jitter
        return base - spread + self._rng.random() * 2.0 * spread


class Watchdog:
    """Per-arm deadline enforcement alongside a blocking backend race.

    ``terminate(hard)`` is the executor-supplied callback that delivers
    the termination instruction to every still-racing arm (``hard=False``
    -> cooperative: token cancel / SIGTERM; ``hard=True`` -> forcible:
    SIGKILL where the backend can).  The watchdog fires it at
    ``deadline`` and again, hard, at ``deadline + grace``; :meth:`stop`
    cancels any firing still pending.
    """

    def __init__(
        self,
        deadline: float,
        grace: float,
        terminate: Callable[[bool], None],
        trace_block: Optional[int] = None,
    ) -> None:
        if deadline <= 0:
            raise ValueError("watchdog deadline must be positive")
        self.deadline = deadline
        self.grace = grace
        self._terminate = terminate
        self.trace_block = trace_block
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="race-watchdog", daemon=True
        )
        self.fired_soft = False
        self.fired_hard = False

    def start(self) -> "Watchdog":
        self._thread.start()
        return self

    def _run(self) -> None:
        if self._stop.wait(self.deadline):
            return
        self.fired_soft = True
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.WATCHDOG_SOFT,
                block=self.trace_block,
                deadline_seconds=self.deadline,
            )
        try:
            self._terminate(False)
        except Exception:  # pragma: no cover - backend already torn down
            return
        if self._stop.wait(self.grace):
            return
        self.fired_hard = True
        if tracer.enabled:
            tracer.emit(
                _ev.WATCHDOG_HARD,
                block=self.trace_block,
                grace_seconds=self.grace,
            )
        try:
            self._terminate(True)
        except Exception:  # pragma: no cover - backend already torn down
            pass

    def stop(self) -> None:
        """Cancel pending firings and reclaim the thread."""
        self._stop.set()
        self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# report classification (shared by the executor and the tests)


def classify_outcome(
    succeeded: bool,
    cancelled: bool,
    abnormal: bool,
    detail: str,
    signal: Optional[int] = None,
    winner_exists: bool = False,
) -> str:
    """Map one arm report onto an :class:`ArmAutopsy` outcome label."""
    if succeeded:
        return "won"
    lowered = detail.lower()
    if abnormal:
        if "corrupt" in lowered or "truncat" in lowered:
            return "corrupt"
        if "hung" in lowered or "abandon" in lowered or "hang" in lowered:
            return "hung"
        if signal is not None or "kill" in lowered:
            return "killed"
        return "crashed"
    if cancelled:
        return "eliminated" if winner_exists else "timeout"
    return "failed"
