"""HMAC-authenticated record streams: a cluster endpoint you can bind
beyond loopback.

PR 7's daemons trusted every frame the kernel delivered -- fine on
``127.0.0.1``, reckless anywhere else.  This module adds a shared-key
authentication layer *under* every cluster conversation (ship, vote,
join/ping gossip, router ops) without changing the wire format: an
authenticated frame is an ordinary framed record whose payload is the
envelope ``{"kind": "authed", "n": ..., "mac": ..., "body": ...}``.

The protocol, per connection:

1. **Challenge.**  The accepting side draws a random nonce and sends it
   in the clear (``auth-challenge``).  The nonce is public; its job is
   to bind every MAC on this connection to *this* connection, so a
   frame captured from an earlier conversation can never be replayed
   into a new one.
2. **Signed envelopes.**  Each side then wraps every record: the body
   is pickled, a per-direction monotone counter ``n`` is attached, and
   ``mac = HMAC-SHA256(key, nonce || direction || n || body)``.
   Directions are tagged (``C`` client->server, ``S`` server->client)
   so a peer's own frames cannot be reflected back at it.
3. **Verification.**  The receiver recomputes the MAC
   (:func:`hmac.compare_digest`, constant time) and checks ``n``
   strictly exceeds the last accepted counter.

Failure semantics are deliberately asymmetric:

- a frame with a **bad or missing MAC** poisons the connection: the
  sender is either unauthenticated or tampering, the conversation ends
  (``auth-reject`` trace event, ``StreamClosed``);
- a frame whose MAC verifies but whose **counter does not advance** is
  a *replay* (or an impairment-proxy duplicate of an authentic frame).
  It is discarded -- never acted on -- but the connection survives:
  dropping a byte-identical duplicate is idempotence, not an attack
  response.  It is still surfaced as an ``auth-reject`` event with
  ``reason="replay"``.

The shared key comes from :func:`load_secret` (the
``REPRO_CLUSTER_SECRET`` environment variable, which the spawn helpers
propagate to child daemons) or is passed explicitly.  With no key
configured, streams stay plain -- the loopback-only PR 7 posture.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import pickle
import secrets
import struct
from typing import Optional, Union

from repro.cluster.stream import RecordStream, StreamClosed
from repro.errors import ReproError
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer

#: Environment variable carrying the cluster's shared key.
SECRET_ENV = "REPRO_CLUSTER_SECRET"

#: Direction tags mixed into every MAC (anti-reflection).
_DIR_CLIENT = b"C"
_DIR_SERVER = b"S"

_COUNTER = struct.Struct(">Q")


class AuthError(ReproError):
    """An authentication step failed fatally (bad MAC, no challenge)."""


def generate_secret() -> str:
    """A fresh 256-bit shared key, hex-encoded for env transport."""
    return secrets.token_hex(32)


def load_secret(explicit: Union[str, bytes, None] = None) -> Optional[bytes]:
    """Resolve the shared key: explicit value, else the environment.

    Returns ``None`` when no key is configured anywhere -- the signal to
    run the wire unauthenticated (loopback development mode).
    """
    if explicit is not None:
        if isinstance(explicit, str):
            explicit = explicit.encode()
        return explicit or None
    env = os.environ.get(SECRET_ENV, "")
    return env.encode() if env else None


def _mac(key: bytes, nonce: bytes, direction: bytes, n: int,
         body: bytes) -> bytes:
    return hmac.new(
        key, nonce + direction + _COUNTER.pack(n) + body, hashlib.sha256
    ).digest()


class AuthedStream:
    """A :class:`RecordStream` speaking signed envelopes.

    Mirrors the stream's ``send``/``recv``/``close`` surface so every
    caller (daemon loops, the executor's receivers, vote rounds) is
    oblivious to whether the conversation is authenticated.
    """

    def __init__(
        self,
        stream: RecordStream,
        key: bytes,
        nonce: bytes,
        is_server: bool,
    ) -> None:
        self.stream = stream
        self._key = key
        self._nonce = nonce
        # What *we* sign with vs. what we require of the peer.
        self._send_dir = _DIR_SERVER if is_server else _DIR_CLIENT
        self._recv_dir = _DIR_CLIENT if is_server else _DIR_SERVER
        self._send_n = 0
        self._recv_floor = -1
        self.rejects = 0
        self.replays_rejected = 0

    # -- passthrough surface -------------------------------------------

    @property
    def name(self) -> str:
        return self.stream.name

    @property
    def peer(self) -> str:
        return self.stream.peer

    @property
    def closed(self) -> bool:
        return self.stream.closed

    def fileno(self) -> int:
        return self.stream.fileno()

    def close(self) -> None:
        self.stream.close()

    def __enter__(self) -> "AuthedStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- signed records ------------------------------------------------

    def send(self, payload: dict) -> bool:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        n = self._send_n
        self._send_n += 1
        return self.stream.send({
            "kind": "authed",
            "n": n,
            "mac": _mac(self._key, self._nonce, self._send_dir, n, body),
            "body": body,
        })

    def recv(self, timeout: Optional[float] = None) -> Optional[dict]:
        """The next *verified* record (replays skipped), or ``None``.

        Raises :class:`StreamClosed` when the peer ships anything
        unauthenticated or forged -- the conversation cannot be trusted
        past the first bad frame, exactly the corrupt-frame contract.
        """
        while True:
            outer = self.stream.recv(timeout=timeout)
            if outer is None:
                return None
            verdict = self._verify(outer)
            if verdict == "ok":
                return pickle.loads(outer["body"])
            if verdict == "replay":
                continue  # discarded; keep listening within the timeout
            self._reject(verdict)
            self.stream.close()
            raise StreamClosed(
                f"unauthenticated frame from {self.stream.peer}: {verdict}",
                torn=True,
            )

    def _verify(self, outer: dict) -> str:
        if not isinstance(outer, dict) or outer.get("kind") != "authed":
            return "not-authed"
        body = outer.get("body")
        mac = outer.get("mac")
        n = outer.get("n")
        if not isinstance(body, bytes) or not isinstance(mac, bytes) \
                or not isinstance(n, int) or n < 0:
            return "malformed-envelope"
        expect = _mac(self._key, self._nonce, self._recv_dir, n, body)
        if not hmac.compare_digest(expect, mac):
            return "bad-mac"
        if n <= self._recv_floor:
            self._reject("replay")
            return "replay"
        self._recv_floor = n
        return "ok"

    def _reject(self, reason: str) -> None:
        self.rejects += 1
        if reason == "replay":
            self.replays_rejected += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.AUTH_REJECT,
                name=self.stream.name,
                peer=self.stream.peer,
                reason=reason,
            )

    def __repr__(self) -> str:
        return f"AuthedStream({self.stream!r}, rejects={self.rejects})"


# ----------------------------------------------------------------------
# handshakes

def serve_handshake(
    stream: RecordStream, key: Optional[bytes]
) -> Union[RecordStream, AuthedStream]:
    """Accepting side: issue the nonce challenge (no-op when no key)."""
    if key is None:
        return stream
    nonce = secrets.token_bytes(16)
    if not stream.send({"kind": "auth-challenge", "nonce": nonce}):
        raise StreamClosed("peer vanished before the auth challenge",
                           torn=False)
    return AuthedStream(stream, key, nonce, is_server=True)


def dial_handshake(
    stream: RecordStream, key: Optional[bytes], timeout: float = 2.0
) -> Union[RecordStream, AuthedStream]:
    """Dialling side: await the challenge (no-op when no key)."""
    if key is None:
        return stream
    challenge = stream.recv(timeout=timeout)
    if challenge is None or challenge.get("kind") != "auth-challenge":
        stream.close()
        raise AuthError(
            f"no auth challenge from {stream.peer} "
            "(is the endpoint running with the same secret?)"
        )
    nonce = challenge.get("nonce")
    if not isinstance(nonce, bytes) or not nonce:
        stream.close()
        raise AuthError(f"malformed auth challenge from {stream.peer}")
    return AuthedStream(stream, key, nonce, is_server=False)
