"""HMAC-authenticated record streams: a cluster endpoint you can bind
beyond loopback.

PR 7's daemons trusted every frame the kernel delivered -- fine on
``127.0.0.1``, reckless anywhere else.  This module adds a shared-key
authentication layer *under* every cluster conversation (ship, vote,
join/ping gossip, router ops).  Crucially, the authenticated wire is a
**raw binary envelope, not a pickled record**: the receiver verifies the
HMAC over the exact bytes on the wire *before* anything is
deserialized.  An unauthenticated peer that can reach the port gets its
bytes MAC-checked and dropped -- they never reach ``pickle.loads``, so
the port does not hand out arbitrary deserialization to strangers.

The wire format, per connection:

1. **Challenge.**  The accepting side draws a random nonce and sends it
   in the clear as the fixed-size frame ``b"Rh" || nonce`` (18 raw
   bytes, no pickle).  The nonce is public; its job is to bind every
   MAC on this connection to *this* connection, so a frame captured
   from an earlier conversation can never be replayed into a new one.
2. **Sealed frames.**  Each record is pickled into ``body`` and shipped
   as ``b"Ra" || len(body) || n || mac || body`` where ``n`` is a
   per-direction monotone counter and
   ``mac = HMAC-SHA256(key, nonce || direction || n || body)``.
   Directions are tagged (``C`` client->server, ``S`` server->client)
   so a peer's own frames cannot be reflected back at it.
3. **Verification.**  The receiver parses the fixed-size header,
   recomputes the MAC (:func:`hmac.compare_digest`, constant time) and
   checks ``n`` strictly exceeds the last accepted counter.  Only a
   frame that passes *both* checks is unpickled.

Failure semantics are deliberately asymmetric:

- a frame with a **bad magic, bad MAC, or malformed header** poisons
  the connection: the sender is either unauthenticated or tampering,
  the conversation ends (``auth-reject`` trace event,
  ``StreamClosed``) -- with the body still un-deserialized;
- a frame whose MAC verifies but whose **counter does not advance** is
  a *replay* (or an impairment-proxy duplicate of an authentic frame).
  It is discarded -- never acted on -- but the connection survives:
  dropping a byte-identical duplicate is idempotence, not an attack
  response.  It is still surfaced as an ``auth-reject`` event with
  ``reason="replay"``.

The shared key comes from :func:`load_secret` (the
``REPRO_CLUSTER_SECRET`` environment variable, which the spawn helpers
propagate to child daemons) or is passed explicitly.  With no key
configured, streams stay plain -- the loopback-only PR 7 posture.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import pickle
import secrets
import struct
import threading
import time
from typing import Optional, Tuple, Union

from repro.cluster.stream import RecordStream, StreamClosed
from repro.core.backends import wire
from repro.errors import ReproError
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer

#: Environment variable carrying the cluster's shared key.
SECRET_ENV = "REPRO_CLUSTER_SECRET"

#: Direction tags mixed into every MAC (anti-reflection).
_DIR_CLIENT = b"C"
_DIR_SERVER = b"S"

#: Authenticated data frame: magic, body length, per-direction counter;
#: followed by the 32-byte MAC, then the body.
AUTH_MAGIC = b"Ra"
HEADER = struct.Struct("!2sIQ")
MAC_LEN = hashlib.sha256().digest_size

#: Cleartext challenge frame: magic plus the per-connection nonce.
CHALLENGE_MAGIC = b"Rh"
NONCE_LEN = 16
CHALLENGE_LEN = len(CHALLENGE_MAGIC) + NONCE_LEN

_COUNTER = struct.Struct(">Q")


class AuthError(ReproError):
    """An authentication step failed fatally (bad MAC, no challenge)."""


def generate_secret() -> str:
    """A fresh 256-bit shared key, hex-encoded for env transport."""
    return secrets.token_hex(32)


def load_secret(explicit: Union[str, bytes, None] = None) -> Optional[bytes]:
    """Resolve the shared key: explicit value, else the environment.

    Returns ``None`` when no key is configured anywhere -- the signal to
    run the wire unauthenticated (loopback development mode).
    """
    if explicit is not None:
        if isinstance(explicit, str):
            explicit = explicit.encode()
        return explicit or None
    env = os.environ.get(SECRET_ENV, "")
    return env.encode() if env else None


def _mac(key: bytes, nonce: bytes, direction: bytes, n: int,
         body: bytes) -> bytes:
    return hmac.new(
        key, nonce + direction + _COUNTER.pack(n) + body, hashlib.sha256
    ).digest()


def seal(key: bytes, nonce: bytes, direction: bytes, n: int,
         body: bytes) -> bytes:
    """One authenticated wire frame: ``header || mac || body``.

    Raw bytes end to end -- no pickle in the envelope, so the receiver
    can verify the MAC before anything is deserialized.
    """
    return (
        HEADER.pack(AUTH_MAGIC, len(body), n)
        + _mac(key, nonce, direction, n, body)
        + body
    )


class AuthedStream:
    """A :class:`RecordStream` speaking sealed binary envelopes.

    Mirrors the stream's ``send``/``recv``/``close`` surface so every
    caller (daemon loops, the executor's receivers, vote rounds) is
    oblivious to whether the conversation is authenticated.  All bytes
    after the challenge flow through :meth:`RecordStream.recv_bytes` /
    :meth:`RecordStream.send_bytes` -- the pickling record framing is
    never consulted on an authenticated connection.
    """

    def __init__(
        self,
        stream: RecordStream,
        key: bytes,
        nonce: bytes,
        is_server: bool,
        initial: bytes = b"",
    ) -> None:
        self.stream = stream
        self._key = key
        self._nonce = nonce
        # What *we* sign with vs. what we require of the peer.
        self._send_dir = _DIR_SERVER if is_server else _DIR_CLIENT
        self._recv_dir = _DIR_CLIENT if is_server else _DIR_SERVER
        self._send_n = 0
        self._send_lock = threading.Lock()
        """Counter allocation and the socket write happen under one
        lock: two threads racing ``send`` must not put counters on the
        wire out of order, or the receiver discards the lower-numbered
        legitimate frame as a replay."""
        self._recv_floor = -1
        self._buf = initial
        self.rejects = 0
        self.replays_rejected = 0

    # -- passthrough surface -------------------------------------------

    @property
    def name(self) -> str:
        return self.stream.name

    @property
    def peer(self) -> str:
        return self.stream.peer

    @property
    def closed(self) -> bool:
        return self.stream.closed

    def fileno(self) -> int:
        return self.stream.fileno()

    def close(self) -> None:
        self.stream.close()

    def __enter__(self) -> "AuthedStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sealed records ------------------------------------------------

    def send(self, payload: dict) -> bool:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        with self._send_lock:
            n = self._send_n
            self._send_n += 1
            return self.stream.send_bytes(
                seal(self._key, self._nonce, self._send_dir, n, body)
            )

    def recv(self, timeout: Optional[float] = None) -> Optional[dict]:
        """The next *verified* record (replays skipped), or ``None``.

        Raises :class:`StreamClosed` when the peer ships anything
        unauthenticated or forged -- the conversation cannot be trusted
        past the first bad frame, exactly the corrupt-frame contract.
        The body bytes are only unpickled after the MAC verifies and
        the counter advances.
        """
        while True:
            parsed = self._parse_frame()
            if parsed is None:
                try:
                    data = self.stream.recv_bytes(timeout=timeout)
                except StreamClosed as exc:
                    raise StreamClosed(
                        exc.detail, torn=exc.torn or bool(self._buf)
                    ) from None
                if data is None:
                    return None
                if not data:
                    raise StreamClosed(
                        "peer closed the connection"
                        + (" mid-frame" if self._buf else ""),
                        torn=bool(self._buf),
                    )
                self._buf += data
                continue
            if parsed[0] == "bad":
                self._poison(parsed[1])
            _tag, n, mac, body = parsed
            expect = _mac(self._key, self._nonce, self._recv_dir, n, body)
            if not hmac.compare_digest(expect, mac):
                self._poison("bad-mac")
            if n <= self._recv_floor:
                self._reject("replay")
                continue  # discarded; keep listening within the timeout
            self._recv_floor = n
            self.stream.received += 1
            # Only now -- MAC verified, counter fresh -- may the body
            # reach the unpickler.
            try:
                return pickle.loads(body)
            except Exception as exc:
                self.stream.close()
                raise StreamClosed(
                    f"undecodable authenticated payload from "
                    f"{self.stream.peer} ({exc!r})",
                    torn=True,
                ) from None

    def _parse_frame(self):
        """One complete frame off the buffer, or ``None`` for more bytes.

        Returns ``("frame", n, mac, body)`` or ``("bad", reason)``; the
        body is untouched bytes -- nothing here deserializes anything.
        """
        buf = self._buf
        if len(buf) >= 2 and buf[:2] != AUTH_MAGIC:
            return ("bad", "not-authed")
        if len(buf) < HEADER.size:
            return None
        _magic, length, n = HEADER.unpack_from(buf)
        if length > wire.MAX_RECORD:
            return ("bad", "malformed-envelope")
        total = HEADER.size + MAC_LEN + length
        if len(buf) < total:
            return None
        mac = buf[HEADER.size:HEADER.size + MAC_LEN]
        body = buf[HEADER.size + MAC_LEN:total]
        self._buf = buf[total:]
        return ("frame", n, mac, body)

    def _poison(self, reason: str) -> None:
        """An unauthenticated or forged frame ends the conversation."""
        self._reject(reason)
        self.stream.close()
        raise StreamClosed(
            f"unauthenticated frame from {self.stream.peer}: {reason}",
            torn=True,
        )

    def _reject(self, reason: str) -> None:
        self.rejects += 1
        if reason == "replay":
            self.replays_rejected += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.AUTH_REJECT,
                name=self.stream.name,
                peer=self.stream.peer,
                reason=reason,
            )

    def __repr__(self) -> str:
        return f"AuthedStream({self.stream!r}, rejects={self.rejects})"


# ----------------------------------------------------------------------
# handshakes

def serve_handshake(
    stream: RecordStream, key: Optional[bytes]
) -> Union[RecordStream, AuthedStream]:
    """Accepting side: issue the nonce challenge (no-op when no key)."""
    if key is None:
        return stream
    nonce = secrets.token_bytes(NONCE_LEN)
    if not stream.send_bytes(CHALLENGE_MAGIC + nonce):
        raise StreamClosed("peer vanished before the auth challenge",
                           torn=False)
    return AuthedStream(stream, key, nonce, is_server=True)


def dial_handshake(
    stream: RecordStream, key: Optional[bytes], timeout: float = 2.0
) -> Union[RecordStream, AuthedStream]:
    """Dialling side: await the raw challenge (no-op when no key).

    The challenge is fixed-size raw bytes, so nothing a rogue accepting
    side sends is ever unpickled either: a wrong magic is a fatal
    :class:`AuthError`, not a deserialization.
    """
    if key is None:
        return stream
    deadline = time.monotonic() + timeout
    buf = b""
    while len(buf) < CHALLENGE_LEN:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            stream.close()
            raise AuthError(
                f"no auth challenge from {stream.peer} "
                "(is the endpoint running with the same secret?)"
            )
        try:
            data = stream.recv_bytes(timeout=remaining)
        except StreamClosed:
            stream.close()
            raise AuthError(
                f"no auth challenge from {stream.peer} "
                "(is the endpoint running with the same secret?)"
            ) from None
        if data is None:
            continue
        if not data:
            stream.close()
            raise AuthError(
                f"peer closed before the auth challenge: {stream.peer}"
            )
        buf += data
        if buf[:2] != CHALLENGE_MAGIC[:min(len(buf), 2)]:
            stream.close()
            raise AuthError(f"malformed auth challenge from {stream.peer}")
    nonce = buf[len(CHALLENGE_MAGIC):CHALLENGE_LEN]
    return AuthedStream(
        stream, key, nonce, is_server=False, initial=buf[CHALLENGE_LEN:]
    )
