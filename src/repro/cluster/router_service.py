"""The message router as a crash-restartable network service.

Section 3.4.2's router kept its state -- channels, world sets, known
statuses, deferred effects -- in the memory of whatever node hosts it.
:class:`RouterDaemon` makes that node a real process with a real
failure mode:

- every state transition is journaled write-ahead through a
  :class:`~repro.ipc.journal.JournalSink` -- a framed, checksummed row
  hits disk before the transition takes effect;
- a SIGKILL at any instant (including mid-append: the torn row fails
  its frame walk and is discarded) leaves a log from which the next
  incarnation rebuilds the router with
  :func:`~repro.ipc.journal.load_journal` + ``replay()``: same live
  worlds, same sequence numbers, and every side effect released before
  the crash *not* re-run;
- the rebuilt incarnation compacts the log as it replays (replayed
  transitions re-journal into a fresh file, atomically swapped over the
  old one), so recovery cost is bounded by live state, not by history.

Clients speak framed ``router-op`` records over TCP through
:class:`RouterClient`; a ``digest`` op summarizes the router's
observable state, which is how the recovery tests assert that the
survivor agrees with the ghost.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.cluster.auth import dial_handshake, load_secret, serve_handshake
from repro.cluster.stream import RecordStream, StreamClosed, connect, listener
from repro.errors import ReproError
from repro.ipc.journal import JournalSink, RouterJournal, load_journal
from repro.ipc.router import MessageRouter
from repro.predicates import WorldSet


def default_worldset(pid: int) -> WorldSet:
    """The factory the demo and the CLI register pids with.

    Replay must rebuild each pid's *initial* world set identically, so
    the factory has to be a pure function of the pid -- module-level and
    importable, never a closure over run state.
    """
    return WorldSet(initial_state={"pid": pid, "log": []})


class RouterDaemon:
    """One incarnation of the journaled router, serving a TCP port."""

    def __init__(
        self,
        journal_path: str,
        worldset_factory: Optional[Callable[[int], WorldSet]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        secret=None,
    ) -> None:
        self.journal_path = journal_path
        self.worldset_factory = (
            worldset_factory if worldset_factory is not None
            else default_worldset
        )
        self.host = host
        self.port = port
        self._key = load_secret(secret)
        self.member_mirror: Dict[str, Any] = {}
        """The home node's latest membership snapshot, pushed via the
        ``member-sync`` op -- so an operator (or a recovering home) can
        ask the router who the cluster believed was alive."""
        self._listener = None
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        """Ops serialize: the router is single-threaded state behind a
        concurrent front door, the same discipline as the simulator."""

        self.recovered_rows = 0
        self.router = self._recover()

    # ------------------------------------------------------------------
    # recovery

    def _recover(self) -> MessageRouter:
        """Rebuild from the journal on disk (empty log = fresh start).

        The replayed incarnation journals into a ``.rebuild`` file that
        atomically replaces the old log once replay finishes -- a crash
        *during* recovery leaves the original log untouched, so recovery
        is idempotent.
        """
        old = load_journal(self.journal_path)
        self.recovered_rows = len(old.records)
        if not old.records:
            sink = JournalSink(self.journal_path)
            return MessageRouter(journal=RouterJournal(sink=sink))
        rebuild_path = self.journal_path + ".rebuild"
        if os.path.exists(rebuild_path):
            os.unlink(rebuild_path)  # a corpse from a crashed recovery
        sink = JournalSink(rebuild_path)
        fresh = RouterJournal(sink=sink)
        router = old.replay(self.worldset_factory, journal=fresh)
        # The sink's fd survives the rename: rows keep appending to the
        # same inode, now living at the canonical path.
        os.replace(rebuild_path, self.journal_path)
        return router

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> Tuple[str, int]:
        self._listener, self.host, self.port = listener(self.host, self.port)
        accept = threading.Thread(
            target=self._accept_loop, name="router-daemon", daemon=True
        )
        accept.start()
        return self.host, self.port

    def serve_forever(self) -> None:
        if self._listener is None:
            self.start()
        while not self._stopping.wait(0.1):
            pass

    def stop(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        journal = self.router.journal
        if journal is not None and journal.sink is not None:
            journal.sink.close()

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    # ------------------------------------------------------------------
    # the op loop

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            handler = threading.Thread(
                target=self._handle_conn,
                args=(RecordStream(sock, name="router"),),
                name="router-conn",
                daemon=True,
            )
            handler.start()

    def _handle_conn(self, raw: RecordStream) -> None:
        try:
            stream = serve_handshake(raw, self._key)
        except StreamClosed:
            raw.close()
            return
        try:
            while not self._stopping.is_set():
                try:
                    msg = stream.recv(timeout=0.1)
                except StreamClosed:
                    return
                if msg is None:
                    continue
                if msg.get("kind") != "router-op":
                    continue
                try:
                    with self._lock:
                        reply = self._apply(msg)
                except ReproError as exc:
                    reply = {"ok": False, "error": str(exc)}
                except Exception as exc:  # noqa: BLE001 - shipped back
                    reply = {"ok": False, "error": repr(exc)}
                reply["kind"] = "router-reply"
                stream.send(reply)
                if msg.get("op") == "shutdown":
                    self.stop()
                    return
        finally:
            stream.close()

    def _apply(self, msg: dict) -> dict:
        op = msg.get("op")
        if op == "register":
            pid = int(msg["pid"])
            self.router.register(pid, self.worldset_factory(pid))
            return {"ok": True}
        if op == "send":
            self.router.send(
                int(msg["sender"]), int(msg["dest"]),
                msg.get("data"), msg.get("predicate"),
            )
            return {"ok": True}
        if op == "deliver-all":
            return {"ok": True, "delivered": self.router.deliver_all()}
        if op == "status":
            released = self.router.report_status(
                int(msg["pid"]), bool(msg["completed"])
            )
            return {"ok": True, "released": len(released)}
        if op == "digest":
            return {"ok": True, "digest": self.digest()}
        if op == "member-sync":
            snapshot = msg.get("snapshot")
            if isinstance(snapshot, dict):
                # Versions only move forward: a delayed push from before
                # a later one must not roll the mirror back.
                held = self.member_mirror.get("version", -1)
                if int(snapshot.get("version", 0)) >= held:
                    self.member_mirror = snapshot
            return {"ok": True, "version": self.member_mirror.get("version")}
        if op == "members":
            return {"ok": True, "snapshot": dict(self.member_mirror)}
        if op == "shutdown":
            return {"ok": True}
        return {"ok": False, "error": f"unknown router op {op!r}"}

    def digest(self) -> Dict[str, Any]:
        """The router's observable state, in comparable form.

        Two incarnations that agree on this digest agree on everything
        the paper's semantics care about: which worlds are live under
        which predicates, what statuses are known, what is undelivered.
        """
        worlds = {
            pid: sorted(
                str(world.predicate) for world in ws.worlds
            )
            for pid, ws in self.router._endpoints.items()
        }
        return {
            "worlds": worlds,
            "statuses": {
                pid: self.router.known_status(pid)
                for pid in sorted(self.router._endpoints)
                if self.router.known_status(pid) is not None
            },
            "pending": self.router.total_pending,
            "splits": self.router.total_splits,
        }

    def __repr__(self) -> str:
        return (
            f"RouterDaemon({self.host}:{self.port}, "
            f"journal={self.journal_path!r}, "
            f"recovered_rows={self.recovered_rows})"
        )


class RouterClient:
    """A framed-record client for one :class:`RouterDaemon`."""

    def __init__(
        self, host: str, port: int, timeout: float = 2.0, secret=None
    ) -> None:
        self.timeout = timeout
        self._stream = dial_handshake(
            connect(host, port, timeout=timeout, name="router-cli"),
            load_secret(secret),
            timeout=timeout,
        )

    def _call(self, op: str, **fields: Any) -> dict:
        record = {"kind": "router-op", "op": op}
        record.update(fields)
        if not self._stream.send(record):
            raise ReproError(f"router unreachable for {op!r}")
        reply = self._stream.recv(timeout=self.timeout)
        if reply is None:
            raise ReproError(f"router timed out on {op!r}")
        if not reply.get("ok"):
            raise ReproError(
                f"router rejected {op!r}: {reply.get('error')}"
            )
        return reply

    def register(self, pid: int) -> None:
        self._call("register", pid=pid)

    def send(
        self, sender: int, dest: int, data: Any, predicate: Any = None
    ) -> None:
        self._call("send", sender=sender, dest=dest, data=data,
                   predicate=predicate)

    def deliver_all(self) -> int:
        return int(self._call("deliver-all")["delivered"])

    def report_status(self, pid: int, completed: bool) -> int:
        return int(
            self._call("status", pid=pid, completed=completed)["released"]
        )

    def digest(self) -> Dict[str, Any]:
        return self._call("digest")["digest"]

    def sync_members(self, snapshot: Dict[str, Any]) -> None:
        self._call("member-sync", snapshot=snapshot)

    def members(self) -> Dict[str, Any]:
        return self._call("members")["snapshot"]

    def shutdown(self) -> None:
        try:
            self._call("shutdown")
        except ReproError:
            pass  # the daemon may die before the goodbye lands

    def close(self) -> None:
        self._stream.close()

    def __enter__(self) -> "RouterClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
