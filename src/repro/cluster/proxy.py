"""A frame-aware impairment proxy: ``CHAOS_SCENARIOS`` on the real wire.

TCP never loses bytes, so chaos on a real socket has to be injected by a
man in the middle.  One :class:`ImpairmentProxy` fronts one worker
daemon (one *link*, in the simulated network's vocabulary) and forwards
framed records both ways, consulting a compiled
:class:`~repro.resilience.chaos.WireImpairments` once per complete frame:

- **drop** -- the frame silently never arrives (a lost heartbeat, a lost
  winner shipment); the framing guarantees the cut is at a record
  boundary, so loss at the proxy is *message* loss, exactly the
  simulated ``transmit`` semantics;
- **duplicate** -- the frame is forwarded twice back to back (the
  receiver-side dedup/idempotence machinery earns its keep);
- **hold** (reorder) -- the frame is parked and released after the next
  frame on the same direction passes it;
- **delay** -- the forwarding thread stalls before relaying (a latency
  spike that also delays everything queued behind it, as a congested
  link would);
- **partition** -- the link goes dark for a window; every frame in both
  directions inside the window is dropped, and heals on its own.

The proxy parses only frame *boundaries* (magic + length + crc header);
payload bytes are forwarded untouched, so a corrupt or torn upstream
frame still reaches the client exactly as the worker shipped it --
impairment never masks the endpoint hardening it is there to test.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import List, Optional, Tuple

from repro.core.backends import wire
from repro.cluster import auth
from repro.cluster.stream import listener
from repro.resilience.chaos import WireImpairments

#: Sub-frame read chunk; small enough that a partition window starting
#: mid-stream stalls quickly, large enough to not burn CPU.
_CHUNK = 65536


class _FrameSplitter:
    """Incremental splitter: raw bytes in, whole raw frames out.

    Understands all three framings that transit a cluster link -- plain
    pickled records (``Rr``), the cleartext auth challenge (``Rh``) and
    sealed authenticated envelopes (``Ra``) -- so impairment stays
    message-grained on an authenticated link too.  Unlike
    :class:`~repro.core.backends.wire.RecordReader` it never unpickles
    and never rejects: bytes that do not parse as a frame header are
    passed through as an opaque tail so endpoint corruption detection
    still sees them.
    """

    def __init__(self) -> None:
        self._buffer = b""
        self.opaque = False

    def feed(self, data: bytes) -> List[bytes]:
        self._buffer += data
        if self.opaque:
            out, self._buffer = [self._buffer], b""
            return [chunk for chunk in out if chunk]
        frames: List[bytes] = []
        while len(self._buffer) >= 2:
            magic = self._buffer[:2]
            if magic == wire.MAGIC:
                if len(self._buffer) < wire.FRAME.size:
                    break
                _m, length, _crc = wire.FRAME.unpack_from(self._buffer)
                if length > wire.MAX_RECORD:
                    return self._go_opaque(frames)
                total = wire.FRAME.size + length
            elif magic == auth.CHALLENGE_MAGIC:
                total = auth.CHALLENGE_LEN
            elif magic == auth.AUTH_MAGIC:
                if len(self._buffer) < auth.HEADER.size:
                    break
                _m, length, _n = auth.HEADER.unpack_from(self._buffer)
                if length > wire.MAX_RECORD:
                    return self._go_opaque(frames)
                total = auth.HEADER.size + auth.MAC_LEN + length
            else:
                return self._go_opaque(frames)
            if len(self._buffer) < total:
                break
            frames.append(self._buffer[:total])
            self._buffer = self._buffer[total:]
        return frames

    def _go_opaque(self, frames: List[bytes]) -> List[bytes]:
        # Not our framing: stop splitting, forward verbatim from here
        # on (the endpoint will flag the corruption).
        self.opaque = True
        frames.append(self._buffer)
        self._buffer = b""
        return frames

    @property
    def pending(self) -> bytes:
        """Bytes of an incomplete trailing frame (flushed on close)."""
        return self._buffer


class ImpairmentProxy:
    """One impaired link between the home node and one worker daemon."""

    def __init__(
        self,
        upstream: Tuple[str, int],
        impair: Optional[WireImpairments] = None,
        link: str = "",
        host: str = "127.0.0.1",
    ) -> None:
        self.upstream = upstream
        self.impair = impair
        self.link = link or f"home|{upstream[0]}:{upstream[1]}"
        self._listen_host = host
        self._listener: Optional[socket.socket] = None
        self.host = host
        self.port = 0
        self._threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        self._stopped = threading.Event()
        self.frames_forwarded = 0

    # ------------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, start accepting, and return the proxied address."""
        self._listener, self.host, self.port = listener(self._listen_host, 0)
        accept = threading.Thread(
            target=self._accept_loop, name=f"proxy-{self.link}", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self.host, self.port

    def stop(self) -> None:
        """Close the listener and every live relay."""
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            # shutdown-then-close, for the same reason as the pump
            # teardown: a pump blocked in recv holds the description
            # open, so a bare close would leave the relay half-open.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ImpairmentProxy":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            try:
                server = socket.create_connection(self.upstream, timeout=2.0)
                server.settimeout(None)
            except OSError:
                client.close()
                continue
            with self._lock:
                self._conns.extend((client, server))
            for source, sink, direction in (
                (client, server, "up"),
                (server, client, "down"),
            ):
                pump = threading.Thread(
                    target=self._pump,
                    args=(source, sink, direction),
                    name=f"proxy-{self.link}-{direction}",
                    daemon=True,
                )
                pump.start()
                self._threads.append(pump)

    def _pump(self, source: socket.socket, sink: socket.socket,
              direction: str) -> None:
        splitter = _FrameSplitter()
        held: Optional[bytes] = None
        try:
            while not self._stopped.is_set():
                try:
                    data = source.recv(_CHUNK)
                except OSError:
                    break
                if not data:
                    break
                for frame in splitter.feed(data):
                    held = self._relay(sink, frame, held)
        finally:
            # Flush a held frame and any torn tail so the endpoint sees
            # exactly what the peer managed to ship before dying.
            try:
                if held is not None:
                    sink.sendall(held)
                if splitter.pending:
                    sink.sendall(splitter.pending)
            except OSError:
                pass
            # Half-open propagation: one side died, tear down both.
            # ``shutdown`` first: ``close`` alone cannot end the TCP
            # conversation while the opposite pump is still blocked in
            # ``recv`` on the same socket -- the blocked thread pins the
            # kernel file description, no FIN ever leaves, and the
            # surviving endpoint waits on a half-open wire forever.
            # ``shutdown`` acts on the description immediately: it sends
            # the FIN *and* wakes the blocked reader.
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def _relay(self, sink: socket.socket, frame: bytes,
               held: Optional[bytes]) -> Optional[bytes]:
        """Forward one frame through the impairment plan.

        Returns the new held frame (reorder buffer of depth one).
        """
        if self.impair is None:
            self._send(sink, frame)
            return held
        decision = self.impair.decide(self.link)
        if decision.drop:
            return held
        if decision.delay > 0:
            time.sleep(decision.delay)
        if decision.hold and held is None:
            return frame  # parked; the next frame overtakes it
        self._send(sink, frame)
        if decision.duplicate:
            self._send(sink, frame)
        if held is not None:
            self._send(sink, held)  # the parked frame lands late
        return None

    def _send(self, sink: socket.socket, frame: bytes) -> None:
        try:
            sink.sendall(frame)
            self.frames_forwarded += 1
        except OSError:
            pass  # receiver gone; the pump loop will notice on recv

    def __repr__(self) -> str:
        return (
            f"ImpairmentProxy({self.link!r}, {self.host}:{self.port} -> "
            f"{self.upstream[0]}:{self.upstream[1]})"
        )
