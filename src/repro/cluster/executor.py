"""The home node of the real-wire cluster: race arms across daemons.

:class:`ClusterExecutor` is :class:`~repro.net.distributed.
DistributedAltExecutor` with the simulated substrate swapped out for
sockets and wall clocks:

- the parent image is checkpointed once and *actually shipped* (section
  4.1: "in the distributed case we must actually copy state for a remote
  child") to each worker daemon in a framed ``ship`` record;
- the remote child's dirty pages come home in its ``result`` record and
  are written into the parent's storage before the parent resumes;
- leases are renewed by real heartbeat records on the ship connection;
  the warden's deadlines are wall-clock instants, and an expired lease
  triggers a respawn on the next endpoint under a fresh incarnation
  epoch, with the stale connection left open on purpose: a
  healed-partition zombie's late winner shipment must *arrive* so the
  epoch fence can reject it at commit (the observable form of the
  section 3.4 at-most-once argument);
- sibling elimination is a ``cancel`` record -- a termination message
  with genuine network latency, naturally asynchronous;
- synchronization is either first-finisher-commits at home or a
  :class:`~repro.cluster.semaphore.ClusterMajoritySemaphore` round
  across the daemons' voters (``use_consensus=True``);
- when nothing can commit -- no endpoint reachable, respawns exhausted,
  consensus starved below quorum -- the block degrades to a serial
  replay on the home node with faults suppressed, the same last resort
  as the simulated path.

Determinism caveat, stated honestly: on a real wire the *interleaving*
is the kernel's, so unlike the simulated executor the timeline here is
measured, not derived.  What stays deterministic under a seed is every
injected decision (chaos draws are keyed by frame ordinal, crash
instants by arm) and the converged *outcome*: whichever arm commits,
the parent's bytes equal a serial replay of that arm from the same
image.  The chaos suite asserts exactly that.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.auth import AuthError, dial_handshake, load_secret
from repro.cluster.membership import MembershipTable
from repro.cluster.semaphore import ClusterMajoritySemaphore
from repro.cluster.stream import RecordStream, StreamClosed, connect
from repro.core.alternative import Alternative
from repro.core.result import AltOutcome, AltResult, OverheadBreakdown
from repro.core.selection import OrderedPolicy
from repro.core.sequential import SequentialExecutor
from repro.errors import AltBlockFailure, ConsensusUnavailable
from repro.net.lease import Lease, RaceWarden
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.pages.store import PageStore
from repro.process.primitives import ProcessManager
from repro.process.process import SimProcess
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.injector import active as _active_injector, suppressed


@dataclass(frozen=True)
class WorkerEndpoint:
    """One dialable worker daemon (possibly behind an impairment proxy)."""

    name: str
    host: str
    port: int

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def __str__(self) -> str:
        return f"{self.name}@{self.host}:{self.port}"


@dataclass
class _Assignment:
    """One incarnation of one arm shipped to one endpoint."""

    index: int
    arm: Alternative
    endpoint: WorkerEndpoint
    epoch: int
    lease: Lease
    stream: RecordStream
    started: float
    """Wall instant (relative to block entry) the shipment left home."""

    stale: bool = False
    """The warden gave up on this incarnation (lease lapsed or the
    connection dropped).  The stream stays open so a zombie's late
    result still arrives -- and gets fenced."""

    finished: bool = False
    thread: Optional[threading.Thread] = None


class ClusterExecutor:
    """Race an alternative block across live worker daemons."""

    def __init__(
        self,
        endpoints: Sequence[WorkerEndpoint],
        seed: int = 0,
        warden: Optional[RaceWarden] = None,
        use_consensus: bool = False,
        race_timeout: float = 15.0,
        connect_timeout: float = 2.0,
        manager: Optional[ProcessManager] = None,
        membership: Optional[MembershipTable] = None,
        secret=None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 0.3,
    ) -> None:
        if not endpoints and membership is None:
            raise ValueError(
                "need at least one worker endpoint or a membership table"
            )
        self.endpoints = list(endpoints)
        self.seed = seed
        self.membership = membership
        """When set, the rotation is *live*: healthy/joining members from
        the table (at their current endpoints) take precedence, so a
        daemon that died and re-joined on a fresh port is dialable the
        moment its ``join`` lands -- no executor restart, no home-node
        restart."""
        self._key = load_secret(secret)
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.breakers: Dict[str, CircuitBreaker] = {}
        """Per-endpoint circuit breakers, persisted *across* blocks: a
        corpse discovered in block N is still skipped in block N+1 until
        its cooldown admits a half-open probe."""
        # Real schedulers jitter; default lease terms are looser than the
        # simulated warden's so a busy CI box does not fake a death.
        self.warden = warden if warden is not None else RaceWarden(
            lease_interval=0.05, lease_timeout=0.6
        )
        self.use_consensus = use_consensus
        self.race_timeout = race_timeout
        self.connect_timeout = connect_timeout
        self.manager = manager if manager is not None else ProcessManager(
            PageStore()
        )
        self.home = "home"

    def new_parent(self, space_size: int = 64 * 1024) -> SimProcess:
        """A fresh parent world on the home node."""
        return self.manager.create_initial(space_size=space_size)

    def _rng_for(self, purpose: str, index: int) -> random.Random:
        """Keyed RNG, the FaultInjector convention: independent of how
        many draws other arms or earlier incarnations consumed."""
        return random.Random(f"{self.seed}:{purpose}:{index}")

    # ------------------------------------------------------------------
    # endpoint health plumbing

    def _breaker(self, endpoint: WorkerEndpoint) -> CircuitBreaker:
        key = str(endpoint)
        breaker = self.breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                name=key,
                fail_threshold=self.breaker_threshold,
                cooldown=self.breaker_cooldown,
            )
            self.breakers[key] = breaker
        return breaker

    def _rotation(self) -> List[WorkerEndpoint]:
        """The dialable endpoints, freshest view first.

        Membership members (healthy/joining before suspect, never dead)
        lead at their *current* endpoints; statically configured
        endpoints the table has never heard of trail as a fallback.
        """
        if self.membership is None:
            return self.endpoints
        known = set()
        rotation: List[WorkerEndpoint] = []
        for record in self.membership.alive():
            known.add(record.name)
            rotation.append(
                WorkerEndpoint(record.name, record.host, record.port)
            )
        dead_names = {
            r.name for r in self.membership.members() if r.state == "dead"
        }
        for endpoint in self.endpoints:
            if endpoint.name not in known and endpoint.name not in dead_names:
                rotation.append(endpoint)
        return rotation

    def _note_endpoint_failure(
        self, endpoint: WorkerEndpoint, detail: str
    ) -> None:
        """Direct data-path evidence: breaker plus membership suspicion."""
        self._breaker(endpoint).record_failure(detail=detail)
        if self.membership is not None:
            self.membership.observe_failure(endpoint.name, detail=detail)

    def _note_endpoint_success(self, endpoint: WorkerEndpoint) -> None:
        self._breaker(endpoint).record_success()

    # ------------------------------------------------------------------

    def run(
        self,
        alternatives: Sequence[Alternative],
        parent: Optional[SimProcess] = None,
    ) -> AltResult:
        """Execute the block, one arm per daemon (round-robin beyond)."""
        if not alternatives:
            raise ValueError("an alternative block needs at least one arm")
        parent = parent if parent is not None else self.new_parent()
        tracer = _active_tracer()
        block = tracer.next_block() if tracer.enabled else None
        if tracer.enabled:
            tracer.emit(
                _ev.BLOCK_BEGIN,
                block=block,
                name=f"alt-block#{block} [cluster]",
                backend="cluster",
                arms=len(alternatives),
                supervised=True,
            )
        try:
            result = self._run_inner(alternatives, parent, block)
        except AltBlockFailure as exc:
            if tracer.enabled:
                tracer.emit(
                    _ev.BLOCK_END,
                    block=block,
                    outcome=type(exc).__name__,
                    elapsed_seconds=float(getattr(exc, "elapsed", 0.0) or 0.0),
                )
            raise
        if tracer.enabled:
            tracer.emit(
                _ev.BLOCK_END,
                block=block,
                outcome="won",
                winner=result.winner.name,
                elapsed_seconds=result.elapsed,
            )
        return result

    # ------------------------------------------------------------------

    def _run_inner(self, alternatives, parent, block) -> AltResult:
        t0 = time.monotonic()
        clock = lambda: time.monotonic() - t0  # noqa: E731
        timeline: List[Tuple[float, str]] = [(0.0, "block entered")]
        outcomes = [
            AltOutcome(index=i, name=a.name, status="untried")
            for i, a in enumerate(alternatives)
        ]
        image = parent.space.read(0, parent.space.size)
        events: "queue.Queue" = queue.Queue()
        live: List[_Assignment] = []     # lease still governs these
        stale: List[_Assignment] = []    # kept open for zombie fencing
        tried: Dict[int, List[str]] = {i: [] for i in range(len(alternatives))}
        attempts: Dict[int, int] = {i: 0 for i in range(len(alternatives))}
        dead: Set[str] = set()
        fenced = 0

        for index, arm in enumerate(alternatives):
            assignment = self._ship(
                index, arm, image, parent.space.size, tried, attempts,
                dead, outcomes, timeline, events, clock, block,
            )
            if assignment is not None:
                live.append(assignment)

        winner_msg: Optional[dict] = None
        winner_assignment: Optional[_Assignment] = None
        semaphore = None
        if self.use_consensus:
            # The voting population is the live rotation.  With the
            # membership table fully dark (every member dead, statics
            # buried with them) fall back to the static list rather
            # than crash on an empty quorum; with no endpoints at all,
            # skip the semaphore entirely -- results are then rejected
            # as consensus-unavailable and the documented ladder
            # (reroute -> respawn -> serial replay) stays in charge.
            voters = [e.address for e in self._rotation()] or [
                e.address for e in self.endpoints
            ]
            if voters:
                semaphore = ClusterMajoritySemaphore(
                    voters, requester=self.home, secret=self._key
                )
        consensus_starved = False
        tracer = _active_tracer()

        while live and winner_msg is None and clock() < self.race_timeout:
            wait = min(
                [a.lease.deadline - clock() for a in live] + [0.05]
            )
            try:
                item = events.get(timeout=max(wait, 0.001))
            except queue.Empty:
                item = None
            now = clock()
            if item is not None:
                kind, assignment, payload = item
                if kind == "hb":
                    self._on_heartbeat(assignment, payload, now)
                elif kind == "result":
                    assignment.finished = True
                    self._note_endpoint_success(assignment.endpoint)
                    ok, reason = self._commit_check(assignment, payload)
                    if ok and self.use_consensus:
                        if semaphore is None:
                            timeline.append(
                                (now, "consensus unavailable: "
                                      "no voting endpoints")
                            )
                            ok, reason = False, "consensus-unavailable"
                        else:
                            ok, reason = self._consensus_round(
                                semaphore, assignment, timeline, clock
                            )
                        consensus_starved = (
                            consensus_starved or reason == "consensus-unavailable"
                        )
                    if ok:
                        winner_msg = payload
                        winner_assignment = assignment
                        break
                    self._reject(
                        assignment, payload, reason, outcomes,
                        timeline, now, block,
                    )
                    if reason in ("stale-epoch-fence", "lease-expired"):
                        fenced += 1
                    if (not assignment.stale
                            and reason not in ("consensus-denied",)):
                        # A definitive remote failure: the arm is done,
                        # its lease settles with the race.
                        live = [a for a in live if a is not assignment]
                        stale.append(assignment)
                elif kind == "drop":
                    self._on_drop(assignment, payload, timeline, now, block)
                    if not assignment.stale and not assignment.finished:
                        assignment.stale = True
                        if not assignment.lease.terminal:
                            assignment.lease.expire(now)
                        dead.add(str(assignment.endpoint))
                        self._note_endpoint_failure(
                            assignment.endpoint,
                            f"conn-drop: {payload}",
                        )
                        live = [a for a in live if a is not assignment]
                        stale.append(assignment)
                        replacement = self._respawn(
                            assignment, image, parent.space.size, tried,
                            attempts, dead, outcomes, timeline, events,
                            clock, block,
                        )
                        if replacement is not None:
                            live.append(replacement)
            # Wall-clock lease sweep: silence past a deadline is death.
            now = clock()
            for assignment in list(live):
                if assignment.lease.terminal or assignment.finished:
                    continue
                if now >= assignment.lease.deadline:
                    assignment.lease.expire(now)
                    assignment.stale = True
                    timeline.append((
                        now,
                        f"lease of {assignment.arm.name}@"
                        f"{assignment.endpoint.name} expired "
                        f"(epoch {assignment.epoch})",
                    ))
                    live = [a for a in live if a is not assignment]
                    stale.append(assignment)  # stream stays open: fence bait
                    replacement = self._respawn(
                        assignment, image, parent.space.size, tried,
                        attempts, dead, outcomes, timeline, events,
                        clock, block,
                    )
                    if replacement is not None:
                        live.append(replacement)

        now = clock()
        if winner_msg is None:
            # Nothing committed: cancel anything still running, settle
            # every lease, then degrade (or fail) exactly like the
            # simulated executor.
            for assignment in live + stale:
                self._dismiss(assignment, cancel=not assignment.finished)
            self.warden.table.settle(at=now, winner_arm=None)
            if not self.warden.table.all_settled:  # pragma: no cover
                raise AssertionError("leases leaked past settle()")
            reason = self._failure_reason(
                live, stale, attempts, consensus_starved, now
            )
            if self.warden.degrade_to_serial:
                return self._degrade_serial(
                    alternatives, parent, outcomes, timeline, now,
                    reason, block,
                )
            error = AltBlockFailure(reason)
            error.outcomes = outcomes
            error.elapsed = now
            error.timeline = sorted(timeline, key=lambda pair: pair[0])
            raise error

        # ---- winner commit: pages home, losers cancelled --------------
        assert winner_assignment is not None
        commit_started = now
        self._apply_pages(parent, winner_msg.get("dirty_pages") or {})
        index = winner_assignment.index
        timeline.append((now, f"{alternatives[index].name} requests sync"))
        timeline.append((clock(), "parent resumes (state shipped home)"))
        if tracer.enabled:
            tracer.emit(
                _ev.WINNER_COMMIT,
                block=block,
                arm=index,
                name=alternatives[index].name,
                pages=int(winner_msg.get("pages_written") or 0),
                sim_time=now,
                epoch=winner_assignment.epoch,
            )
        outcome = outcomes[index]
        outcome.status = "won"
        outcome.value = winner_msg.get("value")
        outcome.finished_at = now
        outcome.duration = float(winner_msg.get("duration") or 0.0)
        outcome.cpu_consumed = outcome.duration
        outcome.pages_written = int(winner_msg.get("pages_written") or 0)
        self._dismiss(winner_assignment, cancel=False)

        wasted = 0.0
        kill_at = clock()
        for assignment in live + stale:
            if assignment is winner_assignment:
                continue
            if not assignment.finished and not assignment.stale:
                timeline.append(
                    (kill_at,
                     f"kill message to {assignment.endpoint.name}")
                )
                if outcomes[assignment.index].status == "untried":
                    outcomes[assignment.index].status = "eliminated"
                    outcomes[assignment.index].finished_at = kill_at
                if tracer.enabled:
                    tracer.emit(
                        _ev.LOSER_ELIMINATE,
                        block=block,
                        arm=assignment.index,
                        name=alternatives[assignment.index].name,
                        reason="sibling-won",
                    )
            wasted += max(0.0, kill_at - assignment.started)
            self._dismiss(assignment, cancel=not assignment.finished)
        self.warden.table.settle(at=clock(), winner_arm=index)
        if not self.warden.table.all_settled:  # pragma: no cover
            raise AssertionError("leases leaked past settle()")

        elapsed = clock()
        overhead = OverheadBreakdown(
            setup=winner_assignment.started,
            runtime=float(winner_msg.get("duration") or 0.0),
            selection=max(0.0, elapsed - commit_started),
        )
        return AltResult(
            value=winner_msg.get("value"),
            winner=outcome,
            outcomes=outcomes,
            elapsed=elapsed,
            overhead=overhead,
            wasted_work=wasted,
            timeline=sorted(timeline, key=lambda pair: pair[0]),
            page_transport="socket",
        )

    # ------------------------------------------------------------------
    # shipping

    def _ship(
        self, index, arm, image, space_size, tried, attempts, dead,
        outcomes, timeline, events, clock, block,
    ) -> Optional[_Assignment]:
        """Ship one incarnation of ``arm``; None when no endpoint works."""
        tracer = _active_tracer()
        while True:
            endpoint = self._pick_endpoint(index, tried[index], dead)
            if endpoint is None:
                outcomes[index].status = "failed"
                outcomes[index].detail = "no reachable worker node"
                timeline.append(
                    (clock(), f"{arm.name}: no reachable worker node")
                )
                return None
            try:
                stream = connect(
                    endpoint.host, endpoint.port,
                    timeout=self.connect_timeout,
                    name=f"{arm.name}->{endpoint.name}",
                )
                stream = dial_handshake(
                    stream, self._key, timeout=self.connect_timeout
                )
            except (OSError, StreamClosed, AuthError) as exc:
                tried[index].append(str(endpoint))
                dead.add(str(endpoint))
                self._note_endpoint_failure(endpoint, f"dial: {exc}")
                timeline.append(
                    (clock(),
                     f"{arm.name}: ship to {endpoint.name} failed ({exc})")
                )
                continue
            started = clock()
            lease = self.warden.table.grant(
                endpoint.name, index, at=started,
                interval=self.warden.lease_interval,
                timeout=self.warden.lease_timeout,
            )
            shipped = stream.send({
                "kind": "ship",
                "alt": arm,
                "arm": index,
                "epoch": lease.epoch,
                "seed": self.seed,
                "name": arm.name,
                "image": image,
                "space_size": space_size,
                "hb_interval": self.warden.lease_interval,
                "crash_after": self._crash_after(index),
            })
            if not shipped:
                lease.expire(clock())
                stream.close()
                tried[index].append(str(endpoint))
                dead.add(str(endpoint))
                self._note_endpoint_failure(endpoint, "ship-send-failed")
                continue
            self._note_endpoint_success(endpoint)
            # Half-open sends later in the conversation (heartbeats from
            # our side, cancels) feed the same health plumbing.
            underlying = getattr(stream, "stream", stream)
            underlying.on_send_failure = (
                lambda _s, detail, ep=endpoint:
                    self._note_endpoint_failure(ep, detail)
            )
            if tracer.enabled:
                tracer.emit(
                    _ev.CONN_OPEN,
                    block=block,
                    arm=index,
                    name=endpoint.name,
                    peer=f"{endpoint.host}:{endpoint.port}",
                    epoch=lease.epoch,
                )
            timeline.append(
                (started, f"ship {arm.name} onto {endpoint.name} "
                          f"(epoch {lease.epoch})")
            )
            outcomes[index].started_at = started
            assignment = _Assignment(
                index=index,
                arm=arm,
                endpoint=endpoint,
                epoch=lease.epoch,
                lease=lease,
                stream=stream,
                started=started,
            )
            receiver = threading.Thread(
                target=self._receive,
                args=(assignment, events),
                name=f"recv-{arm.name}-e{lease.epoch}",
                daemon=True,
            )
            receiver.start()
            assignment.thread = receiver
            return assignment

    def _respawn(
        self, lapsed: _Assignment, image, space_size, tried, attempts,
        dead, outcomes, timeline, events, clock, block,
    ) -> Optional[_Assignment]:
        """A fresh incarnation on the next endpoint, if respawns remain."""
        index = lapsed.index
        tried[index].append(str(lapsed.endpoint))
        attempts[index] += 1
        if not self.warden.respawns_left(attempts[index]):
            outcomes[index].status = "failed"
            outcomes[index].detail = (
                f"lease expired (epoch {lapsed.epoch}); respawns exhausted"
            )
            return None
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.WORKER_RESPAWN,
                block=block,
                arm=index,
                name=lapsed.arm.name,
                dead_worker=lapsed.endpoint.name,
                dead_epoch=lapsed.epoch,
                epoch=lapsed.epoch + 1,
                at=clock(),
            )
        return self._ship(
            index, lapsed.arm, image, space_size, tried, attempts,
            dead, outcomes, timeline, events, clock, block,
        )

    def _pick_endpoint(
        self, index: int, tried: List[str], dead: Set[str]
    ) -> Optional[WorkerEndpoint]:
        """Round-robin home over the live rotation, breakers respected.

        ``tried``/``dead`` are keyed by the *full* ``name@host:port``
        string, not the bare name -- a daemon that died and re-joined on
        a fresh port is a different endpoint and stays dialable in the
        same race that buried its predecessor.
        """
        everyone = self._rotation()
        if not everyone:
            return None
        start = index % len(everyone)
        rotation = everyone[start:] + everyone[:start]
        candidates = [
            e for e in rotation
            if str(e) not in tried and str(e) not in dead
        ]
        for endpoint in candidates:
            if self._breaker(endpoint).allow():
                return endpoint
        # Every candidate's breaker is open.  The degradation ladder is
        # reroute -> respawn elsewhere -> serial replay; with untried
        # endpoints still on the table we probe one anyway rather than
        # fall straight through to the serial floor.
        return candidates[0] if candidates else None

    def _crash_after(self, index: int) -> Optional[float]:
        """The injected ``worker-crash`` instant for this arm, if any."""
        injector = _active_injector()
        if injector is None:
            return None
        rule = injector.draw("worker-crash", index)
        if rule is None:
            return None
        return rule.duration

    # ------------------------------------------------------------------
    # the receiver side

    def _receive(self, assignment: _Assignment, events) -> None:
        """Pump one assignment's stream into the main event queue."""
        while True:
            try:
                msg = assignment.stream.recv(timeout=0.25)
            except StreamClosed as exc:
                events.put(("drop", assignment, exc))
                return
            if msg is None:
                if assignment.stream.closed:
                    return
                continue
            kind = msg.get("kind")
            if kind == "hb":
                events.put(("hb", assignment, msg))
            elif kind == "result":
                events.put(("result", assignment, msg))
                return

    def _on_heartbeat(self, assignment, msg, now) -> None:
        # A duplicated or reordered heartbeat is harmless: renew() keeps
        # the latest instant, and a stale incarnation's beats fall on an
        # already-terminal lease, which we must not resurrect.
        # Any heartbeat -- even a zombie epoch's -- proves the *endpoint*
        # is alive, so the breaker and membership hear about it.
        self._breaker(assignment.endpoint).record_success()
        if self.membership is not None:
            self.membership.observe_ping(assignment.endpoint.name)
        if assignment.lease.terminal:
            return
        if msg.get("epoch") == assignment.epoch:
            assignment.lease.renew(now)

    def _on_drop(self, assignment, exc, timeline, now, block) -> None:
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.CONN_DROP,
                block=block,
                arm=assignment.index,
                name=assignment.endpoint.name,
                epoch=assignment.epoch,
                torn=bool(getattr(exc, "torn", False)),
                detail=str(exc),
            )
        if not assignment.finished and not assignment.stale:
            timeline.append(
                (now,
                 f"connection to {assignment.endpoint.name} dropped "
                 f"({'torn' if getattr(exc, 'torn', False) else 'closed'})")
            )

    # ------------------------------------------------------------------
    # commit path

    def _commit_check(
        self, assignment: _Assignment, msg: dict
    ) -> Tuple[bool, str]:
        """The epoch fence plus the arm's own verdict."""
        if not msg.get("ok"):
            return False, "arm-failed"
        if assignment.lease.terminal:
            return False, "lease-expired"
        if msg.get("epoch") != assignment.epoch:
            return False, "stale-epoch-fence"
        if assignment.epoch != self.warden.table.current_epoch(
                assignment.index):
            # A newer incarnation superseded this one mid-flight.
            return False, "stale-epoch-fence"
        return True, ""

    def _consensus_round(
        self, semaphore, assignment, timeline, clock
    ) -> Tuple[bool, str]:
        requester = f"arm-{assignment.index}-epoch-{assignment.epoch}"
        try:
            granted = semaphore.try_acquire("block", requester)
        except ConsensusUnavailable as exc:
            timeline.append((clock(), f"consensus unavailable: {exc}"))
            return False, "consensus-unavailable"
        if not granted:
            return False, "consensus-denied"
        timeline.append(
            (clock(),
             f"majority grant to {requester} "
             f"({semaphore.quorum} of {len(semaphore.endpoints)})")
        )
        return True, ""

    def _reject(
        self, assignment, msg, reason, outcomes, timeline, now, block
    ) -> None:
        tracer = _active_tracer()
        name = assignment.arm.name
        if reason in ("stale-epoch-fence", "lease-expired"):
            timeline.append(
                (now,
                 f"zombie {name}@{assignment.endpoint.name} fenced at "
                 f"winner-commit (epoch {assignment.epoch})")
            )
            if tracer.enabled:
                tracer.emit(
                    _ev.LOSER_ELIMINATE,
                    block=block,
                    arm=assignment.index,
                    name=name,
                    reason="stale-epoch-fence",
                    epoch=assignment.epoch,
                )
        elif reason == "arm-failed":
            outcomes[assignment.index].status = "failed"
            outcomes[assignment.index].detail = msg.get("detail") or ""
            outcomes[assignment.index].finished_at = now
            outcomes[assignment.index].cpu_consumed = float(
                msg.get("duration") or 0.0
            )
            timeline.append(
                (now, f"{name}@{assignment.endpoint.name} aborts: "
                      f"{msg.get('detail')}")
            )
        elif reason in ("consensus-denied", "consensus-unavailable"):
            timeline.append(
                (now, f"{name} reached sync but was not granted ({reason})")
            )

    def _dismiss(self, assignment: _Assignment, cancel: bool) -> None:
        """End one conversation: optional cancel record, then close."""
        if cancel:
            assignment.stream.send({"kind": "cancel"})
        assignment.stream.close()
        if assignment.thread is not None:
            assignment.thread.join(timeout=1.0)

    @staticmethod
    def _apply_pages(parent: SimProcess, dirty: Dict[int, bytes]) -> None:
        """'The changed state is updated in the parent's storage.'"""
        page_size = parent.space.page_size
        for vpn in sorted(dirty):
            data = dirty[vpn]
            offset = vpn * page_size
            length = min(len(data), parent.space.size - offset)
            if length > 0:
                parent.space.write(offset, bytes(data[:length]))

    # ------------------------------------------------------------------
    # failure / degradation

    def _failure_reason(
        self, live, stale, attempts, consensus_starved, now
    ) -> str:
        if consensus_starved:
            return "consensus quorum unreachable"
        if now >= self.race_timeout:
            return f"race timed out after {self.race_timeout:.1f}s"
        if not live and not stale:
            return "no worker node was reachable"
        return "all remote alternatives failed"

    def _degrade_serial(
        self, alternatives, parent, outcomes, timeline, clock_now,
        reason, block,
    ) -> AltResult:
        """Serial replay at home, faults suppressed -- the last resort."""
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(_ev.DEGRADE, block=block, reason=reason)
        timeline.append(
            (clock_now, f"degrading to serial replay at home ({reason})")
        )
        executor = SequentialExecutor(
            policy=OrderedPolicy(),
            try_all=True,
            seed=self.seed,
            manager=self.manager,
        )
        try:
            with suppressed():
                replay = executor.run(alternatives, parent=parent)
        except AltBlockFailure as exc:
            exc.timeline = sorted(
                timeline
                + [(clock_now + t, f"[replay] {label}")
                   for t, label in getattr(exc, "timeline", [])],
                key=lambda pair: pair[0],
            )
            exc.elapsed = clock_now + (getattr(exc, "elapsed", 0.0) or 0.0)
            raise
        merged = timeline + [
            (clock_now + t, f"[replay] {label}")
            for t, label in replay.timeline
        ]
        return AltResult(
            value=replay.value,
            winner=replay.winner,
            outcomes=replay.outcomes,
            elapsed=clock_now + replay.elapsed,
            overhead=replay.overhead,
            wasted_work=replay.wasted_work,
            timeline=sorted(merged, key=lambda pair: pair[0]),
        )

    def __repr__(self) -> str:
        return (
            f"ClusterExecutor(endpoints={len(self.endpoints)}, "
            f"seed={self.seed}, consensus={self.use_consensus})"
        )
