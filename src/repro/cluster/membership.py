"""Self-healing cluster membership: who is alive, and how sure are we.

PR 7 wired the cluster off a *static* endpoint list: a SIGKILLed worker
could be respawned, but the home node would never learn the new port --
membership was ambient configuration.  Hayes' argument (PAPERS.md) is
that membership should be a *specified, testable component*; this module
makes it one:

- a :class:`MembershipTable` tracks, per worker: endpoint, incarnation
  epoch, health state (``joining -> healthy -> suspect -> dead``), and
  the heartbeat history a phi-accrual failure detector needs;
- a :class:`MembershipServer` on the home node accepts authenticated
  ``join``/``ping``/``leave`` gossip frames over the ordinary
  :class:`~repro.cluster.stream.RecordStream` wire (HMAC envelopes when
  a cluster secret is configured -- a tampered or unauthenticated frame
  can *never* touch the table);
- a :class:`MembershipAnnouncer` runs inside each worker daemon: it
  announces the daemon on start, gossips periodic pings, says goodbye on
  graceful stop, and -- the whole point -- *re-announces after a respawn*,
  so a brand-new or restarted daemon re-enters the
  :class:`~repro.cluster.executor.ClusterExecutor` rotation without any
  home-node restart.

Failure detection is deliberately two-channel:

- **phi accrual** over gossip inter-arrival times: with mean interval
  ``m`` and silence ``t``, ``phi = log10(e) * t / m`` (the exponential
  simplification of Hayashibara et al.).  ``phi >= suspect_phi`` turns a
  member ``suspect``; ``phi >= dead_phi`` declares it ``dead``.  The
  thresholds are *mean-interval multiples*, so a slow CI box that slows
  everything down uniformly does not fake a death;
- **direct evidence** from the data path: every failed connect, ship,
  or half-open send is fed in via :meth:`MembershipTable.observe_failure`
  and escalates suspicion faster than silence alone -- but still through
  the same suspect-before-dead ladder, never straight to ``dead`` on a
  single error.

A ``dead`` verdict is not a tombstone: a fresh ``join`` (new endpoint or
epoch) resurrects the member as ``joining``/``healthy``.  That is the
self-healing loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.auth import load_secret, serve_handshake
from repro.cluster.stream import RecordStream, StreamClosed, connect, listener
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer

#: Membership lifecycle states (``dead`` is exit-able via a fresh join).
MEMBER_STATES = ("joining", "healthy", "suspect", "dead")

#: log10(e): the exponential-distribution phi simplification constant.
_PHI_FACTOR = 0.4342944819032518

#: How many gossip inter-arrival samples the detector remembers.
_WINDOW = 32


@dataclass
class MemberRecord:
    """One worker's membership row."""

    name: str
    host: str
    port: int
    epoch: int
    """The daemon's incarnation id; a re-join with a different epoch (or
    endpoint) is a *new* incarnation, not a resurrection of the old."""

    state: str = "joining"
    joined_at: float = 0.0
    last_heard: float = 0.0
    pings: int = 0
    failures: int = 0
    """Consecutive data-path failures reported against this member."""

    intervals: List[float] = field(default_factory=list)
    """Recent gossip inter-arrival gaps (the phi detector's sample)."""

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def mean_interval(self, floor: float) -> float:
        if not self.intervals:
            return floor
        return max(sum(self.intervals) / len(self.intervals), floor)

    def phi(self, now: float, floor: float) -> float:
        """Suspicion level: how implausible is the current silence?"""
        silence = max(0.0, now - self.last_heard)
        return _PHI_FACTOR * silence / self.mean_interval(floor)

    def __repr__(self) -> str:
        return (
            f"MemberRecord({self.name!r}, {self.host}:{self.port}, "
            f"epoch={self.epoch}, {self.state})"
        )


class MembershipTable:
    """The home node's (or a mirror's) book of cluster members."""

    def __init__(
        self,
        gossip_interval: float = 0.2,
        suspect_phi: float = 1.2,
        dead_phi: float = 3.0,
        fail_suspect: int = 3,
        fail_dead: int = 6,
        clock=time.monotonic,
        owner: str = "home",
    ) -> None:
        if not 0 < suspect_phi < dead_phi:
            raise ValueError("need 0 < suspect_phi < dead_phi")
        if not 0 < fail_suspect < fail_dead:
            raise ValueError("need 0 < fail_suspect < fail_dead")
        self.gossip_interval = gossip_interval
        self.suspect_phi = suspect_phi
        self.dead_phi = dead_phi
        self.fail_suspect = fail_suspect
        self.fail_dead = fail_dead
        self.owner = owner
        self._clock = clock
        self._lock = threading.RLock()
        self._members: Dict[str, MemberRecord] = {}
        self.version = 0
        """Bumped on every mutation; mirrors compare versions."""

        self.on_change: Optional[Callable[["MembershipTable"], None]] = None
        """Called (outside the lock) after joins/leaves/deaths -- the
        mirror-push hook."""

    # ------------------------------------------------------------------
    # observations

    def observe_join(
        self, name: str, host: str, port: int, epoch: int,
        now: Optional[float] = None,
    ) -> MemberRecord:
        """An authenticated ``join`` announcement (new or re-join)."""
        at = self._clock() if now is None else now
        with self._lock:
            prior = self._members.get(name)
            rejoin = prior is not None
            record = MemberRecord(
                name=name, host=host, port=port, epoch=epoch,
                state="healthy", joined_at=at, last_heard=at,
            )
            self._members[name] = record
            self.version += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.MEMBER_JOIN,
                name=name,
                peer=f"{host}:{port}",
                epoch=epoch,
                rejoin=rejoin,
                prior_state=prior.state if prior is not None else "",
            )
        self._changed()
        return record

    def observe_ping(
        self, name: str, epoch: Optional[int] = None,
        now: Optional[float] = None,
    ) -> bool:
        """A gossip heartbeat; ``False`` when the member is unknown (the
        announcer should re-join) or the epoch is stale."""
        at = self._clock() if now is None else now
        with self._lock:
            record = self._members.get(name)
            if record is None or record.state == "dead":
                return False
            if epoch is not None and epoch != record.epoch:
                return False  # a zombie incarnation's gossip: ignored
            gap = at - record.last_heard
            if gap > 0:
                record.intervals.append(gap)
                del record.intervals[:-_WINDOW]
            record.last_heard = at
            record.pings += 1
            record.failures = 0
            if record.state in ("joining", "suspect"):
                record.state = "healthy"
                self.version += 1
        return True

    def observe_leave(
        self, name: str, now: Optional[float] = None
    ) -> None:
        """A graceful goodbye: straight to ``dead``, no suspicion lap."""
        at = self._clock() if now is None else now
        self._declare_dead(name, at, reason="leave")

    def observe_failure(
        self, name: str, detail: str = "", now: Optional[float] = None
    ) -> str:
        """Data-path evidence (failed connect/ship/half-open send).

        Returns the member's state after the evidence lands.  Escalates
        ``healthy -> suspect`` after ``fail_suspect`` consecutive
        failures and ``suspect -> dead`` after ``fail_dead`` -- the
        retry-with-backoff ladder, never a one-strike death.
        """
        at = self._clock() if now is None else now
        with self._lock:
            record = self._members.get(name)
            if record is None:
                return "unknown"
            if record.state == "dead":
                return "dead"
            record.failures += 1
            failures = record.failures
            state = record.state
        if failures >= self.fail_dead:
            self._declare_dead(name, at, reason=f"failures({detail})")
            return "dead"
        if failures >= self.fail_suspect and state == "healthy":
            self._suspect(name, at, reason=f"failures({detail})")
            return "suspect"
        return state

    # ------------------------------------------------------------------
    # the sweep (phi accrual)

    def sweep(self, now: Optional[float] = None) -> List[Tuple[str, str, str]]:
        """Apply phi-accrual transitions; returns (name, old, new) rows."""
        at = self._clock() if now is None else now
        transitions: List[Tuple[str, str, str]] = []
        with self._lock:
            candidates = [
                r for r in self._members.values() if r.state != "dead"
            ]
        for record in candidates:
            phi = record.phi(at, self.gossip_interval)
            if phi >= self.dead_phi:
                if record.state != "dead":
                    old = record.state
                    self._declare_dead(
                        record.name, at, reason=f"phi={phi:.2f}"
                    )
                    transitions.append((record.name, old, "dead"))
            elif phi >= self.suspect_phi:
                if record.state == "healthy":
                    self._suspect(record.name, at, reason=f"phi={phi:.2f}")
                    transitions.append((record.name, "healthy", "suspect"))
        return transitions

    def _suspect(self, name: str, at: float, reason: str) -> None:
        with self._lock:
            record = self._members.get(name)
            if record is None or record.state in ("suspect", "dead"):
                return
            record.state = "suspect"
            self.version += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.MEMBER_SUSPECT,
                name=name,
                reason=reason,
                failures=record.failures,
            )

    def _declare_dead(self, name: str, at: float, reason: str) -> None:
        with self._lock:
            record = self._members.get(name)
            if record is None or record.state == "dead":
                return
            record.state = "dead"
            self.version += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.MEMBER_DEAD,
                name=name,
                peer=f"{record.host}:{record.port}",
                epoch=record.epoch,
                reason=reason,
            )
        self._changed()

    def _changed(self) -> None:
        hook = self.on_change
        if hook is not None:
            try:
                hook(self)
            except Exception:  # pragma: no cover - mirror is best-effort
                pass

    # ------------------------------------------------------------------
    # queries

    def get(self, name: str) -> Optional[MemberRecord]:
        with self._lock:
            return self._members.get(name)

    def members(self) -> List[MemberRecord]:
        with self._lock:
            return list(self._members.values())

    def alive(self) -> List[MemberRecord]:
        """Members worth shipping to, preference-ordered: healthy and
        joining first, suspects as a last resort, the dead never."""
        rank = {"healthy": 0, "joining": 1, "suspect": 2}
        with self._lock:
            rows = [r for r in self._members.values() if r.state != "dead"]
        return sorted(rows, key=lambda r: (rank[r.state], r.name))

    def snapshot(self) -> dict:
        """A picklable mirror of the table (what the router holds)."""
        with self._lock:
            return {
                "owner": self.owner,
                "version": self.version,
                "members": [
                    {
                        "name": r.name,
                        "host": r.host,
                        "port": r.port,
                        "epoch": r.epoch,
                        "state": r.state,
                        "pings": r.pings,
                    }
                    for r in self._members.values()
                ],
            }

    def load_snapshot(self, snap: dict) -> None:
        """Adopt a pushed snapshot wholesale (mirror semantics: the
        owner's view wins; a mirror never argues)."""
        if not isinstance(snap, dict):
            return
        rows = snap.get("members")
        if not isinstance(rows, list):
            return
        at = self._clock()
        with self._lock:
            self._members = {
                row["name"]: MemberRecord(
                    name=row["name"],
                    host=row["host"],
                    port=row["port"],
                    epoch=int(row["epoch"]),
                    state=row["state"],
                    joined_at=at,
                    last_heard=at,
                    pings=int(row.get("pings", 0)),
                )
                for row in rows
                if isinstance(row, dict) and row.get("state") in MEMBER_STATES
            }
            self.version = int(snap.get("version", self.version + 1))

    def __repr__(self) -> str:
        states = {}
        for record in self.members():
            states[record.state] = states.get(record.state, 0) + 1
        return f"MembershipTable(v{self.version}, {states})"


# ----------------------------------------------------------------------
# the home node's gossip listener

class MembershipServer:
    """Accepts authenticated join/ping/leave gossip on a TCP port."""

    def __init__(
        self,
        table: Optional[MembershipTable] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        secret=None,
        mirror: Optional[Tuple[str, int]] = None,
        sweep_interval: float = 0.1,
    ) -> None:
        self.table = table if table is not None else MembershipTable()
        self.host = host
        self.port = port
        self._key = load_secret(secret)
        self.mirror = mirror
        self.sweep_interval = sweep_interval
        self._listener = None
        self._stopping = threading.Event()
        self._threads: List[threading.Thread] = []
        self.frames_rejected = 0
        self.joins = 0
        if mirror is not None:
            self.table.on_change = self._push_mirror

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    def start(self) -> Tuple[str, int]:
        self._listener, self.host, self.port = listener(self.host, self.port)
        for target, name in (
            (self._accept_loop, "membership-accept"),
            (self._sweep_loop, "membership-sweep"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        return self.host, self.port

    def stop(self) -> None:
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    def __enter__(self) -> "MembershipServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            handler = threading.Thread(
                target=self._handle_conn,
                args=(RecordStream(sock, name="membership"),),
                name="membership-conn",
                daemon=True,
            )
            handler.start()
            # Reap finished handlers as we go: announcer redial churn
            # would otherwise grow this list for the life of the home
            # node.
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(handler)

    def _sweep_loop(self) -> None:
        while not self._stopping.wait(self.sweep_interval):
            self.table.sweep()

    def _handle_conn(self, raw: RecordStream) -> None:
        try:
            stream = serve_handshake(raw, self._key)
        except StreamClosed:
            raw.close()
            return
        try:
            while not self._stopping.is_set():
                try:
                    msg = stream.recv(timeout=0.1)
                except StreamClosed:
                    # Includes auth rejections: the wrapper already
                    # emitted the auth-reject event and closed.
                    self.frames_rejected += getattr(stream, "rejects", 0)
                    return
                if msg is None:
                    continue
                self._apply(stream, msg)
        finally:
            stream.close()

    def _apply(self, stream, msg: dict) -> None:
        kind = msg.get("kind")
        if kind == "join":
            name = msg.get("node")
            host, port = msg.get("host"), msg.get("port")
            epoch = msg.get("epoch")
            if not (isinstance(name, str) and isinstance(host, str)
                    and isinstance(port, int) and isinstance(epoch, int)):
                return  # a malformed (but authentic) frame changes nothing
            self.table.observe_join(name, host, port, epoch)
            self.joins += 1
            stream.send({"kind": "join-ack", "node": name})
        elif kind == "ping":
            name = msg.get("node")
            if isinstance(name, str):
                known = self.table.observe_ping(name, msg.get("epoch"))
                if not known:
                    # The member should re-announce (e.g. the home node
                    # restarted and lost the table).
                    stream.send({"kind": "rejoin-please", "node": name})
        elif kind == "leave":
            name = msg.get("node")
            if isinstance(name, str):
                self.table.observe_leave(name)
        # unknown kinds ignored (forward compatibility)

    def _push_mirror(self, table: MembershipTable) -> None:
        """Best-effort snapshot push to the mirroring router daemon."""
        if self.mirror is None:
            return
        try:
            from repro.cluster.router_service import RouterClient

            with RouterClient(
                self.mirror[0], self.mirror[1], timeout=1.0
            ) as client:
                client.sync_members(table.snapshot())
        except Exception:  # noqa: BLE001 - the mirror is advisory
            pass

    def __repr__(self) -> str:
        return (
            f"MembershipServer({self.host}:{self.port}, "
            f"authed={self._key is not None}, {self.table!r})"
        )


# ----------------------------------------------------------------------
# the worker side: announce, gossip, re-announce

class MembershipAnnouncer:
    """One daemon's gossip thread: join on start, ping forever, leave
    on graceful stop, re-dial (and re-join) whenever the home vanishes."""

    def __init__(
        self,
        node_id: str,
        advertise: Tuple[str, int],
        join_addr: Tuple[str, int],
        epoch: int,
        secret=None,
        interval: float = 0.2,
    ) -> None:
        self.node_id = node_id
        self.advertise = advertise
        self.join_addr = join_addr
        self.epoch = epoch
        self.interval = interval
        self._key = load_secret(secret)
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.joins_sent = 0
        self.pings_sent = 0

    def start(self) -> None:
        self._thread = threading.Thread(
            target=self._loop, name=f"announce-{self.node_id}", daemon=True
        )
        self._thread.start()

    def stop(self, leave: bool = True) -> None:
        """Stop gossiping; ``leave=True`` says a polite goodbye first.
        An abrupt stop (``leave=False``) models a crash: the home node
        must *detect* the death instead of being told."""
        self._stopping.set()
        if leave:
            self._send_leave()
        if self._thread is not None:
            self._thread.join(timeout=1.0)

    # ------------------------------------------------------------------

    def _dial(self):
        from repro.cluster.auth import dial_handshake

        raw = connect(
            self.join_addr[0], self.join_addr[1],
            timeout=1.0, name=f"gossip-{self.node_id}",
        )
        return dial_handshake(raw, self._key)

    def _loop(self) -> None:
        backoff = 0.05
        while not self._stopping.is_set():
            try:
                stream = self._dial()
            except Exception:  # noqa: BLE001 - redial with backoff
                if self._stopping.wait(backoff):
                    return
                backoff = min(backoff * 2, 1.0)
                continue
            backoff = 0.05
            try:
                self._converse(stream)
            finally:
                stream.close()

    def _converse(self, stream) -> None:
        host, port = self.advertise
        if not stream.send({
            "kind": "join",
            "node": self.node_id,
            "host": host,
            "port": port,
            "epoch": self.epoch,
        }):
            return
        self.joins_sent += 1
        # Await the ack (bounded); a silent home is a redial.
        try:
            ack = stream.recv(timeout=1.0)
        except StreamClosed:
            return
        if ack is None or ack.get("kind") != "join-ack":
            return
        while not self._stopping.wait(self.interval):
            if not stream.send({
                "kind": "ping",
                "node": self.node_id,
                "epoch": self.epoch,
            }):
                return  # half-open: redial and re-join
            self.pings_sent += 1
            try:
                note = stream.recv(timeout=0.001)
            except StreamClosed:
                return
            if note is not None and note.get("kind") == "rejoin-please":
                return  # drop back to the dial loop, which re-joins

    def _send_leave(self) -> None:
        try:
            stream = self._dial()
        except Exception:  # noqa: BLE001 - goodbye is best-effort
            return
        try:
            stream.send({"kind": "leave", "node": self.node_id})
        finally:
            stream.close()

    def __repr__(self) -> str:
        return (
            f"MembershipAnnouncer({self.node_id!r}, epoch={self.epoch}, "
            f"joins={self.joins_sent}, pings={self.pings_sent})"
        )
