"""Real-wire HA cluster runtime (localhost-first, multi-host-capable).

Everything the chaos-hardened distributed race does on the simulated
substrate -- arm shipment, heartbeat leases, incarnation-epoch fencing,
majority-consensus synchronization, router journal replay -- runs here on
*real* TCP sockets between *real* OS processes:

- :mod:`repro.cluster.stream` frames records over sockets with the exact
  ``core/backends/wire.py`` format the fork children and pool workers
  already speak (a torn shipment is detected, never half-parsed);
- :mod:`repro.cluster.daemon` is the worker daemon: it accepts arm
  shipments, executes them in COW worlds of the shipped parent image,
  heartbeats while the body runs, ships dirty pages home, answers
  majority-consensus vote requests, and survives SIGTERM/EINTR without
  leaking sockets or shared-memory segments;
- :mod:`repro.cluster.proxy` replays the seeded ``CHAOS_SCENARIOS`` on
  the real wire: a frame-aware impairment proxy drops, duplicates,
  reorders, delays, and partitions framed traffic deterministically;
- :mod:`repro.cluster.executor` is the home-node race driver (the socket
  transport of :class:`~repro.net.distributed.DistributedAltExecutor`):
  leases over real heartbeat connections, SIGKILLed daemons detected by
  connection drop or lease expiry and re-spawned under a fresh epoch,
  healed-partition zombies fenced at winner-commit, degradation to a
  home-node serial replay when the cluster cannot answer;
- :mod:`repro.cluster.semaphore` runs the Thomas-1979 majority-consensus
  0-1 semaphore (paper section 3.4) across the worker daemons' voter
  endpoints instead of in-process node objects;
- :mod:`repro.cluster.router_service` makes `RouterJournal`-backed crash
  restart a live service: the router daemon journals write-ahead to disk
  and a SIGKILLed incarnation is rebuilt by replay on restart;
- :mod:`repro.cluster.auth` puts HMAC-SHA256 envelopes (nonce-bound,
  replay-fenced) under every cluster conversation when a shared secret
  is configured -- the prerequisite for binding beyond loopback;
- :mod:`repro.cluster.membership` is the self-healing piece: a
  phi-accrual :class:`MembershipTable` on the home node, an
  authenticated join/ping/leave gossip server, and the in-daemon
  announcer through which a respawned worker re-enters the executor's
  rotation with no home-node restart.

``python -m repro cluster {worker,router,demo}`` is the operational
surface (see :mod:`repro.cluster.cli`).
"""

from repro.cluster.auth import (
    AuthedStream,
    AuthError,
    SECRET_ENV,
    dial_handshake,
    generate_secret,
    load_secret,
    serve_handshake,
)
from repro.cluster.daemon import WorkerDaemon
from repro.cluster.membership import (
    MEMBER_STATES,
    MemberRecord,
    MembershipAnnouncer,
    MembershipServer,
    MembershipTable,
)
from repro.cluster.executor import ClusterExecutor, WorkerEndpoint
from repro.cluster.proxy import ImpairmentProxy
from repro.cluster.router_service import RouterClient, RouterDaemon
from repro.cluster.semaphore import ClusterMajoritySemaphore
from repro.cluster.spawn import (
    DaemonHandle,
    respawn_worker,
    spawn_router,
    spawn_worker,
)
from repro.cluster.stream import RecordStream, StreamClosed, connect

__all__ = [
    "AuthError",
    "AuthedStream",
    "ClusterExecutor",
    "ClusterMajoritySemaphore",
    "DaemonHandle",
    "ImpairmentProxy",
    "MEMBER_STATES",
    "MemberRecord",
    "MembershipAnnouncer",
    "MembershipServer",
    "MembershipTable",
    "RecordStream",
    "RouterClient",
    "RouterDaemon",
    "SECRET_ENV",
    "StreamClosed",
    "WorkerDaemon",
    "WorkerEndpoint",
    "connect",
    "dial_handshake",
    "generate_secret",
    "load_secret",
    "respawn_worker",
    "serve_handshake",
    "spawn_router",
    "spawn_worker",
]
