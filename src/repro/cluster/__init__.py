"""Real-wire HA cluster runtime (localhost-first, multi-host-capable).

Everything the chaos-hardened distributed race does on the simulated
substrate -- arm shipment, heartbeat leases, incarnation-epoch fencing,
majority-consensus synchronization, router journal replay -- runs here on
*real* TCP sockets between *real* OS processes:

- :mod:`repro.cluster.stream` frames records over sockets with the exact
  ``core/backends/wire.py`` format the fork children and pool workers
  already speak (a torn shipment is detected, never half-parsed);
- :mod:`repro.cluster.daemon` is the worker daemon: it accepts arm
  shipments, executes them in COW worlds of the shipped parent image,
  heartbeats while the body runs, ships dirty pages home, answers
  majority-consensus vote requests, and survives SIGTERM/EINTR without
  leaking sockets or shared-memory segments;
- :mod:`repro.cluster.proxy` replays the seeded ``CHAOS_SCENARIOS`` on
  the real wire: a frame-aware impairment proxy drops, duplicates,
  reorders, delays, and partitions framed traffic deterministically;
- :mod:`repro.cluster.executor` is the home-node race driver (the socket
  transport of :class:`~repro.net.distributed.DistributedAltExecutor`):
  leases over real heartbeat connections, SIGKILLed daemons detected by
  connection drop or lease expiry and re-spawned under a fresh epoch,
  healed-partition zombies fenced at winner-commit, degradation to a
  home-node serial replay when the cluster cannot answer;
- :mod:`repro.cluster.semaphore` runs the Thomas-1979 majority-consensus
  0-1 semaphore (paper section 3.4) across the worker daemons' voter
  endpoints instead of in-process node objects;
- :mod:`repro.cluster.router_service` makes `RouterJournal`-backed crash
  restart a live service: the router daemon journals write-ahead to disk
  and a SIGKILLed incarnation is rebuilt by replay on restart.

``python -m repro cluster {worker,router,demo}`` is the operational
surface (see :mod:`repro.cluster.cli`).
"""

from repro.cluster.daemon import WorkerDaemon
from repro.cluster.executor import ClusterExecutor, WorkerEndpoint
from repro.cluster.proxy import ImpairmentProxy
from repro.cluster.router_service import RouterClient, RouterDaemon
from repro.cluster.semaphore import ClusterMajoritySemaphore
from repro.cluster.spawn import (
    DaemonHandle,
    respawn_worker,
    spawn_router,
    spawn_worker,
)
from repro.cluster.stream import RecordStream, StreamClosed, connect

__all__ = [
    "ClusterExecutor",
    "ClusterMajoritySemaphore",
    "DaemonHandle",
    "ImpairmentProxy",
    "RecordStream",
    "RouterClient",
    "RouterDaemon",
    "StreamClosed",
    "WorkerDaemon",
    "WorkerEndpoint",
    "connect",
    "respawn_worker",
    "spawn_router",
    "spawn_worker",
]
