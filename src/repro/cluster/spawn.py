"""Spawning real daemon processes (and killing them on purpose).

The in-thread daemons of :mod:`repro.cluster.daemon` exercise every
protocol path over real sockets, but some failures only exist between
OS processes: SIGKILL with no goodbye, SIGTERM racing a shutdown hook,
a kernel resetting the dead process's connections.  The helpers here
launch ``python -m repro cluster worker|router`` as genuine child
processes and hand back a :class:`DaemonHandle` the tests can murder.

The port handshake is a file: the child binds port 0, writes
``host:port`` to ``--port-file``, and the parent polls for it -- no
stdout parsing, no fixed ports, no collisions between parallel test
runs.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional, Tuple

from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer

#: How long to wait for a child daemon to write its port file.
_SPAWN_TIMEOUT = 10.0


class DaemonHandle:
    """One live daemon child process and its bound address."""

    def __init__(
        self,
        process: subprocess.Popen,
        host: str,
        port: int,
        name: str,
        port_file: str,
    ) -> None:
        self.process = process
        self.host = host
        self.port = port
        self.name = name
        self._port_file = port_file

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL: no goodbye, no cleanup -- the failure under test."""
        if self.alive:
            self.process.kill()
        self.process.wait(timeout=5.0)

    def terminate(self) -> None:
        """SIGTERM: the polite shutdown the daemon's handler drains."""
        if self.alive:
            self.process.terminate()

    def stop(self, timeout: float = 5.0) -> int:
        """Terminate, wait, escalate to SIGKILL if the grace expires."""
        self.terminate()
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self.process.kill()
            return self.process.wait(timeout=5.0)

    def cleanup(self) -> None:
        try:
            os.unlink(self._port_file)
        except OSError:
            pass

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (
            f"DaemonHandle({self.name!r}, pid={self.pid}, "
            f"{self.host}:{self.port}, {state})"
        )


def _spawn(
    args: List[str], name: str, secret: Optional[str] = None
) -> DaemonHandle:
    fd, port_file = tempfile.mkstemp(prefix=f"repro-{name}-", suffix=".port")
    os.close(fd)
    os.unlink(port_file)  # the child creates it; its absence is the gate
    env = dict(os.environ)
    if secret is not None:
        # The shared key rides the environment, never argv: ``ps`` on a
        # multi-user box must not read the cluster secret.
        from repro.cluster.auth import SECRET_ENV

        env[SECRET_ENV] = secret
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    env["PYTHONPATH"] = os.pathsep.join(
        [src_root] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
                      if p]
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster"] + args
        + ["--port-file", port_file],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,
    )
    deadline = time.monotonic() + _SPAWN_TIMEOUT
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon {name!r} died during startup "
                f"(exit {process.returncode})"
            )
        try:
            with open(port_file) as handle:
                text = handle.read().strip()
        except OSError:
            text = ""
        if text:
            host, port = text.rsplit(":", 1)
            return DaemonHandle(process, host, int(port), name, port_file)
        time.sleep(0.02)
    process.kill()
    raise RuntimeError(f"daemon {name!r} never wrote its port file")


def spawn_worker(
    node_id: str = "worker",
    hard_crash: bool = True,
    join: Optional[Tuple[str, int]] = None,
    secret: Optional[str] = None,
    gossip_interval: Optional[float] = None,
) -> DaemonHandle:
    """Launch one worker daemon child; returns once it is dialable.

    ``hard_crash=True`` arms the genuine-SIGKILL response to injected
    ``crash_after`` shipments -- the whole point of paying the process
    spawn cost.  ``join=(host, port)`` points the daemon at the home
    node's membership server: it announces itself on start (and a
    respawn announces its *new* port, which is the whole re-join story).
    ``secret`` rides the child's environment, arming HMAC auth.
    """
    args = ["worker", "--node-id", node_id, "--port", "0"]
    if hard_crash:
        args.append("--hard-crash")
    if join is not None:
        args += ["--join", f"{join[0]}:{join[1]}"]
    if gossip_interval is not None:
        args += ["--gossip-interval", str(gossip_interval)]
    return _spawn(args, node_id, secret=secret)


def respawn_worker(
    dead: DaemonHandle,
    join: Optional[Tuple[str, int]] = None,
    secret: Optional[str] = None,
    gossip_interval: Optional[float] = None,
) -> DaemonHandle:
    """A fresh daemon process replacing a killed one (same node id)."""
    handle = spawn_worker(
        node_id=dead.name, hard_crash=True, join=join, secret=secret,
        gossip_interval=gossip_interval,
    )
    tracer = _active_tracer()
    if tracer.enabled:
        tracer.emit(
            _ev.DAEMON_RESPAWN,
            name=dead.name,
            pid=handle.pid,
            peer=f"{handle.host}:{handle.port}",
        )
    return handle


def spawn_router(journal_path: str) -> DaemonHandle:
    """Launch one router daemon child journaling to ``journal_path``."""
    return _spawn(
        ["router", "--journal", journal_path, "--port", "0"], "router"
    )
