"""The worker daemon: one node of the real-wire cluster.

A :class:`WorkerDaemon` is what the simulated network called a "worker
node", promoted to a real OS process listening on a real TCP port.  Per
connection it speaks the framed-record protocol of
:mod:`repro.cluster.stream`; the message kinds are:

- ``ping`` -> ``pong`` (liveness probe, used by spawners);
- ``vote`` -> ``vote-reply``: the daemon is one voter of the
  majority-consensus 0-1 semaphore (section 3.4, Thomas 1979); its
  per-decision grant is irrevocable for the daemon's lifetime, and a
  SIGKILLed daemon simply stops answering -- the quorum arithmetic of
  :class:`~repro.cluster.semaphore.ClusterMajoritySemaphore` absorbs it;
- ``ship``: one arm shipment.  The daemon restores the shipped parent
  image into a fresh paged address space, ``alt_spawn``\\ s a COW child,
  runs the arm's body and guards exactly as the home node would
  (:func:`repro.core.sequential._run_body`), heartbeats on the
  connection while the body runs, and ships the child's dirty pages
  home in the result record -- the paper's "the changed state is updated
  in the parent's storage", over a socket;
- ``cancel``: the section 3.2.1 termination instruction, delivered to
  the running body through its cooperative
  :class:`~repro.core.backends.base.CancellationToken`.

Robustness contract (the reason this module exists):

- SIGTERM sets a flag and lets blocking calls resume (PEP 475); in
  flight arms are cancelled, the listener closes, and shutdown runs the
  shared-memory audit (:func:`repro.pages.shm.cleanup_all_slabs` +
  :func:`~repro.pages.shm.orphaned_segments`) so a politely stopped
  daemon can never leak ``/dev/shm`` segments;
- a client that vanishes mid-race (half-open connection, EPIPE on a
  heartbeat) orphans the arm: the body is cancelled and the world
  released -- the worker-side lease-lapse self-termination of
  :mod:`repro.net.lease`, enforced by the wire itself;
- a shipment that dies mid-frame is detected by the stream's reader and
  closes the conversation; the daemon never acts on a torn record.
"""

from __future__ import annotations

import os
import secrets as _secrets
import signal
import threading
import time
from typing import Dict, Optional, Tuple

from repro.consensus.node import ConsensusNode
from repro.core.alternative import AltContext, Alternative
from repro.core.backends.base import CancellationToken
from repro.core.sequential import _run_body
from repro.cluster.auth import load_secret, serve_handshake
from repro.cluster.stream import RecordStream, StreamClosed, listener
from repro.errors import ConsensusUnavailable
from repro.pages.shm import cleanup_all_slabs, orphaned_segments
from repro.pages.store import PageStore
from repro.process.primitives import ProcessManager

#: How long a stopping daemon waits for in-flight arm threads.
_STOP_GRACE = 2.0


class WorkerDaemon:
    """One cluster worker: arm executor + consensus voter on a socket."""

    def __init__(
        self,
        node_id: str = "worker",
        host: str = "127.0.0.1",
        port: int = 0,
        hb_interval: float = 0.05,
        allow_hard_crash: bool = False,
        process_owner: bool = False,
        secret=None,
        join_addr: Optional[Tuple[str, int]] = None,
        gossip_interval: float = 0.2,
        epoch: Optional[int] = None,
    ) -> None:
        self.node_id = node_id
        self.hb_interval = hb_interval
        self.allow_hard_crash = allow_hard_crash
        self.process_owner = process_owner
        """True when this daemon owns its OS process (the CLI mode): its
        shutdown may reclaim every owned shm slab.  In-process daemons
        (tests) must not -- the host process's live slabs are not theirs
        to destroy."""
        """When true (the subprocess CLI mode), an injected
        ``crash_after`` SIGKILLs the whole daemon -- a real mid-arm
        death.  In-process daemons (tests) emulate the crash at
        connection grain instead of killing the host process."""

        self.voter = ConsensusNode(node_id)
        self.host = host
        self.port = port
        self._key = load_secret(secret)
        self.join_addr = join_addr
        """``(host, port)`` of the home node's membership server; when
        set, the daemon announces itself on start and gossips pings --
        the mechanism by which a respawned daemon re-enters the executor
        rotation with no home-node restart."""
        self.gossip_interval = gossip_interval
        self.epoch = (
            epoch if epoch is not None
            else (os.getpid() << 16) | _secrets.randbits(16)
        )
        """Incarnation id: a respawn gets a new epoch, so the membership
        table can tell this daemon from its predecessor of the same name."""
        self._announcer = None
        self._listener = None
        self._stopping = threading.Event()
        self._threads: list = []
        self._inflight: Dict[int, CancellationToken] = {}
        self._inflight_lock = threading.Lock()
        self._next_ship = 0
        self.arms_run = 0
        self.arms_cancelled = 0
        self.arms_orphaned = 0
        self.auth_rejects = 0
        self.shm_leaks_at_shutdown: Tuple[str, ...] = ()
        self.shm_leaks_after_orphan: Tuple[str, ...] = ()
        # Segments predating this daemon are someone else's corpse; the
        # shutdown audit reports only what appeared on our watch.
        self._shm_baseline = frozenset(orphaned_segments())

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> Tuple[str, int]:
        """Bind and serve in background threads; returns the address."""
        self._listener, self.host, self.port = listener(self.host, self.port)
        accept = threading.Thread(
            target=self._accept_loop,
            name=f"daemon-{self.node_id}",
            daemon=True,
        )
        accept.start()
        self._threads.append(accept)
        if self.join_addr is not None:
            from repro.cluster.membership import MembershipAnnouncer

            self._announcer = MembershipAnnouncer(
                self.node_id,
                advertise=(self.host, self.port),
                join_addr=self.join_addr,
                epoch=self.epoch,
                secret=self._key,
                interval=self.gossip_interval,
            )
            self._announcer.start()
        return self.host, self.port

    def serve_forever(self) -> None:
        """Blocking serve (the CLI entry point); returns after stop()."""
        if self._listener is None:
            self.start()
        while not self._stopping.wait(0.1):
            pass

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT set the stop flag -- handlers never raise, so
        EINTR'd syscalls resume (PEP 475) and loops drain cleanly."""

        def _stop(signum, frame):  # pragma: no cover - signal path
            self.stop()

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)

    def stop(self, leave: bool = True) -> None:
        """Graceful shutdown: cancel arms, close sockets, audit shm.

        ``leave=False`` skips the membership goodbye -- the in-process
        way to model an abrupt death (the home node must *detect* it
        through suspicion instead of being told).
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._announcer is not None:
            self._announcer.stop(leave=leave)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._inflight_lock:
            tokens = list(self._inflight.values())
        for token in tokens:
            token.cancel()
        deadline = time.monotonic() + _STOP_GRACE
        with self._inflight_lock:
            pending = dict(self._inflight)
        while pending and time.monotonic() < deadline:
            time.sleep(0.01)
            with self._inflight_lock:
                pending = dict(self._inflight)
        # The shutdown audit: reclaim owned slabs (only when the process
        # is ours to clean), then record anything still carrying our
        # prefix (a leak a test or operator can see).
        if self.process_owner:
            cleanup_all_slabs()
        self.shm_leaks_at_shutdown = tuple(
            sorted(set(orphaned_segments()) - self._shm_baseline)
        )

    @property
    def stopping(self) -> bool:
        return self._stopping.is_set()

    # ------------------------------------------------------------------
    # connection handling

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            handler = threading.Thread(
                target=self._handle_conn,
                args=(RecordStream(sock, name=self.node_id),),
                name=f"daemon-{self.node_id}-conn",
                daemon=True,
            )
            handler.start()
            # Reap finished handlers as we go; connection churn must
            # not grow this list for the life of the daemon.
            self._threads = [t for t in self._threads if t.is_alive()]
            self._threads.append(handler)

    def _handle_conn(self, raw: RecordStream) -> None:
        # With a cluster secret configured, *every* conversation -- ship,
        # vote, ping, shutdown -- starts with the nonce challenge; an
        # unauthenticated or forged frame ends it (auth-reject traced by
        # the wrapper) before any message kind is even looked at.
        try:
            stream = serve_handshake(raw, self._key)
        except StreamClosed:
            raw.close()
            return
        try:
            while not self._stopping.is_set():
                try:
                    msg = stream.recv(timeout=0.1)
                except StreamClosed:
                    return
                if msg is None:
                    continue
                kind = msg.get("kind")
                if kind == "ping":
                    stream.send({"kind": "pong", "node": self.node_id})
                elif kind == "vote":
                    self._handle_vote(stream, msg)
                elif kind == "ship":
                    self._handle_ship(stream, msg)
                    return  # one arm per connection; conversation over
                elif kind == "shutdown":
                    stream.send({"kind": "bye", "node": self.node_id})
                    self.stop()
                    return
                # unknown kinds are ignored (forward compatibility)
        finally:
            self.auth_rejects += getattr(stream, "rejects", 0)
            stream.close()

    def _handle_vote(self, stream: RecordStream, msg: dict) -> None:
        try:
            granted = self.voter.request_vote(
                msg.get("decision"), msg.get("requester")
            )
        except ConsensusUnavailable:  # pragma: no cover - voter never down
            granted = False
        stream.send({
            "kind": "vote-reply",
            "node": self.node_id,
            "decision": msg.get("decision"),
            "granted": granted,
        })

    # ------------------------------------------------------------------
    # arm execution

    def _handle_ship(self, stream: RecordStream, msg: dict) -> None:
        ship_id = self._next_ship
        self._next_ship += 1
        token = CancellationToken()
        with self._inflight_lock:
            self._inflight[ship_id] = token
        box: dict = {}
        body = threading.Thread(
            target=self._run_arm,
            args=(msg, token, box),
            name=f"daemon-{self.node_id}-arm{msg.get('arm')}",
            daemon=True,
        )
        started = time.monotonic()
        body.start()
        crash_after = msg.get("crash_after")
        # The home node's warden knows the lease terms; the ship record
        # carries the heartbeat period so both sides agree on the clock.
        hb_iv = float(msg.get("hb_interval") or self.hb_interval)
        orphaned = False
        seq = 0
        next_hb = started + hb_iv
        try:
            while body.is_alive():
                if self._stopping.is_set():
                    token.cancel()
                now = time.monotonic()
                if crash_after is not None and now - started >= crash_after:
                    self._crash(stream, token)
                    return
                if now >= next_hb:
                    next_hb = now + hb_iv
                    if not stream.send({
                        "kind": "hb",
                        "node": self.node_id,
                        "arm": msg.get("arm"),
                        "epoch": msg.get("epoch"),
                        "seq": seq,
                    }):
                        orphaned = True  # half-open: home is gone
                        token.cancel()
                        break
                    seq += 1
                try:
                    incoming = stream.recv(timeout=min(hb_iv, 0.05))
                except StreamClosed:
                    orphaned = True  # the wire died under the race
                    token.cancel()
                    break
                if incoming is not None and incoming.get("kind") == "cancel":
                    self.arms_cancelled += 1
                    token.cancel()
            body.join(timeout=_STOP_GRACE)
            if orphaned:
                # The abnormal-exit path used to skip the shm audit
                # entirely -- only a polite ``shutdown`` checked for
                # leaks, so exactly the deaths most likely to leak went
                # unexamined.  Audit here too, once our own shipment is
                # out of the in-flight set.
                self.arms_orphaned += 1
                with self._inflight_lock:
                    self._inflight.pop(ship_id, None)
                self._abnormal_exit_audit()
                return
            if self._stopping.is_set():
                return
            record = box.get("record")
            if record is None:  # body wedged past the grace: report it
                record = self._failure_record(msg, "arm body did not finish")
            stream.send(record)
        finally:
            with self._inflight_lock:
                self._inflight.pop(ship_id, None)

    def _abnormal_exit_audit(self) -> None:
        """The shm leak audit, run when an arm is *orphaned* (the home
        vanished mid-race) rather than politely shut down.

        Owned slabs are reclaimed only when this daemon owns its process
        and no other arm is still in flight -- an in-process test daemon
        must never vaporise its host's live slabs.  The leak list is
        recorded either way, so tests and operators can assert on it.
        """
        with self._inflight_lock:
            busy = bool(self._inflight)
        if self.process_owner and not busy:
            cleanup_all_slabs()
        self.shm_leaks_after_orphan = tuple(
            sorted(set(orphaned_segments()) - self._shm_baseline)
        )

    def _crash(self, stream: RecordStream, token: CancellationToken) -> None:
        """An injected mid-arm worker death.

        Hard mode (daemon-per-process) is a genuine SIGKILL: no goodbye,
        no cleanup, the kernel resets the connections.  Soft mode (an
        in-process daemon in a test) emulates the observable effect at
        connection grain: the wire drops dead mid-conversation and the
        arm is abandoned.
        """
        if self.allow_hard_crash:  # pragma: no cover - kills the process
            os.kill(os.getpid(), signal.SIGKILL)
        token.cancel()
        stream.close()

    def _run_arm(self, msg: dict, token: CancellationToken,
                 box: dict) -> None:
        started = time.monotonic()
        parent = child = None
        try:
            alt: Alternative = msg["alt"]
            manager = ProcessManager(PageStore())
            parent = manager.create_initial(
                space_size=msg.get("space_size", 64 * 1024)
            )
            image = msg.get("image")
            if image:
                parent.space.write(0, image)
            (child,) = manager.alt_spawn(parent, 1)
            import random as _random

            index = int(msg.get("arm", 0))
            context = AltContext(
                child.space,
                rng=_random.Random(f"{msg.get('seed', 0)}:ctx:{index}"),
                alt_index=index + 1,
                name=msg.get("name", alt.name),
                process=child,
                token=token,
            )
            succeeded, value, detail = _run_body(alt, context)
            dirty = {
                vpn: child.space.table.read_page(vpn)
                for vpn in sorted(child.space.table.dirty_pages)
            }
            self.arms_run += 1
            box["record"] = {
                "kind": "result",
                "node": self.node_id,
                "arm": index,
                "epoch": msg.get("epoch"),
                "ok": bool(succeeded),
                "value": value,
                "detail": detail,
                "dirty_pages": dirty,
                "pages_written": len(dirty),
                "duration": time.monotonic() - started,
                "cancelled": token.cancelled,
            }
        except Exception as exc:  # noqa: BLE001 - shipped, not swallowed
            box["record"] = self._failure_record(
                msg, f"arm body raised: {exc!r}",
                duration=time.monotonic() - started,
            )
        finally:
            # Worker-side world hygiene: nothing outlives the shipment.
            for process in (child, parent):
                if process is not None:
                    try:
                        process.space.release()
                    except Exception:  # pragma: no cover - best effort
                        pass

    def _failure_record(self, msg: dict, detail: str,
                        duration: float = 0.0) -> dict:
        return {
            "kind": "result",
            "node": self.node_id,
            "arm": msg.get("arm"),
            "epoch": msg.get("epoch"),
            "ok": False,
            "value": None,
            "detail": detail,
            "dirty_pages": {},
            "pages_written": 0,
            "duration": duration,
            "cancelled": False,
        }

    def __repr__(self) -> str:
        state = "stopping" if self.stopping else "serving"
        return (
            f"WorkerDaemon({self.node_id!r}, {self.host}:{self.port}, "
            f"{state}, arms_run={self.arms_run})"
        )
