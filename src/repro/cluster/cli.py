"""``python -m repro cluster``: run and demolish a real-wire cluster.

Three subcommands:

- ``worker`` -- one worker daemon process (arm executor + consensus
  voter) on a TCP port; ``--port-file`` publishes the bound address,
  ``--hard-crash`` arms genuine SIGKILL responses to injected crashes;
- ``router`` -- one journaled router daemon; point ``--journal`` at the
  same path across restarts and each incarnation recovers the last;
- ``demo`` -- the whole PR in one command: spawns three worker
  processes, races a recovery block across them, SIGKILLs a worker
  mid-race and watches the lease/respawn machinery converge anyway,
  then kills and restarts a router mid-conversation and shows the
  journal replay agreeing with the ghost.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from typing import List, Optional


def _write_port_file(path: Optional[str], host: str, port: int) -> None:
    if not path:
        return
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(f"{host}:{port}\n")
    os.replace(tmp, path)  # atomic: readers never see a partial address


# ----------------------------------------------------------------------
# demo bodies (module-level: they ship through pickle)

def demo_careful(ctx):
    """The conservative algorithm: slow, always right."""
    time.sleep(0.5)
    ctx.put("result", sum(range(100)))
    return "careful"


def demo_heuristic(ctx):
    """The fast guess, checked by an acceptance test."""
    time.sleep(0.05)
    ctx.put("result", sum(range(100)))
    return "heuristic"


def demo_accept(ctx, value):
    return ctx.get("result") == 4950


def demo_reckless(ctx):
    """A guess the acceptance test rejects."""
    ctx.put("result", -1)
    return "reckless"


def demo_reject(ctx, value):
    return ctx.get("result") == 4950


def worker_main(args: argparse.Namespace) -> int:
    from repro.cluster.daemon import WorkerDaemon

    join_addr = None
    if args.join:
        host_part, port_part = args.join.rsplit(":", 1)
        join_addr = (host_part, int(port_part))
    daemon = WorkerDaemon(
        node_id=args.node_id,
        host=args.host,
        port=args.port,
        allow_hard_crash=args.hard_crash,
        process_owner=True,
        join_addr=join_addr,
        gossip_interval=args.gossip_interval,
    )
    daemon.install_signal_handlers()
    host, port = daemon.start()
    _write_port_file(args.port_file, host, port)
    print(f"worker {args.node_id} serving on {host}:{port}", flush=True)
    daemon.serve_forever()
    if daemon.shm_leaks_at_shutdown:  # pragma: no cover - leak escape
        print(
            f"warning: leaked shm segments: "
            f"{', '.join(daemon.shm_leaks_at_shutdown)}",
            file=sys.stderr,
        )
        return 1
    return 0


def router_main(args: argparse.Namespace) -> int:
    from repro.cluster.router_service import RouterDaemon

    daemon = RouterDaemon(
        journal_path=args.journal, host=args.host, port=args.port
    )
    import signal as _signal

    def _stop(signum, frame):  # pragma: no cover - signal path
        daemon.stop()

    _signal.signal(_signal.SIGTERM, _stop)
    _signal.signal(_signal.SIGINT, _stop)
    host, port = daemon.start()
    _write_port_file(args.port_file, host, port)
    print(
        f"router serving on {host}:{port} "
        f"(journal {args.journal}, recovered {daemon.recovered_rows} rows)",
        flush=True,
    )
    daemon.serve_forever()
    return 0


def demo_main(args: argparse.Namespace) -> int:
    from repro.cluster.auth import generate_secret
    from repro.cluster.executor import ClusterExecutor, WorkerEndpoint
    from repro.cluster.membership import MembershipServer
    from repro.cluster.router_service import RouterClient
    from repro.cluster.spawn import respawn_worker, spawn_router, spawn_worker
    from repro.core.alternative import Alternative

    secret = generate_secret()
    os.environ["REPRO_CLUSTER_SECRET"] = secret

    print("=== real-wire HA cluster demo ===\n")
    print("[1/4] membership server + 3 authenticated worker daemons ...")
    members = MembershipServer(secret=secret)
    join = members.start()
    print(f"      membership gossip on {join[0]}:{join[1]} (HMAC authed)")
    workers = [
        spawn_worker(f"w{i}", join=join, secret=secret) for i in range(3)
    ]
    try:
        for worker in workers:
            print(f"      {worker}")
        endpoints = [
            WorkerEndpoint(w.name, w.host, w.port) for w in workers
        ]
        alternatives = [
            Alternative("careful", demo_careful),
            Alternative("heuristic", demo_heuristic, guard=demo_accept),
            Alternative("reckless", demo_reckless, guard=demo_reject),
        ]

        print("\n[2/4] racing a recovery block; "
              "SIGKILLing a worker mid-race ...")
        executor = ClusterExecutor(
            endpoints, seed=args.seed, membership=members.table,
            secret=secret,
        )
        parent = executor.new_parent()
        victim = workers[1]  # the heuristic arm's round-robin home
        import threading

        def assassin():
            time.sleep(0.02)
            victim.kill()
            print(f"      SIGKILLed {victim.name} (pid {victim.pid})")

        threading.Thread(target=assassin, daemon=True).start()
        result = executor.run(alternatives, parent=parent)
        print(f"      winner: {result.winner.name!r} "
              f"value={result.value!r} "
              f"result={parent.space.get('result')}")
        print(f"      elapsed {result.elapsed:.3f}s, "
              f"all leases settled: "
              f"{executor.warden.table.all_settled}")
        for t, label in result.timeline:
            print(f"        {t:8.3f}  {label}")

        print("\n[3/4] respawning the corpse; it re-joins the live "
              "rotation (no home restart) ...")
        workers[1] = respawn_worker(victim, join=join, secret=secret)
        victim.cleanup()
        deadline = time.monotonic() + 5.0
        record = None
        while time.monotonic() < deadline:
            record = members.table.get(workers[1].name)
            if record is not None and record.state == "healthy" \
                    and record.port == workers[1].port:
                break
            time.sleep(0.05)
        rejoined = record is not None and record.state == "healthy"
        print(f"      {workers[1]}")
        print(f"      membership says: {record}")
        result2 = executor.run(alternatives, parent=parent)
        print(f"      second block winner: {result2.winner.name!r} "
              f"(rotation healed: {rejoined})")

        print("\n[4/4] router kill + journal-replay restart ...")
        journal = os.path.join(
            tempfile.mkdtemp(prefix="repro-demo-"), "router.journal"
        )
        router = spawn_router(journal)
        with RouterClient(router.host, router.port) as client:
            client.register(1)
            client.register(2)
            client.send(1, 2, {"op": "credit", "amount": 100})
            client.deliver_all()
            client.report_status(1, True)
            before = client.digest()
        print(f"      digest before kill: {before}")
        router.kill()
        print(f"      SIGKILLed router (pid {router.pid}); restarting "
              f"from {journal} ...")
        router2 = spawn_router(journal)
        with RouterClient(router2.host, router2.port) as client:
            after = client.digest()
        print(f"      digest after replay: {after}")
        agree = before == after
        print(f"      incarnations agree: {agree}")
        router2.stop()
        router.cleanup()
        router2.cleanup()
        return 0 if (agree and rejoined) else 1
    finally:
        members.stop()
        for worker in workers:
            if worker.alive:
                worker.stop()
            worker.cleanup()


def cluster_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="real-wire cluster runtime: worker/router daemons "
                    "and a kill-and-recover demo",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="run one worker daemon")
    worker.add_argument("--node-id", default="worker")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0)
    worker.add_argument("--port-file", default=None,
                        help="write the bound host:port here")
    worker.add_argument("--hard-crash", action="store_true",
                        help="answer injected crashes with real SIGKILL")
    worker.add_argument("--join", default=None, metavar="HOST:PORT",
                        help="announce to this membership server and "
                             "gossip liveness pings")
    worker.add_argument("--gossip-interval", type=float, default=0.2)
    worker.set_defaults(func=worker_main)

    router = sub.add_parser("router", help="run one journaled router")
    router.add_argument("--journal", required=True)
    router.add_argument("--host", default="127.0.0.1")
    router.add_argument("--port", type=int, default=0)
    router.add_argument("--port-file", default=None)
    router.set_defaults(func=router_main)

    demo = sub.add_parser("demo", help="3 workers, one murder, recovery")
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=demo_main)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cluster_main())
