"""The majority-consensus 0-1 semaphore over real sockets.

:class:`ClusterMajoritySemaphore` is
:class:`~repro.consensus.majority.MajorityConsensusSemaphore` with the
in-memory ``node.request_vote`` call replaced by a framed ``vote``
round-trip to each worker daemon's voter (section 5.1.2 / Thomas 1979,
on the real wire).  The safety argument is unchanged and lives entirely
on the *daemons*: each voter grants a decision at most once and never
revokes, so two requesters can never both collect strict majorities --
no matter what the network between them does.

What the socket hop adds is the paper's failure model for real:

- a SIGKILLed daemon simply never answers; it counts as unreachable and
  the quorum arithmetic absorbs any minority of such losses;
- when fewer than a quorum of voters answer at all, no decision is
  possible and :class:`~repro.errors.ConsensusUnavailable` is raised --
  the caller (the cluster executor) degrades to a home-node serial
  replay, the same last resort the simulated network uses;
- vote traffic is dialled through the same (possibly impaired) endpoint
  addresses as arm shipments, so a chaos scenario starves consensus
  exactly as it starves data.
"""

from __future__ import annotations

import threading
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.cluster.auth import AuthError, dial_handshake, load_secret
from repro.cluster.stream import StreamClosed, connect
from repro.errors import ConsensusUnavailable


class ClusterMajoritySemaphore:
    """At-most-once synchronization across live worker daemons."""

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        requester: str = "home",
        vote_timeout: float = 1.0,
        secret=None,
    ) -> None:
        if not endpoints:
            raise ValueError("need at least one voting endpoint")
        self.endpoints: List[Tuple[str, int]] = list(endpoints)
        self.requester = requester
        self.vote_timeout = vote_timeout
        self._key = load_secret(secret)
        self.rounds = 0
        self.unreachable_last_round = 0

    @property
    def quorum(self) -> int:
        """Strict majority of all configured voters (up or down)."""
        return len(self.endpoints) // 2 + 1

    def _ask(self, endpoint: Tuple[str, int], decision_id: Hashable,
             requester: Hashable, box: dict) -> None:
        """One vote round-trip; unreachable/torn voters answer nothing."""
        try:
            stream = connect(
                endpoint[0], endpoint[1],
                timeout=self.vote_timeout,
                name=f"vote-{endpoint[1]}",
            )
            # Votes ride the same authenticated wire as shipments: a
            # voter with a secret configured never counts a ballot it
            # cannot verify.
            stream = dial_handshake(
                stream, self._key, timeout=self.vote_timeout
            )
        except (OSError, StreamClosed, AuthError):
            return
        try:
            if not stream.send({
                "kind": "vote",
                "decision": decision_id,
                "requester": requester,
            }):
                return
            reply = stream.recv(timeout=self.vote_timeout)
            if reply is None or reply.get("kind") != "vote-reply":
                return
            box[endpoint] = bool(reply.get("granted"))
        except StreamClosed:
            return
        finally:
            stream.close()

    def try_acquire(self, decision_id: Hashable,
                    requester: Optional[Hashable] = None) -> bool:
        """Poll every voter in parallel; True iff a majority granted.

        Grants are sticky on the daemons, so a requester that loses the
        race leaves its partial grants behind -- safe (nobody else can
        reach quorum *with those votes*) at some cost in liveness,
        exactly the simulated semaphore's contract.

        Raises :class:`ConsensusUnavailable` when fewer than a quorum of
        voters answered at all.
        """
        self.rounds += 1
        who = requester if requester is not None else self.requester
        box: dict = {}
        askers = [
            threading.Thread(
                target=self._ask,
                args=(endpoint, decision_id, who, box),
                daemon=True,
            )
            for endpoint in self.endpoints
        ]
        for thread in askers:
            thread.start()
        for thread in askers:
            thread.join(timeout=self.vote_timeout * 2)
        reachable = len(box)
        grants = sum(1 for granted in box.values() if granted)
        self.unreachable_last_round = len(self.endpoints) - reachable
        if grants >= self.quorum:
            return True
        if reachable < self.quorum:
            raise ConsensusUnavailable(
                f"only {reachable} of {len(self.endpoints)} voters "
                f"reachable; quorum is {self.quorum}"
            )
        return False

    def __repr__(self) -> str:
        return (
            f"ClusterMajoritySemaphore(voters={len(self.endpoints)}, "
            f"quorum={self.quorum}, rounds={self.rounds})"
        )
