"""Checksum-framed record streams over real TCP sockets.

One :class:`RecordStream` wraps one connected socket and speaks the exact
``magic | length | crc32 | pickle`` framing of
:mod:`repro.core.backends.wire` -- a cluster worker's record is
indistinguishable from a freshly forked child's, just travelling over a
socket instead of a pipe.  The hardening mirrors the pipe path:

- a peer that dies mid-frame leaves a *torn* shipment; the incremental
  :class:`~repro.core.backends.wire.RecordReader` never parses a record
  out of the fragment and the stream surfaces :class:`StreamClosed` with
  ``torn=True`` so the caller can promote the next finisher;
- corruption (a bad magic, a checksum mismatch) poisons the stream the
  same way -- one bad frame ends the conversation, it never resyncs onto
  garbage;
- sends into a half-open connection (the peer is gone but the kernel has
  not noticed) surface as a ``False`` return instead of an exception, the
  socket analogue of :func:`~repro.core.backends.wire.write_all`'s EPIPE
  contract;
- EINTR is retried by the interpreter (PEP 475); handlers installed by
  the daemons only set flags, so blocking calls resume instead of dying.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, Optional, Tuple

from repro.core.backends import wire
from repro.errors import ReproError
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer

#: recv() chunk size; frames are typically far smaller than this.
_CHUNK = 65536


class StreamClosed(ReproError):
    """The peer is gone (EOF, reset, or a poisoned frame).

    ``torn`` distinguishes a clean goodbye (the peer finished a frame and
    closed) from a mid-frame death or corruption -- the socket analogue of
    a dangling partial frame on a child's pipe.
    """

    def __init__(self, detail: str, torn: bool = False) -> None:
        super().__init__(detail)
        self.detail = detail
        self.torn = torn


class RecordStream:
    """One bidirectional framed-record conversation over a socket."""

    def __init__(self, sock: socket.socket, name: str = "") -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - e.g. a unix socketpair
            pass
        self._sock = sock
        try:
            host, port = sock.getpeername()[:2]
            self._peer = f"{host}:{port}"
        except OSError:
            self._peer = "<disconnected>"
        self._reader = wire.RecordReader()
        self._ready: list = []
        self._send_lock = threading.Lock()
        """``sendall`` can interleave partial writes across threads; one
        frame must hit the wire contiguously or the peer sees garbage."""
        self.name = name
        self.closed = False
        self.sent = 0
        self.received = 0
        self.send_failures = 0
        self.on_send_failure: Optional[Callable[["RecordStream", str], None]] = None
        """Called (once per failed send) with ``(stream, detail)`` --
        how the executor feeds half-open sends into its circuit breaker
        and the membership table's suspicion counter."""

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def peer(self) -> str:
        """The remote endpoint, remembered from connect time so it stays
        reportable after the kernel forgets the dead connection."""
        try:
            host, port = self._sock.getpeername()[:2]
            self._peer = f"{host}:{port}"
        except OSError:
            pass
        return self._peer

    # ------------------------------------------------------------------

    def send(self, payload: dict) -> bool:
        """Frame and ship one record; ``False`` when the peer is gone.

        Any connection-level failure (EPIPE on a half-open socket, a
        reset, a send into a closed stream) means nobody will ever read
        this record -- the caller treats the peer as dead, it never
        retries the same bytes.
        """
        if self.closed:
            return False
        frame, _ = wire.frame_record(payload)
        try:
            with self._send_lock:
                self._sock.sendall(frame)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            # A half-open connection dying here used to be *silent*: the
            # caller got ``False`` and nothing else learned the peer was
            # gone.  Witness it once -- a trace event plus the failure
            # hook -- so the breaker and membership suspicion see it.
            self._note_send_failure(f"{type(exc).__name__}: {exc}")
            return False
        self.sent += 1
        return True

    def send_bytes(self, data: bytes) -> bool:
        """Ship pre-framed raw bytes; ``False`` when the peer is gone.

        The authenticated wire frames its own envelopes (the MAC must
        cover the exact bytes on the wire), so it bypasses the pickle
        framing and writes here.  Same contract as :meth:`send`: one
        call is one contiguous write under the send lock, and a failed
        write feeds the breaker/membership plumbing.
        """
        if self.closed:
            return False
        try:
            with self._send_lock:
                self._sock.sendall(data)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            self._note_send_failure(f"{type(exc).__name__}: {exc}")
            return False
        self.sent += 1
        return True

    def _note_send_failure(self, detail: str) -> None:
        self.send_failures += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.CONN_DROP,
                name=self.name,
                peer=self.peer,
                reason="send-failed",
                detail=detail,
            )
        hook = self.on_send_failure
        if hook is not None:
            try:
                hook(self, detail)
            except Exception:  # pragma: no cover - observer must not kill send
                pass

    def recv(self, timeout: Optional[float] = None) -> Optional[dict]:
        """The next record, or ``None`` when ``timeout`` elapses first.

        Raises :class:`StreamClosed` on EOF (``torn=True`` when the peer
        died mid-frame) and on a corrupt frame (always torn: the stream
        cannot be trusted past the first bad byte).
        """
        if self._ready:
            self.received += 1
            return self._ready.pop(0)
        if self.closed:
            raise StreamClosed("stream already closed", torn=False)
        try:
            self._sock.settimeout(timeout)
        except OSError:
            # close() raced us from another thread; same as a dead peer.
            raise StreamClosed("stream closed concurrently", torn=False) from None
        while not self._ready:
            try:
                data = self._sock.recv(_CHUNK)
            except socket.timeout:
                return None
            except (ConnectionError, OSError) as exc:
                raise StreamClosed(
                    f"connection lost: {exc}", torn=self._reader.pending
                ) from None
            if not data:
                raise StreamClosed(
                    "peer closed the connection"
                    + (" mid-frame" if self._reader.pending else ""),
                    torn=self._reader.pending,
                )
            self._ready.extend(self._reader.feed(data))
            if self._reader.corrupt:
                raise StreamClosed(self._reader.corrupt_detail, torn=True)
        self.received += 1
        return self._ready.pop(0)

    def recv_bytes(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """One chunk of raw socket bytes, never parsed or unpickled.

        Returns ``None`` when ``timeout`` elapses and ``b""`` on EOF;
        raises :class:`StreamClosed` on a connection error or a stream
        closed concurrently.  The authenticated wire reads here and
        keeps its own framing buffer: raw network bytes must never
        reach the pickling :class:`~repro.core.backends.wire.
        RecordReader` before their MAC is verified.
        """
        if self.closed:
            raise StreamClosed("stream already closed", torn=False)
        try:
            self._sock.settimeout(timeout)
        except OSError:
            raise StreamClosed("stream closed concurrently", torn=False) from None
        try:
            return self._sock.recv(_CHUNK)
        except socket.timeout:
            return None
        except (ConnectionError, OSError) as exc:
            raise StreamClosed(f"connection lost: {exc}", torn=False) from None

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        if self.closed:
            return
        self.closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __enter__(self) -> "RecordStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"open->{self.peer}"
        return f"RecordStream({self.name or self.peer!r}, {state})"


def connect(
    host: str, port: int, timeout: float = 2.0, name: str = ""
) -> RecordStream:
    """Dial ``host:port`` and wrap the connection in a stream.

    Raises ``OSError`` when the endpoint is unreachable; the caller's
    rotation logic treats that exactly like a dead node.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return RecordStream(sock, name=name or f"{host}:{port}")


def listener(host: str = "127.0.0.1", port: int = 0) -> Tuple[socket.socket, str, int]:
    """A listening socket plus the address it actually bound.

    ``port=0`` asks the kernel for an ephemeral port -- the way every
    daemon here binds, so test clusters never collide.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(64)
    bound_host, bound_port = sock.getsockname()[:2]
    return sock, bound_host, bound_port
