"""Majority-consensus synchronization (Thomas 1979, applied as in §5.1.2).

The at-most-once property of the synchronization point must not introduce
a single point of failure into a fault-tolerance mechanism, so it is
replicated: a requester wins iff it collects grants from a strict majority
of the voting nodes.  Because each node grants a decision at most once and
never revokes, two different requesters can never both hold majorities --
the semaphore is a 'fault-tolerant 0-1 semaphore'.

The trade-off the paper names -- 'the additional communication and
protocol of multiple-node synchronization is the price paid for increased
robustness' -- is captured by :meth:`MajorityConsensusSemaphore.latency`.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from repro.errors import ConsensusUnavailable
from repro.consensus.node import ConsensusNode
from repro.sim.costs import CostModel


class MajorityConsensusSemaphore:
    """A replicated at-most-once synchronization point."""

    def __init__(self, nodes: Sequence[ConsensusNode]) -> None:
        if not nodes:
            raise ValueError("need at least one voting node")
        if len({n.node_id for n in nodes}) != len(nodes):
            raise ValueError("node ids must be unique")
        self.nodes: List[ConsensusNode] = list(nodes)
        self.rounds = 0

    @property
    def quorum(self) -> int:
        """Strict majority of all nodes (up or down)."""
        return len(self.nodes) // 2 + 1

    def try_acquire(self, decision_id: Hashable, requester: Hashable) -> bool:
        """Attempt to synchronize; True iff a majority granted.

        Grants are sticky: a requester that fails to reach quorum leaves
        its partial grants in place, which preserves safety (no two
        requesters can reach quorum) at some cost in liveness -- exactly
        the 0-1, at-most-once behaviour the design requires.

        Raises :class:`ConsensusUnavailable` when fewer than a quorum of
        nodes can be reached at all, since then no decision is possible.
        """
        self.rounds += 1
        reachable = 0
        grants = 0
        for node in self.nodes:
            try:
                granted = node.request_vote(decision_id, requester)
            except ConsensusUnavailable:
                continue
            reachable += 1
            if granted:
                grants += 1
            if grants >= self.quorum:
                return True
        if reachable < self.quorum:
            raise ConsensusUnavailable(
                f"only {reachable} of {len(self.nodes)} nodes reachable; "
                f"quorum is {self.quorum}"
            )
        return False

    def winner(self, decision_id: Hashable) -> Optional[Hashable]:
        """The requester holding a majority for ``decision_id``, if any.

        Counts durable grants on all nodes (including crashed ones, whose
        grants persist), so the answer is stable across failures.
        """
        counts: dict = {}
        for node in self.nodes:
            granted_to = node.granted_to(decision_id)
            if granted_to is not None:
                counts[granted_to] = counts.get(granted_to, 0) + 1
        for requester, count in counts.items():
            if count >= self.quorum:
                return requester
        return None

    def latency(self, cost_model: CostModel) -> float:
        """Simulated time for one synchronization attempt.

        The requester polls all nodes in parallel; the attempt concludes
        when the slowest needed round trip returns, so the cost is one
        network round trip plus per-node processing, versus the plain
        ``sync_latency`` of single-node synchronization.
        """
        round_trip = 2 * cost_model.network_latency
        processing = len(self.nodes) * cost_model.message_latency
        return round_trip + processing + cost_model.sync_latency

    def up_nodes(self) -> int:
        """Currently reachable voters."""
        return sum(1 for node in self.nodes if node.up)

    def __repr__(self) -> str:
        return (
            f"MajorityConsensusSemaphore(nodes={len(self.nodes)}, "
            f"quorum={self.quorum}, up={self.up_nodes()})"
        )
