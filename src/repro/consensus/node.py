"""A voting node for majority-consensus synchronization.

Each node holds, per decision, a single irrevocable grant: once it has
voted for some requester it never votes for another.  Crash and recovery
are modelled explicitly so the benchmarks can inject failures; a crashed
node simply does not answer, and a recovered node remembers its grants
(they were durable, as in Thomas's database-resident locks).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.errors import ConsensusUnavailable


class ConsensusNode:
    """One replica of the synchronization state."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.up = True
        self._grants: Dict[Hashable, Hashable] = {}
        self.votes_cast = 0
        self.requests_seen = 0

    # ------------------------------------------------------------------
    # failure injection

    def crash(self) -> None:
        """Stop answering requests."""
        self.up = False

    def recover(self) -> None:
        """Resume answering; durable grants survive the crash."""
        self.up = True

    # ------------------------------------------------------------------
    # voting

    def request_vote(self, decision_id: Hashable, requester: Hashable) -> bool:
        """Vote for ``requester`` on ``decision_id`` unless already granted.

        Raises :class:`ConsensusUnavailable` when the node is down, so the
        caller can distinguish 'refused' from 'unreachable'.
        """
        if not self.up:
            raise ConsensusUnavailable(f"node {self.node_id} is down")
        self.requests_seen += 1
        granted_to = self._grants.get(decision_id)
        if granted_to is None:
            self._grants[decision_id] = requester
            self.votes_cast += 1
            return True
        return granted_to == requester

    def granted_to(self, decision_id: Hashable) -> Optional[Hashable]:
        """Who this node voted for on ``decision_id`` (``None`` if nobody)."""
        return self._grants.get(decision_id)

    def __repr__(self) -> str:
        status = "up" if self.up else "down"
        return f"ConsensusNode({self.node_id!r}, {status}, votes={self.votes_cast})"
