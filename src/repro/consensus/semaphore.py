"""The single-node at-most-once synchronization point.

'The synchronization action is designed so that it can be accomplished at
most once; that is, if the remote system attempts synchronization for the
alternative it is executing, it is informed that it is "too late" ... and
it should terminate itself.'
"""

from __future__ import annotations

from typing import Hashable, Optional


class SyncSemaphore:
    """A 0-1 semaphore that can be acquired exactly once, ever."""

    def __init__(self, name: str = "sync") -> None:
        self.name = name
        self._holder: Optional[Hashable] = None
        self.attempts = 0

    def try_acquire(self, requester: Hashable) -> bool:
        """Attempt the synchronization; True for the unique winner.

        Re-attempts by the winner itself also return False: the
        synchronization happens at most once, full stop.
        """
        self.attempts += 1
        if self._holder is None:
            self._holder = requester
            return True
        return False

    @property
    def holder(self) -> Optional[Hashable]:
        """Who synchronized, or ``None`` if nobody has yet."""
        return self._holder

    @property
    def decided(self) -> bool:
        """True once some requester has won."""
        return self._holder is not None

    def __repr__(self) -> str:
        return f"SyncSemaphore({self.name!r}, holder={self._holder!r})"
