"""Fault-tolerant synchronization (paper sections 3.2.1 and 5.1.2).

The synchronization action must happen *at most once* even under
communication problems and system failures.  The single-node case is a
plain 0-1 semaphore; 'in applications where this might create a single
point of failure, the synchronization is set up as a majority consensus
[Thomas 1979] decision across several nodes'.
"""

from repro.consensus.majority import MajorityConsensusSemaphore
from repro.consensus.node import ConsensusNode
from repro.consensus.protocol import ConsensusProtocolSim, RequestOutcome
from repro.consensus.semaphore import SyncSemaphore

__all__ = [
    "ConsensusNode",
    "ConsensusProtocolSim",
    "MajorityConsensusSemaphore",
    "RequestOutcome",
    "SyncSemaphore",
]
