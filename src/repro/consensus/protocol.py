"""Message-level simulation of the majority-consensus round.

:class:`MajorityConsensusSemaphore` gives the *logical* at-most-once
guarantee; this module adds the *temporal* behaviour: vote requests and
replies as timed messages on the discrete-event kernel, concurrent
requesters whose requests interleave at the voters according to actual
message arrival times, crashed voters that silently never answer, and
per-link latency jitter.

This is what 'the additional communication and protocol of multiple-node
synchronization' costs, measured rather than assumed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.consensus.node import ConsensusNode
from repro.errors import ConsensusUnavailable
from repro.sim.costs import CostModel, MODERN_COMMODITY
from repro.sim.kernel import SimKernel, WaitCondition


@dataclass
class RequestOutcome:
    """What one requester experienced in the round."""

    requester: Hashable
    granted: bool = False
    unavailable: bool = False
    grants: int = 0
    replies: int = 0
    started_at: float = 0.0
    decided_at: Optional[float] = None

    @property
    def latency(self) -> float:
        """Time from request start to decision."""
        if self.decided_at is None:
            raise ValueError("the request never concluded")
        return self.decided_at - self.started_at


class ConsensusProtocolSim:
    """Timed simulation of competing synchronization attempts."""

    def __init__(
        self,
        nodes: Sequence[ConsensusNode],
        cost_model: CostModel = MODERN_COMMODITY,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one voting node")
        self.nodes = list(nodes)
        self.cost_model = cost_model
        self.jitter = jitter
        self.seed = seed
        self.messages_sent = 0

    @property
    def quorum(self) -> int:
        """Strict majority of all voters."""
        return len(self.nodes) // 2 + 1

    def _latency(self, rng: random.Random) -> float:
        base = self.cost_model.network_latency
        if self.jitter <= 0:
            return base
        return base + rng.uniform(0, self.jitter)

    # ------------------------------------------------------------------

    def run(
        self,
        requests: Sequence[Tuple[Hashable, float]],
        decision_id: Hashable = "sync",
        timeout: float = 10.0,
    ) -> Dict[Hashable, RequestOutcome]:
        """Simulate the round; returns per-requester outcomes.

        ``requests`` is a list of ``(requester_id, start_time)``.  Safety
        holds regardless of interleaving: at most one outcome has
        ``granted=True``.
        """
        if len({r for r, _ in requests}) != len(requests):
            raise ValueError("requester ids must be unique")
        kernel = SimKernel()
        rng = random.Random(self.seed)
        outcomes = {
            requester: RequestOutcome(requester=requester, started_at=start)
            for requester, start in requests
        }

        def deliver_request(requester: Hashable, node: ConsensusNode) -> None:
            # The node processes the vote request on arrival; a crashed
            # node never replies.
            if not node.up:
                return
            try:
                granted = node.request_vote(decision_id, requester)
            except ConsensusUnavailable:  # pragma: no cover - checked above
                return
            reply_delay = self.cost_model.message_latency + self._latency(rng)
            self.messages_sent += 1

            def deliver_reply(granted: bool = granted) -> None:
                outcome = outcomes[requester]
                outcome.replies += 1
                if granted:
                    outcome.grants += 1

            kernel.schedule_in(reply_delay, deliver_reply)

        def requester_activity(requester: Hashable, start: float):
            yield WaitCondition(lambda: kernel.now >= start)
            for node in self.nodes:
                delay = self._latency(rng)
                self.messages_sent += 1
                kernel.schedule_in(
                    delay, lambda n=node, r=requester: deliver_request(r, n)
                )
            outcome = outcomes[requester]
            deadline = kernel.now + timeout

            def decided() -> bool:
                pending = len(self.nodes) - outcome.replies
                return (
                    outcome.grants >= self.quorum
                    # Even if every outstanding reply granted, quorum is
                    # out of reach: the requester is 'too late'.
                    or outcome.grants + pending < self.quorum
                    or outcome.replies >= len(self.nodes)
                    or kernel.now >= deadline
                )

            yield WaitCondition(decided, poll_interval=self.cost_model.message_latency)
            outcome.decided_at = kernel.now
            if outcome.grants >= self.quorum:
                outcome.granted = True
            elif outcome.replies < self.quorum:
                outcome.unavailable = True

        for requester, start in requests:
            kernel.spawn(requester_activity(requester, start))
        kernel.run(until=max((s for _, s in requests), default=0.0) + timeout + 1.0)
        winners = [o for o in outcomes.values() if o.granted]
        assert len(winners) <= 1, "safety violation: two granted requesters"
        return outcomes

    def winner(self, decision_id: Hashable = "sync") -> Optional[Hashable]:
        """The durable majority holder after a run, if any."""
        counts: Dict[Hashable, int] = {}
        for node in self.nodes:
            granted_to = node.granted_to(decision_id)
            if granted_to is not None:
                counts[granted_to] = counts.get(granted_to, 0) + 1
        for requester, count in counts.items():
            if count >= self.quorum:
                return requester
        return None
