"""Virtual time for the discrete-event simulator.

Simulated time is a float measured in seconds.  The clock only moves
forward; the event kernel owns the single clock instance and advances it as
events fire.
"""

from __future__ import annotations


class Clock:
    """A monotonically non-decreasing virtual clock.

    >>> clock = Clock()
    >>> clock.now
    0.0
    >>> clock.advance_to(1.5)
    >>> clock.now
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before time zero")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises ``ValueError`` on an attempt to move backwards, which would
        indicate a scheduling bug in the caller.
        """
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards: {when!r} < {self._now!r}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError(f"cannot advance by negative delta {delta!r}")
        self._now += float(delta)

    def __repr__(self) -> str:
        return f"Clock(now={self._now!r})"
