"""Seeded execution-time distributions.

The paper's performance case (section 4.2, relation 3) is precisely the
regime where ``tau(C_i, x)`` is *unpredictable*: database queries, heuristic
searches, input-dependent sorts.  The workload generators in the benchmark
harness draw per-alternative execution times from these distributions.

Every distribution exposes:

- ``sample(rng)`` -- one draw using the supplied ``random.Random``;
- ``mean()`` -- the analytic mean, used by :mod:`repro.analysis` to predict
  the sequential baseline ``tau(C_mean)`` without sampling error.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence


class Distribution:
    """Abstract base for execution-time distributions."""

    def sample(self, rng: random.Random) -> float:
        """Draw one value (seconds)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic expectation of the distribution."""
        raise NotImplementedError

    def sample_many(self, rng: random.Random, n: int) -> list[float]:
        """Draw ``n`` values."""
        if n < 0:
            raise ValueError("sample count cannot be negative")
        return [self.sample(rng) for _ in range(n)]


@dataclass(frozen=True)
class Deterministic(Distribution):
    """Always returns ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError("execution time cannot be negative")

    def sample(self, rng: random.Random) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError("require 0 <= low <= high")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given ``mean_value`` (heavy right tail)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean_value)

    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal given the mean and sigma of the underlying normal.

    Database-query-like: most runs cluster, a few are very slow.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma cannot be negative")

    def sample(self, rng: random.Random) -> float:
        return rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)


@dataclass(frozen=True)
class Bimodal(Distribution):
    """With probability ``p_fast`` draw from ``fast``, else from ``slow``.

    Models the paper's quicksort example: usually fast, pathologically slow
    on adversarial inputs.
    """

    fast: Distribution
    slow: Distribution
    p_fast: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_fast <= 1.0:
            raise ValueError("p_fast must be a probability")

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.p_fast:
            return self.fast.sample(rng)
        return self.slow.sample(rng)

    def mean(self) -> float:
        return self.p_fast * self.fast.mean() + (1 - self.p_fast) * self.slow.mean()


@dataclass(frozen=True)
class Shifted(Distribution):
    """``base`` plus a constant offset (e.g. a mandatory copy cost)."""

    base: Distribution
    offset: float

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise ValueError("offset cannot be negative")

    def sample(self, rng: random.Random) -> float:
        return self.base.sample(rng) + self.offset

    def mean(self) -> float:
        return self.base.mean() + self.offset


@dataclass(frozen=True)
class Empirical(Distribution):
    """Uniform draw from a fixed set of observed values."""

    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one value")
        if any(v < 0 for v in self.values):
            raise ValueError("execution times cannot be negative")

    @staticmethod
    def of(values: Sequence[float]) -> "Empirical":
        """Build from any sequence of observations."""
        return Empirical(tuple(float(v) for v in values))

    def sample(self, rng: random.Random) -> float:
        return rng.choice(self.values)

    def mean(self) -> float:
        return sum(self.values) / len(self.values)
