"""Discrete-event simulation substrate.

This subpackage provides the deterministic simulation core that the rest of
the library builds on:

- :mod:`repro.sim.clock` -- virtual time.
- :mod:`repro.sim.events` -- a stable priority event queue.
- :mod:`repro.sim.kernel` -- the event loop plus coroutine-style simulated
  activities.
- :mod:`repro.sim.costs` -- the overhead cost model of section 4 of the
  paper, with presets calibrated to the machines measured in section 4.4.
- :mod:`repro.sim.distributions` -- seeded execution-time distributions used
  by the workload generators.
"""

from repro.sim.clock import Clock
from repro.sim.costs import ATT_3B2_310, FREE, HP_9000_350, MODERN_COMMODITY, CostModel
from repro.sim.distributions import (
    Bimodal,
    Deterministic,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Shifted,
    Uniform,
)
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Delay, SimKernel, WaitCondition

__all__ = [
    "ATT_3B2_310",
    "Bimodal",
    "Clock",
    "CostModel",
    "Delay",
    "Deterministic",
    "Distribution",
    "Empirical",
    "Event",
    "EventQueue",
    "Exponential",
    "FREE",
    "HP_9000_350",
    "LogNormal",
    "MODERN_COMMODITY",
    "Shifted",
    "SimKernel",
    "Uniform",
    "WaitCondition",
]
