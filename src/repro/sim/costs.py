"""Overhead cost model (paper section 4).

Section 4.2 decomposes concurrency overhead into three components::

    tau(overhead) = tau(setup)     -- creating execution environments
                  + tau(runtime)   -- COW page copies + CPU sharing
                  + tau(selection) -- sibling elimination and commit

:class:`CostModel` carries the machine parameters that determine each
component.  Two presets reproduce the measurements of section 4.4:

- ``ATT_3B2_310``: ``fork()`` of a 320K address space in ~31 ms; page-copy
  service rate of 326 2K-pages/second.
- ``HP_9000_350``: ``fork()`` in ~12 ms; 1034 4K-pages/second.

A third preset, ``MODERN_COMMODITY``, is a rough 2020s-era laptop for use in
examples; none of the paper's conclusions depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Machine/OS parameters that drive simulated overhead.

    All times are in seconds, sizes in bytes, rates in events per second.
    """

    name: str
    fork_latency: float
    """Base latency of a copy-on-write fork (no pages yet written)."""

    page_copy_rate: float
    """Pages copied per second when a COW fault fires."""

    page_size: int
    """Size of one page in bytes."""

    kill_latency: float = 0.0005
    """Cost of issuing one sibling-termination instruction (section 4.1
    item 2: 'the instructions to terminate the alternates must still be
    issued, and they increase with the number of alternates')."""

    sync_latency: float = 0.001
    """Cost of the rendezvous itself: the atomic page-pointer swap plus
    bookkeeping at ``alt_wait``/``alt_sync``."""

    message_latency: float = 0.002
    """One-way latency of a local IPC message."""

    network_latency: float = 0.010
    """One-way latency of a network message between nodes."""

    network_bandwidth: float = 1_000_000.0
    """Network throughput in bytes/second (10 Mbit Ethernet era default)."""

    checkpoint_rate: float = 500_000.0
    """Bytes per second written when checkpointing a whole process image
    (the dominant cost of the paper's unmodified-kernel ``rfork()``)."""

    restore_rate: float = 1_000_000.0
    """Bytes per second read when restoring a checkpoint."""

    def page_copy_time(self, pages: int = 1) -> float:
        """Time to service ``pages`` copy-on-write faults."""
        if pages < 0:
            raise ValueError("page count cannot be negative")
        return pages / self.page_copy_rate

    def pages_for(self, nbytes: int) -> int:
        """Number of pages needed to hold ``nbytes`` (ceiling division)."""
        if nbytes < 0:
            raise ValueError("byte count cannot be negative")
        return -(-nbytes // self.page_size)

    def fork_time(self, pages_written_by_child: int = 0) -> float:
        """Fork latency plus the COW copies the child will later incur.

        The paper's section 4.4 observation: 'The fraction of the pages in
        the address space which are written is the important independent
        variable for a program with a known address space size.'
        """
        return self.fork_latency + self.page_copy_time(pages_written_by_child)

    def elimination_time(self, siblings: int) -> float:
        """Cost of issuing termination instructions for ``siblings``."""
        if siblings < 0:
            raise ValueError("sibling count cannot be negative")
        return siblings * self.kill_latency

    def checkpoint_time(self, image_bytes: int) -> float:
        """Time to dump a process image of ``image_bytes`` to a file."""
        return image_bytes / self.checkpoint_rate

    def transfer_time(self, nbytes: int) -> float:
        """Time to ship ``nbytes`` across one network link."""
        return self.network_latency + nbytes / self.network_bandwidth

    def restore_time(self, image_bytes: int) -> float:
        """Time to restore a checkpointed image on the remote node."""
        return image_bytes / self.restore_rate

    def rfork_time(self, image_bytes: int) -> float:
        """End-to-end remote fork: checkpoint, ship, restore.

        With the default parameters a 70K image lands near the ~1 second
        the paper reports for its unmodified-kernel implementation.
        """
        return (
            self.checkpoint_time(image_bytes)
            + self.transfer_time(image_bytes)
            + self.restore_time(image_bytes)
        )

    def scaled(self, factor: float, name: str = "") -> "CostModel":
        """A model whose latencies are multiplied by ``factor``.

        Rates are divided by the same factor so the whole machine slows
        down (or speeds up) uniformly.  Useful for sensitivity sweeps.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            name=name or f"{self.name} x{factor:g}",
            fork_latency=self.fork_latency * factor,
            page_copy_rate=self.page_copy_rate / factor,
            kill_latency=self.kill_latency * factor,
            sync_latency=self.sync_latency * factor,
            message_latency=self.message_latency * factor,
            network_latency=self.network_latency * factor,
            network_bandwidth=self.network_bandwidth / factor,
            checkpoint_rate=self.checkpoint_rate / factor,
            restore_rate=self.restore_rate / factor,
        )


ATT_3B2_310 = CostModel(
    name="AT&T 3B2/310",
    fork_latency=0.031,
    page_copy_rate=326.0,
    page_size=2048,
)
"""Preset from section 4.4: 31 ms fork of a 320K space, 326 2K-pages/s."""


HP_9000_350 = CostModel(
    name="HP 9000/350",
    fork_latency=0.012,
    page_copy_rate=1034.0,
    page_size=4096,
)
"""Preset from section 4.4: 12 ms fork, 1034 4K-pages/s."""


MODERN_COMMODITY = CostModel(
    name="modern commodity",
    fork_latency=0.0004,
    page_copy_rate=2_000_000.0,
    page_size=4096,
    kill_latency=0.00002,
    sync_latency=0.00005,
    message_latency=0.00005,
    network_latency=0.0002,
    network_bandwidth=1_000_000_000.0,
    checkpoint_rate=500_000_000.0,
    restore_rate=1_000_000_000.0,
)
"""A rough 2020s machine, for examples only."""


FREE = CostModel(
    name="zero overhead",
    fork_latency=0.0,
    page_copy_rate=float("inf"),
    page_size=4096,
    kill_latency=0.0,
    sync_latency=0.0,
    message_latency=0.0,
    network_latency=0.0,
    network_bandwidth=float("inf"),
    checkpoint_rate=float("inf"),
    restore_rate=float("inf"),
)
"""All overheads zero -- isolates algorithmic effects in tests and benches."""
