"""The discrete-event kernel.

:class:`SimKernel` combines a :class:`~repro.sim.clock.Clock` with an
:class:`~repro.sim.events.EventQueue` and supports two styles of simulated
activity:

- plain timed callbacks (``schedule`` / ``schedule_in``), and
- coroutine-style activities: generators that yield :class:`Delay` or
  :class:`WaitCondition` effects and are resumed by the kernel.

The coroutine style is used by the consensus and network layers, where a
protocol participant naturally reads as sequential code interleaved with
waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.clock import Clock
from repro.sim.events import Event, EventQueue


@dataclass(frozen=True)
class Delay:
    """Effect yielded by an activity to sleep for ``seconds`` of sim time."""

    seconds: float


@dataclass(frozen=True)
class WaitCondition:
    """Effect yielded by an activity to block until ``predicate()`` is true.

    The predicate is re-evaluated after every event fires; ``poll_interval``
    bounds how long the kernel may go without re-checking when the event
    queue is otherwise empty.
    """

    predicate: Callable[[], bool]
    poll_interval: float = 0.001


Activity = Generator[Any, Any, Any]


class SimKernel:
    """Deterministic discrete-event simulation loop."""

    def __init__(self, start_time: float = 0.0) -> None:
        self.clock = Clock(start_time)
        self._queue = EventQueue()
        self._waiters: list[tuple[WaitCondition, Activity]] = []
        self._trace: list[tuple[float, str]] = []
        self._tracing = False

    # ------------------------------------------------------------------
    # time & tracing

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def enable_tracing(self) -> None:
        """Record ``(time, label)`` for every labelled event that fires."""
        self._tracing = True

    @property
    def trace(self) -> list[tuple[float, str]]:
        """The recorded trace (empty unless tracing was enabled)."""
        return list(self._trace)

    def record(self, label: str) -> None:
        """Append a labelled point to the trace at the current time."""
        if self._tracing:
            self._trace.append((self.now, label))

    # ------------------------------------------------------------------
    # scheduling

    def schedule(self, when: float, action: Callable[[], Any], label: str = "") -> Event:
        """Run ``action`` at absolute time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        return self._queue.push(when, action, label)

    def schedule_in(self, delay: float, action: Callable[[], Any], label: str = "") -> Event:
        """Run ``action`` ``delay`` seconds from now."""
        return self.schedule(self.now + delay, action, label)

    def spawn(self, activity: Activity, label: str = "") -> None:
        """Start a coroutine-style activity immediately."""
        self.schedule(self.now, lambda: self._step(activity), label or "spawn")

    # ------------------------------------------------------------------
    # event loop

    def run(self, until: Optional[float] = None) -> float:
        """Fire events until the queue drains or ``until`` is reached.

        Returns the final simulated time.
        """
        while True:
            self._wake_ready_waiters()
            next_time = self._queue.peek_time()
            if next_time is None:
                if self._waiters:
                    # Nothing scheduled but activities are blocked on
                    # conditions; poll at the smallest requested interval.
                    interval = min(w.poll_interval for w, _ in self._waiters)
                    target = self.now + interval
                    if until is not None and target > until:
                        self.clock.advance_to(until)
                        return self.now
                    self.clock.advance_to(target)
                    continue
                return self.now
            if until is not None and next_time > until:
                self.clock.advance_to(until)
                return self.now
            event = self._queue.pop()
            assert event is not None
            self.clock.advance_to(event.time)
            if self._tracing and event.label:
                self._trace.append((self.now, event.label))
            event.action()

    def run_all(self, max_time: float = 1e12) -> float:
        """Run to quiescence with a generous safety horizon."""
        return self.run(until=max_time)

    # ------------------------------------------------------------------
    # coroutine machinery

    def _step(self, activity: Activity, send_value: Any = None) -> None:
        try:
            effect = activity.send(send_value)
        except StopIteration:
            return
        if isinstance(effect, Delay):
            if effect.seconds < 0:
                raise ValueError("Delay must be non-negative")
            self.schedule_in(effect.seconds, lambda: self._step(activity))
        elif isinstance(effect, WaitCondition):
            if effect.predicate():
                self.schedule(self.now, lambda: self._step(activity))
            else:
                self._waiters.append((effect, activity))
        else:
            raise TypeError(
                f"activity yielded {effect!r}; expected Delay or WaitCondition"
            )

    def _wake_ready_waiters(self) -> None:
        if not self._waiters:
            return
        still_blocked: list[tuple[WaitCondition, Activity]] = []
        ready: list[Activity] = []
        for condition, activity in self._waiters:
            if condition.predicate():
                ready.append(activity)
            else:
                still_blocked.append((condition, activity))
        self._waiters = still_blocked
        for activity in ready:
            self.schedule(self.now, lambda a=activity: self._step(a))


def run_activities(activities: Iterable[Activity], until: Optional[float] = None) -> float:
    """Convenience: run a set of activities on a fresh kernel to completion."""
    kernel = SimKernel()
    for activity in activities:
        kernel.spawn(activity)
    return kernel.run(until=until)
