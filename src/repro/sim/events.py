"""A stable priority queue of timed events.

Events that share a firing time are delivered in the order they were
scheduled, which keeps every simulation in this package fully deterministic
for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordering is by ``(time, seq)`` so that ties break in scheduling order.
    ``cancelled`` events stay in the heap but are skipped on pop.
    """

    time: float
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue will skip it."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` objects with stable tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, action: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
