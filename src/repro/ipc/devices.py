"""Source and sink devices (paper section 3.1).

'System state is divided into two types, source and sink.  The division is
made on the basis of idempotence; operations on sink devices can be retried
without the effects being visible, while operations on sources cannot.'

:class:`SinkDevice` models shared page-backed state such as a database
file: predicated worlds write to a private overlay ('writes ... must be
done to a temporary copy until the transaction commits') and read their own
recent writes first ('so that the transaction is internally consistent').

:class:`SourceDevice` models a teletype-like device whose operations are
observable and unrepeatable; a world with unresolved predicates is barred
from it (:class:`~repro.errors.SideEffectViolation`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

from repro.errors import SideEffectViolation
from repro.predicates.world import World


class SinkDevice:
    """A named, idempotent, key-value sink with per-world overlays."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._committed: Dict[str, Any] = {}
        self._overlays: Dict[int, Dict[str, Any]] = {}
        self.commits = 0
        self.discards = 0

    # ------------------------------------------------------------------

    def read(self, key: str, world: Optional[World] = None, default: Any = None) -> Any:
        """Read ``key``, seeing the world's own uncommitted writes first."""
        if world is not None:
            overlay = self._overlays.get(world.world_id)
            if overlay is not None and key in overlay:
                return overlay[key]
        return self._committed.get(key, default)

    def write(self, key: str, value: Any, world: Optional[World] = None) -> None:
        """Write ``key``.

        An unconditional caller (``world is None`` or no outstanding
        predicates *and* no buffered writes) commits directly.  A
        predicated world's write lands in its private overlay and a
        deferred commit effect is registered, released when the world's
        predicates resolve in its favour.
        """
        if world is None:
            self._committed[key] = value
            return
        overlay = self._overlays.get(world.world_id)
        if world.unconditional and overlay is None:
            self._committed[key] = value
            return
        if overlay is None:
            overlay = {}
            self._overlays[world.world_id] = overlay
            world.defer_effect(_CommitOverlay(self, world.world_id))
        overlay[key] = value

    def keys(self, world: Optional[World] = None) -> List[str]:
        """Visible keys: committed plus the world's overlay."""
        visible = set(self._committed)
        if world is not None:
            visible |= set(self._overlays.get(world.world_id, ()))
        return sorted(visible)

    # ------------------------------------------------------------------
    # world lifecycle

    def commit_world(self, world_id: int) -> int:
        """Fold a world's overlay into committed state; return write count."""
        overlay = self._overlays.pop(world_id, None)
        if overlay is None:
            return 0
        self._committed.update(overlay)
        self.commits += 1
        return len(overlay)

    def discard_world(self, world_id: int) -> int:
        """Throw away a world's overlay (the world was eliminated)."""
        overlay = self._overlays.pop(world_id, None)
        if overlay is None:
            return 0
        self.discards += 1
        return len(overlay)

    @property
    def pending_worlds(self) -> int:
        """Worlds that currently hold uncommitted overlays."""
        return len(self._overlays)

    def committed_snapshot(self) -> Dict[str, Any]:
        """A copy of the committed key-value state."""
        return dict(self._committed)

    def __repr__(self) -> str:
        return f"SinkDevice({self.name!r}, keys={len(self._committed)})"


class _CommitOverlay:
    """Deferred effect: apply a world's overlay when it becomes real."""

    def __init__(self, device: SinkDevice, world_id: int) -> None:
        self.device = device
        self.world_id = world_id

    def __call__(self) -> None:
        self.device.commit_world(self.world_id)

    def __repr__(self) -> str:
        return f"commit({self.device.name}, world={self.world_id})"


class SourceDevice:
    """A non-idempotent device: reads consume, writes are observable."""

    def __init__(self, name: str, input_data: Iterable[Any] = ()) -> None:
        self.name = name
        self._input: Deque[Any] = deque(input_data)
        self.output: List[Any] = []
        self.reads = 0
        self.writes = 0

    def _check(self, world: Optional[World]) -> None:
        if world is not None:
            world.require_source_access()

    def read(self, world: Optional[World] = None) -> Any:
        """Consume the next input item (unrepeatable)."""
        self._check(world)
        if not self._input:
            raise SideEffectViolation(f"source {self.name!r} has no input")
        self.reads += 1
        return self._input.popleft()

    def write(self, data: Any, world: Optional[World] = None) -> None:
        """Emit ``data`` observably ('writing checks or bottling beer')."""
        self._check(world)
        self.writes += 1
        self.output.append(data)

    @property
    def remaining_input(self) -> int:
        """Items not yet consumed."""
        return len(self._input)

    def __repr__(self) -> str:
        return f"SourceDevice({self.name!r}, remaining={self.remaining_input})"
