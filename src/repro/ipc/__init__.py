"""Interprocess communication (paper section 3.4).

Messages are the only way one process can observe or change another's
state.  Every message carries a *sending predicate* -- the assumptions
under which it was sent -- and the receiving side applies the
accept/ignore/split rule of section 3.4.2 through the
:class:`~repro.predicates.WorldSet` machinery.

Devices model the source/sink division of section 3.1: sink state
(page-backed, idempotent) can be buffered and hidden; source state
(a teletype) cannot be retried, so predicated processes are barred from it.

Channels are reliable by fiat in the default mode and by
acknowledgement/retransmission in ``at_least_once`` mode; the
:class:`RouterJournal` makes the router itself recoverable.
"""

from repro.ipc.channel import Channel
from repro.ipc.devices import SinkDevice, SourceDevice
from repro.ipc.journal import (
    JournalRecord,
    JournalSink,
    RouterJournal,
    load_journal,
)
from repro.ipc.message import Message
from repro.ipc.router import MessageRouter
from repro.ipc.timed import TimedRouter

__all__ = [
    "Channel",
    "JournalRecord",
    "JournalSink",
    "Message",
    "MessageRouter",
    "RouterJournal",
    "SinkDevice",
    "SourceDevice",
    "TimedRouter",
    "load_journal",
]
