"""Timed message delivery: the predicate layer under simulated latency.

:class:`TimedRouter` composes a logical
:class:`~repro.ipc.MessageRouter` with a
:class:`~repro.sim.SimKernel`: sends are scheduled, deliveries happen
``message_latency`` later (plus optional jitter), and the FIFO contract
of section 3.1 is preserved per sender/destination pair even when jitter
would reorder arrivals -- a later send never overtakes an earlier one.

Status reports can also be timed, so experiments can pose races between
'the winner's commit notification' and 'a speculative message already in
flight' and watch the predicate machinery sort them out.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional, Tuple

from repro.ipc.message import Message
from repro.ipc.router import MessageRouter
from repro.predicates.predicate import Predicate
from repro.sim.costs import CostModel, MODERN_COMMODITY
from repro.sim.kernel import SimKernel


class TimedRouter:
    """Latency-aware façade over the logical message router."""

    def __init__(
        self,
        kernel: Optional[SimKernel] = None,
        router: Optional[MessageRouter] = None,
        cost_model: CostModel = MODERN_COMMODITY,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel if kernel is not None else SimKernel()
        self.router = router if router is not None else MessageRouter()
        self.cost_model = cost_model
        self.jitter = jitter
        self._rng = random.Random(seed)
        self._last_arrival: Dict[Tuple[int, int], float] = {}
        self.delivered = 0

    # ------------------------------------------------------------------
    # delegation

    def register(self, pid: int, worlds) -> None:
        """Attach a logical process (see MessageRouter.register)."""
        self.router.register(pid, worlds)

    def worlds_of(self, pid: int):
        """The registered world set for ``pid``."""
        return self.router.worlds_of(pid)

    # ------------------------------------------------------------------
    # timed operations

    def _arrival_time(self, sender: int, dest: int) -> float:
        latency = self.cost_model.message_latency
        if self.jitter > 0:
            latency += self._rng.uniform(0, self.jitter)
        arrival = self.kernel.now + latency
        key = (sender, dest)
        previous = self._last_arrival.get(key)
        if previous is not None and arrival <= previous:
            # FIFO per pair: never overtake an earlier message.
            arrival = previous + 1e-9
        self._last_arrival[key] = arrival
        return arrival

    def send(
        self,
        sender: int,
        dest: int,
        data: Any,
        predicate: Optional[Predicate] = None,
    ) -> Message:
        """Enqueue now; the receiver processes it one latency later."""
        message = self.router.send(sender, dest, data, predicate=predicate)
        arrival = self._arrival_time(sender, dest)

        def deliver() -> None:
            self.router.deliver_one(sender, dest)
            self.delivered += 1

        self.kernel.schedule(
            arrival, deliver, label=f"deliver {sender}->{dest}"
        )
        return message

    def report_status(
        self, pid: int, completed: bool, delay: Optional[float] = None
    ) -> None:
        """Broadcast a final status after ``delay`` (default: one network
        latency -- resolutions travel on the wire too)."""
        if delay is None:
            delay = self.cost_model.network_latency
        self.kernel.schedule_in(
            delay,
            lambda: self.router.report_status(pid, completed),
            label=f"status {pid}={'ok' if completed else 'failed'}",
        )

    def run(self, until: Optional[float] = None) -> float:
        """Drain the kernel (deliver everything scheduled)."""
        return self.kernel.run(until=until)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.kernel.now
