"""Reliable FIFO channels -- and how to build them from a lossy wire.

Section 3.1 assumes IPC 'behaves reliably (no lost or duplicated messages)
and FIFO (no out of order messages)'.  :class:`Channel` provides exactly
that contract between one ordered pair of processes, with counters the
benchmarks use for accounting.

The default mode simply *assumes* the reliable wire.  With
``at_least_once=True`` the channel instead *earns* the contract over a
faulty wire: every send is buffered until acknowledged, the wire may drop,
duplicate, or reorder copies (decided by the seeded
:class:`~repro.resilience.FaultInjector` at the ``net-*`` points, draw
keys ``ch:<sender>-><dest>`` for data and ``ack:<sender>-><dest>`` for
acknowledgements), unacknowledged messages are retransmitted with a
capped exponential backoff, and the receiver runs a sliding-window
reassembly protocol: sequence numbers at or below the *delivered floor*
are duplicates, numbers inside the window are acked and held until the
gap below them fills, and numbers beyond the window are left unacked for
a later retransmission.  Because the floor only ever advances across
messages actually surfaced to the caller, a retransmission can never be
misclassified as a duplicate, and :meth:`Channel.receive` delivers in
strict sequence order -- loss-free, duplicate-free, FIFO.  A message
that exhausts its retransmission budget raises
:class:`~repro.errors.ChannelError`.

Every message additionally carries a stable ``uid`` in its control
information, so layers above the channel (the
:class:`~repro.predicates.WorldSet`) can make duplicate delivery
idempotent even when it bypasses this channel's window.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.check.runtime import checkpoint as _checkpoint
from repro.errors import ChannelError
from repro.ipc.message import Message
from repro.resilience.injector import active as _active_injector


class Channel:
    """An ordered message queue; loss-free by fiat or by retransmission."""

    def __init__(
        self,
        sender: int,
        dest: int,
        at_least_once: bool = False,
        dedup_window: int = 64,
        max_attempts: int = 16,
        backoff_base: float = 0.001,
        backoff_factor: float = 2.0,
        backoff_cap: float = 0.05,
    ) -> None:
        if dedup_window < 1:
            raise ValueError("dedup_window must be at least 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.sender = sender
        self.dest = dest
        self.at_least_once = at_least_once
        self.dedup_window = dedup_window
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self._queue: Deque[Message] = deque()
        self._next_seq = 0
        self._last_delivered_seq: Optional[int] = None
        # -- at-least-once machinery ----------------------------------
        self._unacked: Dict[int, Message] = {}
        self._attempts: Dict[int, int] = {}
        self._reorder: Dict[int, Message] = {}
        """Acked arrivals above the floor, held until the gap fills."""
        self._delivered_floor = -1
        """Every sequence number at or below this has been surfaced to
        the caller; anything at or below it is by construction a
        duplicate.  Advances only across contiguous deliveries, so a
        dropped message can never slip under it."""
        # -- counters --------------------------------------------------
        self.sent = 0
        self.delivered = 0
        self.wire_drops = 0
        self.wire_dups = 0
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.window_rejects = 0
        """Arrivals too far ahead of the delivered floor to buffer; left
        unacked so a later retransmission re-offers them."""
        self.acks_sent = 0
        self.acks_lost = 0
        self.backoff_accrued = 0.0
        """Simulated seconds of retransmission backoff paid so far."""

    # ------------------------------------------------------------------
    # the wire

    def _wire_key(self, kind: str) -> str:
        return f"{kind}:{self.sender}->{self.dest}"

    def _transmit(self, message: Message) -> None:
        """Put one copy of ``message`` on the wire (lossy when armed)."""
        if not self.at_least_once:
            self._queue.append(message)
            return
        injector = _active_injector()
        if injector is not None and injector.draw(
            "net-drop", self._wire_key("ch")
        ) is not None:
            self.wire_drops += 1
            return  # lost in flight; only the missing ack tells
        if injector is not None and injector.draw(
            "net-reorder", self._wire_key("ch")
        ) is not None:
            self._queue.appendleft(message)  # jumped the queue
        else:
            self._queue.append(message)
        if injector is not None and injector.draw(
            "net-dup", self._wire_key("ch")
        ) is not None:
            self.wire_dups += 1
            self._queue.append(message)

    def _ack(self, seq: int) -> None:
        """The receiver acknowledges ``seq`` (the ack may itself drop)."""
        self.acks_sent += 1
        injector = _active_injector()
        if injector is not None and injector.draw(
            "net-drop", self._wire_key("ack")
        ) is not None:
            self.acks_lost += 1
            return  # sender will retransmit; receiver window dedups
        self._unacked.pop(seq, None)
        self._attempts.pop(seq, None)

    # ------------------------------------------------------------------
    # sending / receiving

    def send(self, message: Message) -> Message:
        """Enqueue ``message``, stamping sequence number and uid."""
        if message.sender != self.sender or message.dest != self.dest:
            raise ValueError(
                f"message {message.sender}->{message.dest} does not belong "
                f"on channel {self.sender}->{self.dest}"
            )
        _checkpoint("chan-send", f"{self.sender}->{self.dest}")
        seq = self._next_seq
        control = dict(message.control)
        control.setdefault("uid", f"{self.sender}->{self.dest}#{seq}")
        stamped = Message(
            sender=message.sender,
            dest=message.dest,
            data=message.data,
            predicate=message.predicate,
            seq=seq,
            control=control,
        )
        self._next_seq += 1
        self.sent += 1
        if self.at_least_once:
            self._unacked[seq] = stamped
            self._attempts[seq] = 1
        self._transmit(stamped)
        return stamped

    def receive(self) -> Optional[Message]:
        """The next message in sequence order (``None`` when none ready).

        In at-least-once mode re-delivered copies are acknowledged and
        suppressed here, never surfaced to the caller, and an
        out-of-order arrival is held back until the sequence numbers
        below it have all been delivered (FIFO reassembly).
        """
        _checkpoint("chan-recv", f"{self.sender}->{self.dest}")
        if not self.at_least_once:
            if not self._queue:
                return None
            message = self._queue.popleft()
            if self._last_delivered_seq is not None:
                if message.seq != self._last_delivered_seq + 1:
                    raise AssertionError(
                        "FIFO invariant violated: "
                        f"{message.seq} after {self._last_delivered_seq}"
                    )
            self._last_delivered_seq = message.seq
            self.delivered += 1
            return message
        while True:
            ready = self._delivered_floor + 1
            if ready in self._reorder:
                self._delivered_floor = ready
                self.delivered += 1
                return self._reorder.pop(ready)
            if not self._queue:
                return None
            message = self._queue.popleft()
            if (
                message.seq <= self._delivered_floor
                or message.seq in self._reorder
            ):
                self.duplicates_suppressed += 1
                self._ack(message.seq)  # re-ack so the sender stops
            elif message.seq > self._delivered_floor + self.dedup_window:
                # Too far ahead to buffer: stay silent so the sender
                # retransmits once the window has slid forward.
                self.window_rejects += 1
            else:
                self._ack(message.seq)
                self._reorder[message.seq] = message

    def retransmit(self) -> int:
        """Re-send every unacknowledged message; return how many.

        Each retransmission pays one step of capped exponential backoff
        (simulated, accrued on :attr:`backoff_accrued`); a message past
        ``max_attempts`` raises :class:`ChannelError`.
        """
        if not self.at_least_once:
            return 0
        count = 0
        for seq in sorted(self._unacked):
            attempts = self._attempts.get(seq, 1)
            if attempts >= self.max_attempts:
                raise ChannelError(
                    f"message #{seq} on {self.sender}->{self.dest} "
                    f"unacknowledged after {attempts} attempts"
                )
            self._attempts[seq] = attempts + 1
            self.backoff_accrued += min(
                self.backoff_cap,
                self.backoff_base * self.backoff_factor ** (attempts - 1),
            )
            self.retransmissions += 1
            self._transmit(self._unacked[seq])
            count += 1
        return count

    def pump(self, max_rounds: int = 64) -> List[Message]:
        """Drive the channel to quiescence; return the fresh deliveries.

        Alternates receiving (which acks) with retransmitting whatever is
        still unacknowledged, until nothing is pending or unacked.
        Propagates :class:`ChannelError` when a message exhausts its
        retransmission budget.
        """
        fresh: List[Message] = []
        for _ in range(max_rounds):
            while (message := self.receive()) is not None:
                fresh.append(message)
            if not self._unacked:
                return fresh
            self.retransmit()
        raise ChannelError(
            f"channel {self.sender}->{self.dest} did not quiesce "
            f"after {max_rounds} pump rounds"
        )

    def drain(self) -> List[Message]:
        """Dequeue everything currently pending."""
        messages = []
        while (message := self.receive()) is not None:
            messages.append(message)
        return messages

    @property
    def pending(self) -> int:
        """Copies on the wire, not yet received."""
        return len(self._queue)

    @property
    def held(self) -> int:
        """Acked arrivals waiting for an earlier sequence gap to fill."""
        return len(self._reorder)

    @property
    def unacked(self) -> int:
        """Messages sent but not yet acknowledged (at-least-once mode)."""
        return len(self._unacked)

    def __repr__(self) -> str:
        mode = ", at-least-once" if self.at_least_once else ""
        return (
            f"Channel({self.sender}->{self.dest}, "
            f"pending={self.pending}{mode})"
        )
