"""Reliable FIFO channels.

Section 3.1 assumes IPC 'behaves reliably (no lost or duplicated messages)
and FIFO (no out of order messages)'.  :class:`Channel` provides exactly
that contract between one ordered pair of processes, with counters the
benchmarks use for accounting.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.ipc.message import Message


class Channel:
    """An ordered, loss-free, duplication-free message queue."""

    def __init__(self, sender: int, dest: int) -> None:
        self.sender = sender
        self.dest = dest
        self._queue: Deque[Message] = deque()
        self._next_seq = 0
        self._last_delivered_seq: Optional[int] = None
        self.sent = 0
        self.delivered = 0

    def send(self, message: Message) -> Message:
        """Enqueue ``message``, stamping the channel sequence number."""
        if message.sender != self.sender or message.dest != self.dest:
            raise ValueError(
                f"message {message.sender}->{message.dest} does not belong "
                f"on channel {self.sender}->{self.dest}"
            )
        stamped = Message(
            sender=message.sender,
            dest=message.dest,
            data=message.data,
            predicate=message.predicate,
            seq=self._next_seq,
            control=dict(message.control),
        )
        self._next_seq += 1
        self._queue.append(stamped)
        self.sent += 1
        return stamped

    def receive(self) -> Optional[Message]:
        """Dequeue the next message in FIFO order (``None`` when empty)."""
        if not self._queue:
            return None
        message = self._queue.popleft()
        if self._last_delivered_seq is not None:
            if message.seq != self._last_delivered_seq + 1:
                raise AssertionError(
                    "FIFO invariant violated: "
                    f"{message.seq} after {self._last_delivered_seq}"
                )
        self._last_delivered_seq = message.seq
        self.delivered += 1
        return message

    def drain(self) -> List[Message]:
        """Dequeue everything currently pending."""
        messages = []
        while (message := self.receive()) is not None:
            messages.append(message)
        return messages

    @property
    def pending(self) -> int:
        """Messages sent but not yet delivered."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Channel({self.sender}->{self.dest}, pending={self.pending})"
