"""The three-part message structure of section 3.4.1.

A message from ``P_m`` to ``P_j`` has:

1. a sending predicate, encapsulating the sender's assumptions;
2. the data comprising the message contents;
3. control information -- sender id, destination id, sequence number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.predicates.predicate import Predicate


@dataclass(frozen=True)
class Message:
    """An immutable predicated message."""

    sender: int
    dest: int
    data: Any
    predicate: Predicate = field(default_factory=Predicate.empty)
    seq: int = 0
    control: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sender == self.dest:
            raise ValueError("a process does not message itself")

    @property
    def effective_predicate(self) -> Predicate:
        """The predicate a receiver actually takes on by accepting.

        Receipt is a side effect of the *sender*, so acceptance implies the
        sender itself completes, in addition to everything the sender
        assumed.
        """
        return self.predicate.assuming_completion(self.sender)

    def __repr__(self) -> str:
        return (
            f"Message(#{self.seq} {self.sender}->{self.dest}, "
            f"predicate={self.predicate!r}, data={self.data!r})"
        )
