"""The message layer: linking IPC, worlds, and process management.

Section 3.4.2: 'The message system, the virtual addressing mechanism, and
the process management mechanism are linked.'  :class:`MessageRouter` is
that link:

- each registered logical process is a :class:`~repro.predicates.WorldSet`;
- sends go through reliable FIFO :class:`~repro.ipc.Channel` objects;
- delivery applies the accept/ignore/split rule per live world;
- process status changes (from the
  :class:`~repro.process.ProcessManager` or reported directly) resolve
  predicates everywhere, eliminate contradicted worlds, and release the
  deferred side effects of worlds that became unconditional.

With a :class:`~repro.ipc.journal.RouterJournal` attached, every state
transition is journaled write-ahead, so a crashed router can be rebuilt
by :meth:`RouterJournal.replay` to the same live-world set without ever
double-releasing a deferred side effect.  With ``at_least_once=True``
the router's channels earn their reliability over a lossy wire through
acks and retransmission instead of assuming it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.ipc.channel import Channel
from repro.ipc.journal import RouterJournal
from repro.ipc.message import Message
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.predicates.predicate import Predicate
from repro.predicates.world import WorldSet


class MessageRouter:
    """Predicated message delivery between logical processes."""

    def __init__(
        self,
        journal: Optional[RouterJournal] = None,
        at_least_once: bool = False,
    ) -> None:
        self._endpoints: Dict[int, WorldSet] = {}
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self._known_status: Dict[int, bool] = {}
        self.journal = journal
        self.at_least_once = at_least_once
        self._inherited_effect_done: Dict[int, set] = {}
        """During journal replay: status id -> indices of released
        effects the crashed incarnation already executed (set by
        :meth:`RouterJournal.replay`, empty otherwise)."""
        self.dropped = 0
        """Messages discarded because the sender was already known failed."""

    # ------------------------------------------------------------------
    # registration

    def register(self, pid: int, worlds: WorldSet) -> None:
        """Attach a logical process's world set to the router."""
        if pid in self._endpoints:
            raise ReproError(f"pid {pid} already registered")
        if self.journal is not None:
            self.journal.append("register", pid)
        self._endpoints[pid] = worlds

    def worlds_of(self, pid: int) -> WorldSet:
        """The world set registered for ``pid``."""
        return self._endpoints[pid]

    def attach_manager(self, manager: Any) -> None:
        """Subscribe to a :class:`~repro.process.ProcessManager`'s final
        status notifications."""
        manager.on_status_change(self.report_status)

    def _channel(self, sender: int, dest: int) -> Channel:
        key = (sender, dest)
        if key not in self._channels:
            self._channels[key] = Channel(
                sender, dest, at_least_once=self.at_least_once
            )
        return self._channels[key]

    # ------------------------------------------------------------------
    # sending / delivery

    def send(
        self,
        sender: int,
        dest: int,
        data: Any,
        predicate: Optional[Predicate] = None,
    ) -> Message:
        """Enqueue a predicated message from ``sender`` to ``dest``."""
        if dest not in self._endpoints:
            raise ReproError(f"no such destination pid: {dest}")
        message = Message(
            sender=sender,
            dest=dest,
            data=data,
            predicate=predicate if predicate is not None else Predicate.empty(),
        )
        if self.journal is not None:
            # Write-ahead: the row goes down before the channel mutates.
            self.journal.append("send", sender, dest, data, message.predicate)
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.PREDICATE_SEND,
                sender=sender,
                dest=dest,
                predicated=not message.predicate.is_empty,
            )
        return self._channel(sender, dest).send(message)

    def deliver_one(self, sender: int, dest: int) -> Optional[Message]:
        """Deliver the next pending message on one channel.

        Returns the message if one was processed (whether any world
        accepted it or not), ``None`` when the channel is empty.
        """
        return self._deliver_from(self._channel(sender, dest))

    def deliver_all(self) -> int:
        """Deliver every pending message on every channel, FIFO per pair.

        Returns the number of messages processed.
        """
        count = 0
        progressed = True
        while progressed:
            progressed = False
            for channel in list(self._channels.values()):
                if self._deliver_from(channel) is not None:
                    count += 1
                    progressed = True
        return count

    def _deliver_from(self, channel: Channel) -> Optional[Message]:
        """Dequeue and process one message, journaling the delivery."""
        message = channel.receive()
        if message is None:
            return None
        if self.journal is not None:
            self.journal.append("deliver", channel.sender, channel.dest)
        self._process_delivery(message)
        return message

    def _process_delivery(self, message: Message) -> None:
        # Fold already-known outcomes into the message predicate: 'we can
        # update the value of these elements as processes change status'.
        predicate = message.predicate
        tracer = _active_tracer()
        sender_status = self._known_status.get(message.sender)
        if sender_status is False:
            # The sender is known to have failed; accepting would require
            # assuming complete(sender), which is known false.
            self.dropped += 1
            if tracer.enabled:
                tracer.emit(
                    _ev.PREDICATE_IGNORE,
                    sender=message.sender,
                    dest=message.dest,
                    reason="sender known failed",
                )
            return
        for pid in list(predicate.must | predicate.cannot):
            status = self._known_status.get(pid)
            if status is None:
                continue
            try:
                predicate = predicate.resolve(pid, status)
            except Exception:
                # The sender's assumptions are already contradicted: the
                # message belongs to a dead timeline.
                self.dropped += 1
                if tracer.enabled:
                    tracer.emit(
                        _ev.PREDICATE_IGNORE,
                        sender=message.sender,
                        dest=message.dest,
                        reason="assumptions already contradicted",
                    )
                return
        worlds = self._endpoints[message.dest]
        if sender_status is True:
            # Sender known complete: acceptance adds no sender assumption,
            # only whatever unresolved predicates the message still carries.
            worlds.receive_effective(message, predicate)
            return
        worlds.receive(message, message.sender, predicate)

    # ------------------------------------------------------------------
    # status resolution

    def report_status(
        self, pid: int, completed: bool, execute: bool = True
    ) -> List[Any]:
        """Record a final status and resolve predicates everywhere.

        Returns the deferred side effects released by worlds that became
        unconditional; the effects have already been executed if callable
        (unless ``execute=False``, the journal-replay path for a status
        whose effects already ran before the crash).

        With a journal attached every released effect is bracketed: rows
        the effect journals while running carry its provenance, and an
        ``effect-done`` row lands the moment its action is durable --
        so a crash anywhere inside the release is recoverable at
        per-effect granularity.
        """
        sid: Any = None
        if self.journal is not None:
            sid = self.journal.next_status_id()
            self.journal.append("status", pid, completed, sid)
        self._known_status[pid] = completed
        already_done = (
            self._inherited_effect_done.get(sid, set())
            if sid is not None
            else set()
        )
        released: List[Any] = []
        for worlds in self._endpoints.values():
            for effect in worlds.resolve(pid, completed):
                idx = len(released)
                released.append(effect)
                if execute and callable(effect) and idx not in already_done:
                    if self.journal is not None:
                        self.journal.begin_effect(sid, idx)
                        try:
                            effect()
                        finally:
                            self.journal.end_effect()
                    else:
                        effect()
                if self.journal is not None:
                    # The effect's action is down (just executed, already
                    # executed pre-crash, or not executable): replay must
                    # never run it again.
                    self.journal.append("effect-done", sid, idx)
        if self.journal is not None:
            # The paired row: the whole release is down.
            self.journal.append("status-done", pid, completed,
                                len(released), sid)
        return released

    def known_status(self, pid: int) -> Optional[bool]:
        """The recorded final status of ``pid`` (``None`` if still open)."""
        return self._known_status.get(pid)

    # ------------------------------------------------------------------
    # accounting

    @property
    def total_splits(self) -> int:
        """Receiver splits across all endpoints (overhead metric)."""
        return sum(w.splits for w in self._endpoints.values())

    @property
    def total_pending(self) -> int:
        """Messages in flight across all channels."""
        return sum(c.pending for c in self._channels.values())
