"""A write-ahead journal for the message router.

Section 3.4.2's message layer is stateful: channel sequence numbers,
world-set splits, known process statuses, deferred side effects.  If the
node hosting the router crashes, that state is gone -- but the paper's
semantics must survive: the rebuilt router has to agree with the old one
on which worlds are live, and a side effect released before the crash
must *never* run again.

:class:`RouterJournal` records every state transition write-ahead:

- ``register`` / ``send`` / ``deliver`` rows capture the inputs that
  drive world evolution (replaying sends through fresh channels
  reproduces the same sequence numbers, hence the same message uids);
- status resolution is journaled as a ``status`` row *before* effects
  run and a ``status-done`` row after, paired by a unique status id so
  the pairing survives nested ``report_status`` calls made from inside
  an effect;
- each released effect gets its own ``effect-done`` row the moment it
  has executed, and every row an effect journals *while running* (a
  released ``send``, say) is tagged with the effect's provenance
  ``(status id, effect index)``.

On replay a ``status`` row whose id is paired means the old incarnation
finished the whole release before crashing: the effects are collected
but not re-invoked, and the rows they journaled are replayed as plain
state transitions.  An unpaired ``status`` row is the interrupted
operation.  Replay completes it exactly once at per-effect granularity:
effects with an ``effect-done`` marker are skipped (already down), the
rest are re-executed -- and the provenance tags let replay drop the
partial rows those re-executed effects journaled pre-crash, so nothing
is applied twice.

:meth:`RouterJournal.replay` rebuilds a :class:`~repro.ipc.MessageRouter`
from the log and emits one ``journal-replay`` trace event summarizing
what it reconstructed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple


from repro.core.backends import wire
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer


@dataclass(frozen=True)
class JournalRecord:
    """One durable row: an operation name and its positional arguments.

    ``provenance`` is set on rows journaled from inside a released
    effect: the ``(status id, effect index)`` of the effect that caused
    them.  Replay uses it to skip rows whose effect it is about to
    re-execute.
    """

    op: str
    args: Tuple[Any, ...]
    provenance: Optional[Tuple[int, int]] = field(default=None)

    def __repr__(self) -> str:
        if self.provenance is not None:
            return (
                f"JournalRecord({self.op}, {self.args!r}, "
                f"via={self.provenance})"
            )
        return f"JournalRecord({self.op}, {self.args!r})"


class JournalSink:
    """Durably appends journal rows to a file, one framed record each.

    Rows travel in the same ``magic | length | crc32 | pickle`` framing
    as every other record in the system (:mod:`repro.core.backends.wire`),
    which is what makes the log *torn-write tolerant*: a crash mid-append
    leaves a trailing fragment that fails the frame walk, and
    :func:`load_journal` stops cleanly at the last complete row instead
    of trusting half a write.  ``fsync=True`` additionally forces each
    row to stable storage before ``append`` returns (write-ahead in the
    durability sense, not just the ordering sense).
    """

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = fsync
        self._file = open(path, "ab")
        self.rows = 0

    def write(self, record: "JournalRecord") -> None:
        frame, _ = wire.frame_record({
            "op": record.op,
            "args": record.args,
            "provenance": record.provenance,
        })
        self._file.write(frame)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.rows += 1

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "JournalSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"JournalSink({self.path!r}, rows={self.rows})"


def load_journal(path: str) -> "RouterJournal":
    """Rebuild an in-memory journal from a (possibly torn) log file.

    Walks the framed rows and stops cleanly at the first incomplete or
    corrupt frame -- the unfinished append of a crashed incarnation.
    Everything before the tear is intact (each row carries its own
    checksum), so the returned journal holds exactly the rows the old
    router durably finished writing, ready for :meth:`RouterJournal.replay`.
    """
    journal = RouterJournal()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return journal
    reader = wire.RecordReader()
    rows = reader.feed(data)
    # A corrupt or pending tail is precisely a torn final append: the
    # rows before it are trustworthy, nothing after it is.
    for row in rows:
        try:
            record = JournalRecord(
                op=row["op"],
                args=tuple(row["args"]),
                provenance=row.get("provenance"),
            )
        except (KeyError, TypeError):
            break  # a decodable frame that is not a journal row: stop
        if record.op not in RouterJournal.OPS:
            break
        journal.records.append(record)
    return journal


class RouterJournal:
    """An append-only log of one router's state transitions."""

    #: Row vocabulary (closed, like the trace-event vocabulary).
    OPS = ("register", "send", "deliver", "status", "effect-done",
           "status-done")

    def __init__(self, sink: Optional[JournalSink] = None) -> None:
        self.records: List[JournalRecord] = []
        self.replays = 0
        self.sink = sink
        """Optional durable sink; when set, every appended row is framed
        to disk before :meth:`append` returns (write-ahead for real)."""

        self._next_status_id = 0
        self._effect_stack: List[Tuple[int, int]] = []

    def append(self, op: str, *args: Any) -> JournalRecord:
        """Durably record one operation before it takes effect."""
        if op not in self.OPS:
            raise ValueError(
                f"unknown journal op {op!r}; expected one of {self.OPS}"
            )
        record = JournalRecord(
            op=op,
            args=tuple(args),
            provenance=self._effect_stack[-1] if self._effect_stack else None,
        )
        if self.sink is not None:
            self.sink.write(record)
        self.records.append(record)
        return record

    def next_status_id(self) -> int:
        """A unique, monotonically increasing id for one status row.

        Ids are assigned in ``report_status`` call order; replay triggers
        the same calls in the same order, so the rebuilt journal's ids
        line up with the crashed incarnation's.
        """
        sid = self._next_status_id
        self._next_status_id += 1
        return sid

    def begin_effect(self, sid: int, idx: int) -> None:
        """Rows appended until :meth:`end_effect` carry this provenance."""
        self._effect_stack.append((sid, idx))

    def end_effect(self) -> None:
        self._effect_stack.pop()

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------

    def replay(
        self,
        worldset_factory: Callable[[int], Any],
        journal: "RouterJournal | None" = None,
    ):
        """Rebuild a router by re-running the log against fresh state.

        ``worldset_factory(pid)`` must build the same initial
        :class:`~repro.predicates.WorldSet` a pid was registered with
        originally (same initial predicate and state constructor);
        everything downstream -- splits, eliminations, live-world
        predicates, buffered effects -- is reproduced by the log itself.

        ``journal`` (default: a fresh one) becomes the rebuilt router's
        own journal, so the survivor keeps journaling from where the
        crashed incarnation stopped.
        """
        from repro.ipc.router import MessageRouter

        router = MessageRouter(
            journal=journal if journal is not None else RouterJournal()
        )
        # Pair status rows by id (robust against nested report_status
        # rows) and collect the per-effect completion markers.
        paired: Set[int] = set()
        effect_done: Dict[int, Set[int]] = {}
        for record in self.records:
            if record.op == "status-done":
                paired.add(record.args[3])
            elif record.op == "effect-done":
                sid, idx = record.args
                effect_done.setdefault(sid, set()).add(idx)

        def will_rerun(provenance: Tuple[int, int]) -> bool:
            """Will replay re-execute the effect that wrote this row?"""
            sid, idx = provenance
            return sid not in paired and idx not in effect_done.get(sid, ())

        # report_status looks effects up here (by deterministic status
        # id) so an interrupted status skips the effects that already
        # ran, even when reached through a nested call.
        router._inherited_effect_done = effect_done
        counts = {op: 0 for op in self.OPS}
        executed = 0
        for record in self.records:
            counts[record.op] += 1
            if record.provenance is not None and will_rerun(record.provenance):
                # The effect that journaled this row is about to be
                # re-executed; replaying the row too would apply its
                # transition twice.
                continue
            if record.op == "register":
                (pid,) = record.args
                router.register(pid, worldset_factory(pid))
            elif record.op == "send":
                sender, dest, data, predicate = record.args
                router.send(sender, dest, data, predicate)
            elif record.op == "deliver":
                sender, dest = record.args
                router.deliver_one(sender, dest)
            elif record.op == "status":
                pid, completed, sid = record.args
                done = sid in paired
                # A paired row means the old incarnation finished running
                # the released effects before it crashed: re-running them
                # would double a side effect the world already caused.
                # An unpaired row is the interrupted operation -- replay
                # completes it, re-executing only the effects without an
                # effect-done marker.
                router.report_status(pid, completed, execute=not done)
                if not done:
                    executed += 1
            # "effect-done" / "status-done" rows carry no action.
        router._inherited_effect_done = {}
        self.replays += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.JOURNAL_REPLAY,
                records=len(self.records),
                registered=counts["register"],
                sends=counts["send"],
                deliveries=counts["deliver"],
                interrupted_completed=executed,
            )
        return router

    def __repr__(self) -> str:
        return f"RouterJournal({len(self.records)} records)"
