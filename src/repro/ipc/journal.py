"""A write-ahead journal for the message router.

Section 3.4.2's message layer is stateful: channel sequence numbers,
world-set splits, known process statuses, deferred side effects.  If the
node hosting the router crashes, that state is gone -- but the paper's
semantics must survive: the rebuilt router has to agree with the old one
on which worlds are live, and a side effect released before the crash
must *never* run again.

:class:`RouterJournal` records every state transition write-ahead:

- ``register`` / ``send`` / ``deliver`` rows capture the inputs that
  drive world evolution (replaying sends through fresh channels
  reproduces the same sequence numbers, hence the same message uids);
- status resolution is journaled as a ``status`` row *before* effects
  run and a ``status-done`` row after.  On replay, a paired row means
  the released effects already executed pre-crash, so they are collected
  but not re-invoked; an unpaired ``status`` row marks the operation the
  crash interrupted, which replay completes exactly once.

:meth:`RouterJournal.replay` rebuilds a :class:`~repro.ipc.MessageRouter`
from the log and emits one ``journal-replay`` trace event summarizing
what it reconstructed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Tuple

from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer


@dataclass(frozen=True)
class JournalRecord:
    """One durable row: an operation name and its positional arguments."""

    op: str
    args: Tuple[Any, ...]

    def __repr__(self) -> str:
        return f"JournalRecord({self.op}, {self.args!r})"


class RouterJournal:
    """An append-only log of one router's state transitions."""

    #: Row vocabulary (closed, like the trace-event vocabulary).
    OPS = ("register", "send", "deliver", "status", "status-done")

    def __init__(self) -> None:
        self.records: List[JournalRecord] = []
        self.replays = 0

    def append(self, op: str, *args: Any) -> JournalRecord:
        """Durably record one operation before it takes effect."""
        if op not in self.OPS:
            raise ValueError(
                f"unknown journal op {op!r}; expected one of {self.OPS}"
            )
        record = JournalRecord(op=op, args=tuple(args))
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------

    def replay(
        self,
        worldset_factory: Callable[[int], Any],
        journal: "RouterJournal | None" = None,
    ):
        """Rebuild a router by re-running the log against fresh state.

        ``worldset_factory(pid)`` must build the same initial
        :class:`~repro.predicates.WorldSet` a pid was registered with
        originally (same initial predicate and state constructor);
        everything downstream -- splits, eliminations, live-world
        predicates, buffered effects -- is reproduced by the log itself.

        ``journal`` (default: a fresh one) becomes the rebuilt router's
        own journal, so the survivor keeps journaling from where the
        crashed incarnation stopped.
        """
        from repro.ipc.router import MessageRouter

        router = MessageRouter(
            journal=journal if journal is not None else RouterJournal()
        )
        counts = {op: 0 for op in self.OPS}
        executed = 0
        for position, record in enumerate(self.records):
            counts[record.op] += 1
            if record.op == "register":
                (pid,) = record.args
                router.register(pid, worldset_factory(pid))
            elif record.op == "send":
                sender, dest, data, predicate = record.args
                router.send(sender, dest, data, predicate)
            elif record.op == "deliver":
                sender, dest = record.args
                router.deliver_one(sender, dest)
            elif record.op == "status":
                pid, completed = record.args
                # Scan forward for the paired row: rows an *effect* wrote
                # while executing (a released send, say) land between the
                # pair, and the loop replays those on its own.
                done = False
                for later in self.records[position + 1:]:
                    if later.op == "status":
                        break
                    if (
                        later.op == "status-done"
                        and later.args[:2] == (pid, completed)
                    ):
                        done = True
                        break
                # A paired row means the old incarnation finished running
                # the released effects before it crashed: re-running them
                # would double a side effect the world already caused.
                # An unpaired row is the interrupted operation -- replay
                # completes it exactly once.
                router.report_status(pid, completed, execute=not done)
                if not done:
                    executed += 1
            # "status-done" rows carry no action of their own.
        self.replays += 1
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.JOURNAL_REPLAY,
                records=len(self.records),
                registered=counts["register"],
                sends=counts["send"],
                deliveries=counts["deliver"],
                interrupted_completed=executed,
            )
        return router

    def __repr__(self) -> str:
        return f"RouterJournal({len(self.records)} records)"
