"""Vector-clock happens-before tracking for dynamic partial-order reduction.

One :class:`HappensBefore` instance tracks a single checked run.  Every
executed scheduling step is recorded with the access signatures it
touched; the clock algebra is the standard one (Flanagan & Godefroid,
POPL 2005):

- each activity carries a vector clock, joined with the clock of every
  earlier *conflicting* step when it executes;
- step ``i`` (by activity ``q``) happens-before activity ``p``'s next
  transition iff ``V_i[q] <= C_p[q]`` -- ``V_i[q]`` is maximal in ``q``'s
  coordinate at ``i``, so the single-coordinate test is exact;
- two steps *race* when they conflict, belong to different activities,
  and neither happens-before the other.

The scheduler calls :meth:`races` *before* :meth:`record` for each
executed step: races are judged against the clock the activity had
before taking the step.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.independence.signature import Signature, segment_conflicts

Clock = Dict[int, int]


class HappensBefore:
    """Happens-before over one run's executed steps."""

    def __init__(self) -> None:
        self._clocks: Dict[int, Clock] = {}
        self._steps: List[Tuple[int, Tuple[Signature, ...], Clock]] = []

    def __len__(self) -> int:
        return len(self._steps)

    def races(
        self, chosen: int, access: Iterable[Signature]
    ) -> List[int]:
        """Indices of earlier steps racing with ``(chosen, access)``.

        Nearest race last is irrelevant here -- every unordered conflict
        is a reversible race, and the DPOR scheduler plants a backtrack
        point at each one.
        """
        access = tuple(access)
        clock = self._clocks.get(chosen, {})
        racing: List[int] = []
        for i, (actor, prior_access, prior_clock) in enumerate(self._steps):
            if actor == chosen:
                continue
            if not segment_conflicts(prior_access, access):
                continue
            if prior_clock.get(actor, 0) <= clock.get(actor, 0):
                continue  # already ordered before the chosen transition
            racing.append(i)
        return racing

    def record(self, chosen: int, access: Iterable[Signature]) -> Clock:
        """Record one executed step; returns the step's vector clock."""
        access = tuple(access)
        clock = dict(self._clocks.get(chosen, {}))
        for actor, prior_access, prior_clock in self._steps:
            if actor != chosen and segment_conflicts(prior_access, access):
                for key, value in prior_clock.items():
                    if value > clock.get(key, 0):
                        clock[key] = value
        clock[chosen] = len(self._steps) + 1
        self._clocks[chosen] = clock
        self._steps.append((chosen, access, clock))
        return clock

    def actor(self, step: int) -> int:
        return self._steps[step][0]
