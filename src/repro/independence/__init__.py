"""One independence engine, shared by the checker and the executor.

The paper's alternatives are *mutually exclusive* only when they
actually conflict.  This package holds the single source of truth for
"conflict": ``(kind, key)`` access signatures and declared write sets
resolve to page/channel resources, and two operations are independent
exactly when those resources are disjoint.

Two consumers, one relation:

- the checker's :class:`~repro.check.strategies.DFSScheduler` uses the
  precise signature conflict relation (:mod:`repro.independence.signature`)
  and vector-clock happens-before tracking (:mod:`repro.independence.dpor`)
  for real dynamic partial-order reduction;
- the runtime's :class:`~repro.core.concurrent.ConcurrentExecutor` uses
  declared write sets (:class:`~repro.independence.signature.WriteSet`)
  and the :class:`~repro.independence.engine.IndependenceEngine` to plan
  maximal-step commits -- provably disjoint arms commit together through
  :func:`repro.independence.commit.graft_step` instead of racing through
  the winner semaphore.

Seeding a bug here (see ``_TEST_MUTATIONS`` in
:mod:`repro.independence.engine`) poisons both consumers consistently --
which is exactly what the mutation-adequacy suite exploits.
"""

from repro.independence.engine import IndependenceEngine, StepPlan, default_engine
from repro.independence.signature import (
    FINISH,
    START,
    Signature,
    WriteSet,
    page_signature,
    quiet_finish,
    segment_conflicts,
    signatures_conflict,
)

__all__ = [
    "FINISH",
    "START",
    "IndependenceEngine",
    "Signature",
    "StepPlan",
    "WriteSet",
    "default_engine",
    "page_signature",
    "quiet_finish",
    "segment_conflicts",
    "signatures_conflict",
]
