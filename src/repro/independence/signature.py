"""Access signatures and declared write sets.

A :data:`Signature` is the checker's unit of observation: every yield
point names the ``(kind, key)`` resource it is about to touch
(``("chan-send", "1->2")``, ``("guard-eval", "arm-name")``, ...).  A
:class:`WriteSet` is the runtime's unit of declaration: an arm states up
front which byte ranges / variables / channels it writes, and the
engine resolves that to virtual page numbers so disjointness is decided
in the same currency the COW page tables account in.

The precise conflict relation lives here so the checker's DPOR and the
runtime's maximal-step planner cannot drift apart:

- the decisive :data:`FINISH` marker (a *successful* finish while the
  race cancels on first win) conflicts with everything -- it picks the
  winner and cancels every sibling, so its position in the schedule is
  always significant;
- a *quiet* finish (a failed arm, or any finish in collect mode where
  the winner is order-independent) is keyed per arm and conflicts with
  nothing but itself;
- keyed signatures conflict when they name the same resource; a send
  and a receive on the same channel conflict with each other;
- keyless signatures (``sleep``, ``page-shipback``, ...) never conflict:
  arms are COW-isolated by construction, so only named shared resources
  order them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

Signature = Tuple[str, Optional[str]]

FINISH: Signature = ("finish", None)
"""A decisive arm termination: it selects the winner and cancels the
siblings, so it conflicts with every other segment."""

START: Signature = ("start", None)

#: A send and a receive on the same channel key conflict even though
#: their kinds differ.
_CHANNEL_KINDS = frozenset({"chan-send", "chan-recv"})


def quiet_finish(index: int) -> Signature:
    """The finish signature of an arm whose termination decides nothing.

    Failed arms never cancel siblings; in collect (maximal-step) mode
    even successful finishes are quiet because the committed winner is
    the lowest index, not the temporal first.
    """
    return ("finish", f"arm:{index}")


def page_signature(vpn: int) -> Signature:
    """The signature under which a dirty page appears in a finish access."""
    return ("page", str(vpn))


def signatures_conflict(a: Signature, b: Signature) -> bool:
    """The precise pairwise conflict relation (symmetric by construction)."""
    if a == FINISH or b == FINISH:
        return True
    kind_a, key_a = a
    kind_b, key_b = b
    if key_a is None or key_b is None:
        return False
    if key_a != key_b:
        return False
    if kind_a == kind_b:
        return True
    return kind_a in _CHANNEL_KINDS and kind_b in _CHANNEL_KINDS


def segment_conflicts(
    access_a: Iterable[Signature], access_b: Iterable[Signature]
) -> bool:
    """Do two executed segments conflict (any signature pair conflicts)?"""
    access_b = tuple(access_b)
    return any(
        signatures_conflict(sig_a, sig_b)
        for sig_a in access_a
        for sig_b in access_b
    )


def signature_conflicts_segment(
    sig: Signature, access: Iterable[Signature]
) -> bool:
    """Does one pending signature conflict with an executed segment?"""
    return any(signatures_conflict(sig, other) for other in access)


@dataclass(frozen=True)
class WriteSet:
    """An arm's declared writes, resolvable to page/channel resources.

    ``ranges`` are ``(offset, length)`` byte ranges in the arm's address
    space.  ``variables=True`` declares writes to the named-variable
    directory, which is a shared append log starting at page 0 -- any
    two variable writers overlap there, so variables resolve to the
    first ``directory_pages`` pages rather than to per-name resources.
    ``channels`` are predicated-message channel keys.
    """

    ranges: Tuple[Tuple[int, int], ...] = ()
    variables: bool = False
    channels: Tuple[str, ...] = ()
    directory_pages: int = 2

    def pages(self, page_size: int) -> FrozenSet[int]:
        """The virtual page numbers this declaration may dirty."""
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        out = set()
        for offset, length in self.ranges:
            if length <= 0:
                continue
            first = offset // page_size
            last = (offset + length - 1) // page_size
            out.update(range(first, last + 1))
        if self.variables:
            out.update(range(self.directory_pages))
        return frozenset(out)
