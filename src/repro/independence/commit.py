"""The maximal-step commit primitive: validate, snapshot, commit, rollback.

:func:`graft_step` merges the dirty pages of several *secondary* arms
into the *primary* arm's address space, page-pointer by page-pointer,
so one subsequent ``adopt`` of the primary commits the whole step into
the parent atomically.  Three phases, as in the exemplar's ACID
maximal-step firing:

1. **validate** -- every grafted page must be mapped in both spaces and
   the grafted sets must be disjoint from the primary's own dirty set
   and from each other (as judged by the shared engine, so a seeded
   false-independence bug poisons this check the same way it poisoned
   the plan);
2. **snapshot** -- the primary's current frame for every target page is
   referenced once more, so it survives being swapped out;
3. **commit** -- each secondary frame is referenced and swapped in via
   ``set_frame``.  On any failure the snapshot frames are swapped back
   (consuming the snapshot references) and the error is re-raised; on
   success the snapshot references are dropped.

Secondaries keep their own references throughout -- their spaces are
released by the kernel after the step commits.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.errors import PageApplyError
from repro.resilience.injector import active as _active_injector


def graft_step(primary_space, grafts: Sequence[Tuple[object, Iterable[int]]]) -> int:
    """Graft ``(space, vpns)`` pairs into ``primary_space``; returns pages moved.

    Raises :class:`~repro.errors.PageApplyError` with the primary space
    unchanged (validation failure) or rolled back (commit failure).
    """
    from repro.independence.engine import default_engine

    table = primary_space.table
    store = table.store
    normalized = [(space, sorted(set(vpns))) for space, vpns in grafts]

    # -- phase 1: validate --------------------------------------------
    claimed = sorted(table.dirty_pages)
    for space, vpns in normalized:
        if space.table.store is not store:
            raise PageApplyError("cannot graft pages from a different store")
        if not default_engine.disjoint(claimed, vpns):
            overlap = sorted(set(claimed) & set(vpns))
            raise PageApplyError(
                f"maximal-step graft overlaps already-claimed pages {overlap}"
            )
        for vpn in vpns:
            if vpn < 0 or vpn >= primary_space.num_pages:
                raise PageApplyError(
                    f"grafted page {vpn} outside space of "
                    f"{primary_space.num_pages} pages"
                )
            if not space.table.is_mapped(vpn):
                raise PageApplyError(
                    f"grafted page {vpn} is not mapped in the source space"
                )
        claimed = sorted(set(claimed) | set(vpns))

    # -- phase 2: snapshot --------------------------------------------
    targets = sorted({vpn for _, vpns in normalized for vpn in vpns})
    snapshot: List[Tuple[int, int]] = []
    for vpn in targets:
        old_frame = table.frame_of(vpn)
        store.incref(old_frame)
        snapshot.append((vpn, old_frame))

    # -- phase 3: commit, rolling back on failure ---------------------
    injector = _active_injector()
    committed_vpns: List[int] = []
    try:
        for space, vpns in normalized:
            for vpn in vpns:
                if (
                    injector is not None
                    and injector.draw("step-commit-fail", vpn) is not None
                ):
                    raise PageApplyError(
                        f"injected step-commit failure at page {vpn}"
                    )
                frame = space.table.frame_of(vpn)
                store.incref(frame)
                table.set_frame(vpn, frame)
                committed_vpns.append(vpn)
    except BaseException:
        # Swap the snapshot frames back in; ``set_frame`` consumes the
        # snapshot reference and releases the half-committed frame.
        committed_set = set(committed_vpns)
        for vpn, old_frame in snapshot:
            if vpn in committed_set:
                table.set_frame(vpn, old_frame)
            else:
                store.decref(old_frame)
        primary_space._invalidate_vars()
        raise
    # Success: drop the snapshot references.
    for _, old_frame in snapshot:
        store.decref(old_frame)
    primary_space._invalidate_vars()
    return len(committed_vpns)
