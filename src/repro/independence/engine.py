"""The independence engine: plan and validate maximal steps.

The engine answers exactly three questions, all in page currency:

- :meth:`IndependenceEngine.plan` -- *before* the race: can this block's
  arms commit as one maximal step?  Only when every arm declares a
  :class:`~repro.independence.signature.WriteSet` and all declarations
  are pairwise disjoint.
- :meth:`IndependenceEngine.summarize` -- *after* the race: which pages
  did an arm actually dirty (the page-signature summary that also feeds
  the checker's finish accesses)?
- :meth:`IndependenceEngine.validate` -- *at commit*: do the actual
  dirty sets honour the plan (each within its declaration, all pairwise
  disjoint)?  Any violation vetoes the step and the block falls back to
  the classic winner-semaphore race.

``_TEST_MUTATIONS`` seeds engine bugs for the mutation-adequacy suite,
mirroring ``repro.pages.table._TEST_MUTATIONS``:

- ``indep-drop-page``: :meth:`summarize` silently drops the highest
  dirty page -- a secondary arm's write never reaches the parent;
- ``indep-false-disjoint``: :meth:`disjoint` ignores page overlap -- a
  conflicting block is wrongly committed as a maximal step.

Both poison planner and validator consistently (one engine, one bug),
so only the checker's serial-equivalence oracle can catch them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.independence.signature import WriteSet

#: Active engine mutations (test-only; see module docstring).
_TEST_MUTATIONS: Set[str] = set()


@dataclass(frozen=True)
class StepPlan:
    """A provably disjoint block: the arms that may commit together."""

    arms: Tuple[int, ...]
    pages: Tuple[Tuple[int, FrozenSet[int]], ...]
    """Per-arm declared page sets, as ``(arm_index, pages)`` pairs."""

    def declared(self, index: int) -> Optional[FrozenSet[int]]:
        for arm, pages in self.pages:
            if arm == index:
                return pages
        return None


class IndependenceEngine:
    """Signature-based independence, shared by checker and executor."""

    def disjoint(
        self, pages_a: Iterable[int], pages_b: Iterable[int]
    ) -> bool:
        """Are two page sets free of any shared page?"""
        if "indep-false-disjoint" in _TEST_MUTATIONS:
            return True
        return not (frozenset(pages_a) & frozenset(pages_b))

    def summarize(self, dirty: Iterable[int]) -> FrozenSet[int]:
        """An arm's actual dirty pages, as the engine accounts them."""
        pages = frozenset(dirty)
        if "indep-drop-page" in _TEST_MUTATIONS and pages:
            pages = pages - {max(pages)}
        return pages

    def plan(
        self,
        declared: Dict[int, Optional[WriteSet]],
        page_size: int,
    ) -> Optional[StepPlan]:
        """A maximal-step plan, or None when the block must race.

        ``declared`` maps arm index to its declared write set (``None``
        for an arm that declares nothing).  A plan requires at least two
        arms, a declaration from every arm, disjoint channel sets, and
        pairwise disjoint page sets.
        """
        if len(declared) < 2:
            return None
        resolved: Dict[int, Tuple[FrozenSet[int], FrozenSet[str]]] = {}
        for index, write_set in declared.items():
            if write_set is None:
                return None
            resolved[index] = (
                write_set.pages(page_size),
                frozenset(write_set.channels),
            )
        indices = sorted(resolved)
        for a, b in combinations(indices, 2):
            pages_a, channels_a = resolved[a]
            pages_b, channels_b = resolved[b]
            if channels_a & channels_b:
                return None
            if not self.disjoint(pages_a, pages_b):
                return None
        return StepPlan(
            arms=tuple(indices),
            pages=tuple((i, resolved[i][0]) for i in indices),
        )

    def validate(
        self,
        plan: StepPlan,
        actual: Dict[int, FrozenSet[int]],
    ) -> Optional[str]:
        """Why the committers' actual dirty sets break the plan (or None).

        ``actual`` maps each *committing* arm to its summarized dirty
        set; failed arms never commit and are not validated.
        """
        for index in sorted(actual):
            declared = plan.declared(index)
            if declared is None:
                return f"arm {index} succeeded but is not in the step plan"
            extra = actual[index] - declared
            if extra:
                return (
                    f"arm {index} dirtied pages {sorted(extra)} outside "
                    f"its declared write set"
                )
        for a, b in combinations(sorted(actual), 2):
            if not self.disjoint(actual[a], actual[b]):
                return f"arms {a} and {b} dirtied overlapping pages"
        return None


#: The process-wide engine both the checker and the executor consult.
default_engine = IndependenceEngine()
