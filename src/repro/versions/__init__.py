"""Predicated versions of shared data (paper section 6).

'More related to our predicates is the idea used in the PEDIT [Kruskal
1984] parametric line editor.  Associated with each line of text is a set
of parameters ... The line is selected for display if the mask set in the
view of the file matches the settings of the state variables ... Each
setting of the state variables gives a distinct version, but in practice
most of the text is shared between the versions.'

:class:`~repro.versions.pedit.ParametricFile` implements that model: one
store of predicated lines, many views, heavy sharing -- the same
structural trick the paper's worlds play with pages.
"""

from repro.versions.pedit import LineConstraint, ParametricFile, View

__all__ = ["LineConstraint", "ParametricFile", "View"]
