"""A PEDIT-style parametric file: many versions, one line store.

Lines carry a :class:`LineConstraint` -- required state-variable settings
plus explicit exclusions.  A :class:`View` fixes the state variables
(``SYSTEM=UNIX, VERSION=SysV`` in the paper's example); the view shows
exactly the lines whose constraints its settings satisfy.  Edits made
through a view predicate the changes on that view's settings, so other
versions are untouched -- deletion of a shared line from one view only
*excludes* it there.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError


class VersionError(ReproError):
    """Invalid parametric-file operation."""


@dataclass
class LineConstraint:
    """Visibility rule for one line."""

    required: Dict[str, str] = field(default_factory=dict)
    """Variable settings that must hold for the line to appear."""

    excluded: List[Dict[str, str]] = field(default_factory=list)
    """Settings combinations under which the line is hidden even when the
    requirements hold (produced by deleting the line from a view)."""

    def visible_under(self, settings: Dict[str, str]) -> bool:
        """Does the line appear in a view with these settings?"""
        for variable, value in self.required.items():
            if settings.get(variable) != value:
                return False
        for exclusion in self.excluded:
            if exclusion and all(
                settings.get(variable) == value
                for variable, value in exclusion.items()
            ):
                return False
        return True

    def copy(self) -> "LineConstraint":
        return LineConstraint(
            required=dict(self.required),
            excluded=[dict(e) for e in self.excluded],
        )


@dataclass
class _Line:
    line_id: int
    text: str
    constraint: LineConstraint


class ParametricFile:
    """One store of predicated lines; versions are views over it."""

    def __init__(self, name: str = "file") -> None:
        self.name = name
        self._lines: List[_Line] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # direct (unconditional) editing

    def append(self, text: str, required: Optional[Dict[str, str]] = None) -> int:
        """Add a line at the end; returns its id."""
        line = _Line(
            line_id=next(self._ids),
            text=text,
            constraint=LineConstraint(required=dict(required or {})),
        )
        self._lines.append(line)
        return line.line_id

    def extend(self, texts: Iterable[str]) -> None:
        """Append several unconditional lines."""
        for text in texts:
            self.append(text)

    @property
    def total_lines(self) -> int:
        """Stored lines across all versions."""
        return len(self._lines)

    def view(self, **settings: str) -> "View":
        """Open a view with the given state-variable settings."""
        return View(self, dict(settings))

    # ------------------------------------------------------------------
    # internals for views

    def _visible(self, settings: Dict[str, str]) -> List[_Line]:
        return [
            line for line in self._lines
            if line.constraint.visible_under(settings)
        ]

    def _insert_after(
        self, anchor_id: Optional[int], text: str, required: Dict[str, str]
    ) -> int:
        line = _Line(
            line_id=next(self._ids),
            text=text,
            constraint=LineConstraint(required=dict(required)),
        )
        if anchor_id is None:
            self._lines.insert(0, line)
        else:
            for index, existing in enumerate(self._lines):
                if existing.line_id == anchor_id:
                    self._lines.insert(index + 1, line)
                    break
            else:
                raise VersionError(f"no line with id {anchor_id}")
        return line.line_id

    def _find(self, line_id: int) -> _Line:
        for line in self._lines:
            if line.line_id == line_id:
                return line
        raise VersionError(f"no line with id {line_id}")

    # ------------------------------------------------------------------
    # analysis

    def sharing_report(
        self, versions: List[Dict[str, str]]
    ) -> Dict[str, float]:
        """How much text the given versions share.

        Returns ``lines_per_version`` (mean), ``stored_lines``, and
        ``sharing_factor`` = total displayed lines across versions over
        stored lines -- the PEDIT observation quantified.
        """
        if not versions:
            raise VersionError("need at least one version")
        displayed = [len(self._visible(settings)) for settings in versions]
        total_displayed = sum(displayed)
        return {
            "stored_lines": float(self.total_lines),
            "lines_per_version": total_displayed / len(versions),
            "sharing_factor": (
                total_displayed / self.total_lines if self._lines else 0.0
            ),
        }

    def __repr__(self) -> str:
        return f"ParametricFile({self.name!r}, stored={self.total_lines})"


class View:
    """One version of the file: fixed state-variable settings."""

    def __init__(self, file: ParametricFile, settings: Dict[str, str]) -> None:
        self.file = file
        self.settings = dict(settings)

    # ------------------------------------------------------------------

    def lines(self) -> List[str]:
        """The text of this version, in order."""
        return [line.text for line in self.file._visible(self.settings)]

    def line_ids(self) -> List[int]:
        """Ids of the visible lines, in order."""
        return [line.line_id for line in self.file._visible(self.settings)]

    def text(self) -> str:
        """The version as one string."""
        return "\n".join(self.lines())

    def __len__(self) -> int:
        return len(self.file._visible(self.settings))

    # ------------------------------------------------------------------
    # predicated editing

    def insert(self, position: int, text: str) -> int:
        """Insert a line at ``position`` *of this view*.

        The new line is predicated on this view's settings: other
        versions do not see it.
        """
        visible = self.file._visible(self.settings)
        if position < 0 or position > len(visible):
            raise VersionError(
                f"position {position} outside view of {len(visible)} lines"
            )
        anchor = visible[position - 1].line_id if position > 0 else None
        return self.file._insert_after(anchor, text, self.settings)

    def append(self, text: str) -> int:
        """Insert at the end of this view."""
        return self.insert(len(self), text)

    def delete(self, position: int) -> None:
        """Remove the line at ``position`` *from this view only*.

        A line that exists solely for this view is removed outright; a
        shared line gains an exclusion for these settings.
        """
        visible = self.file._visible(self.settings)
        try:
            line = visible[position]
        except IndexError:
            raise VersionError(
                f"position {position} outside view of {len(visible)} lines"
            ) from None
        if line.constraint.required == self.settings and not line.constraint.excluded:
            self.file._lines.remove(line)
        else:
            line.constraint.excluded.append(dict(self.settings))

    def replace(self, position: int, text: str) -> int:
        """Replace a line in this view: exclude the old, insert the new."""
        line_id = self.insert(position + 1, text)
        self.delete(position)
        return line_id

    def __repr__(self) -> str:
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.settings.items()))
        return f"View({inner}, lines={len(self)})"
