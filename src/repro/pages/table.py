"""Copy-on-write page tables.

A :class:`PageTable` maps virtual page numbers to frames in a shared
:class:`~repro.pages.store.PageStore`.  ``fork()`` duplicates the map and
bumps every frame's reference count -- the cheap operation whose measured
cost (31 ms on the 3B2, 12 ms on the HP) section 4.4 of the paper reports.
A write to a shared frame triggers a copy fault: the frame is duplicated
and the writer's entry is repointed at the private copy.

The table tracks ``cow_faults`` (copies actually performed) and
``pages_written`` (distinct pages dirtied since the last fork/commit),
because 'the fraction of the pages in the address space which are written
is the important independent variable' for the overhead model.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.errors import PageFault
from repro.pages.page import patch_page
from repro.pages.store import PageStore

_TEST_MUTATIONS: set = set()
"""Names of deliberately re-introduced bugs, armed only by the model
checker's mutation harness (:mod:`repro.check.mutations`).  Empty in any
production configuration."""


class PageTable:
    """A virtual-to-physical page map with COW semantics."""

    def __init__(self, store: PageStore) -> None:
        self.store = store
        self._entries: Dict[int, int] = {}
        self._dirty: set[int] = set()
        self.cow_faults = 0
        """Copy faults serviced since construction (monotone)."""

    # ------------------------------------------------------------------
    # mapping management

    def map_page(self, vpn: int, data: bytes = b"") -> None:
        """Map virtual page ``vpn`` to a fresh frame holding ``data``.

        The new frame is allocated *before* the old frame's reference is
        dropped: decref-first could reclaim the old frame and let an
        id-recycling allocator hand the same id straight back, an ABA
        hazard for anyone holding the old frame id across the remap.
        """
        if vpn < 0:
            raise ValueError("virtual page numbers are non-negative")
        old_frame = self._entries.get(vpn)
        self._entries[vpn] = self.store.allocate(data)
        if old_frame is not None:
            self.store.decref(old_frame)
        self._dirty.add(vpn)

    def unmap_page(self, vpn: int) -> None:
        """Remove the mapping for ``vpn`` and release its frame."""
        frame = self._entries.pop(vpn, None)
        if frame is None:
            raise PageFault(f"page {vpn} is not mapped")
        self.store.decref(frame)
        self._dirty.discard(vpn)

    def is_mapped(self, vpn: int) -> bool:
        """True when ``vpn`` has a frame."""
        return vpn in self._entries

    def frame_of(self, vpn: int) -> int:
        """The frame id backing ``vpn`` (raises :class:`PageFault`)."""
        try:
            return self._entries[vpn]
        except KeyError:
            raise PageFault(f"page {vpn} is not mapped") from None

    def mapped_pages(self) -> Iterator[int]:
        """Iterate mapped virtual page numbers in ascending order."""
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # reads and writes

    def read_page(self, vpn: int) -> bytes:
        """The contents of virtual page ``vpn`` as immutable ``bytes``.

        Frames adopted from shared-memory slabs serve reads through an
        external buffer; this accessor materializes them so callers can
        pickle or slice the result freely.  Use :meth:`read_page_view`
        for the zero-copy path.
        """
        data = self.store.read(self.frame_of(vpn))
        return data if isinstance(data, bytes) else bytes(data)

    def read_page_view(self, vpn: int) -> memoryview:
        """A zero-copy ``memoryview`` of virtual page ``vpn``.

        Valid for as long as this table keeps its reference on the
        backing frame (frames are immutable, so concurrent readers are
        safe by construction).
        """
        return self.store.view(self.frame_of(vpn))

    def write_page(self, vpn: int, data: bytes, offset: int = 0) -> None:
        """Write ``data`` into page ``vpn`` at ``offset``, copying on demand.

        If the backing frame is shared with another table, a COW fault is
        serviced first: the frame contents are copied into a private frame.

        A write whose bytes match the page's current contents is a no-op:
        no fault is serviced, no frame is allocated, and the page is not
        marked dirty.  (A page rewritten with its prior contents used to
        ship as dirty anyway -- a spurious copy at fork *and* a spurious
        page in every shipback.)  The comparison is a single buffer
        compare against the live frame view, so the skip costs less than
        the allocation it avoids.
        """
        frame = self.frame_of(vpn)
        old = self.store.read(frame)
        if offset < 0 or offset + len(data) > len(old):
            raise ValueError(
                f"write of {len(data)} bytes at offset {offset} "
                f"does not fit in a {len(old)}-byte page"
            )
        if old[offset:offset + len(data)] == data:
            return
        if not isinstance(old, bytes):
            old = bytes(old)
        new = patch_page(old, offset, data)
        if self.store.is_shared(frame):
            self.cow_faults += 1
        self._entries[vpn] = self.store.allocate(new)
        self.store.decref(frame)
        self._dirty.add(vpn)

    def set_frame(self, vpn: int, frame_id: int) -> None:
        """Point ``vpn`` at ``frame_id``, consuming one reference on it.

        This is the zero-copy commit primitive: the shared-memory
        shipback path adopts a slab slot as a frame and swaps the page's
        pointer here instead of copying bytes through :meth:`write_page`.
        The page is marked dirty (the new frame's contents are the
        child's, by construction different from what the parent held).
        """
        if vpn < 0:
            raise ValueError("virtual page numbers are non-negative")
        old_frame = self._entries.get(vpn)
        self._entries[vpn] = frame_id
        if old_frame is not None:
            self.store.decref(old_frame)
        self._dirty.add(vpn)

    def set_frames(self, assignments) -> None:
        """Batched :meth:`set_frame`: swap many page pointers at once.

        ``assignments`` is an iterable of ``(vpn, frame_id)``.  Old
        frames are released in one store pass, so an N-page commit pays
        one lock acquisition instead of N -- the difference between the
        pointer-swap commit scaling with page count and scaling with
        lock traffic.
        """
        entries = self._entries
        dirty = self._dirty
        released = []
        for vpn, frame_id in assignments:
            if vpn < 0:
                raise ValueError("virtual page numbers are non-negative")
            old_frame = entries.get(vpn)
            entries[vpn] = frame_id
            if old_frame is not None:
                released.append(old_frame)
            dirty.add(vpn)
        if released:
            self.store.decref_many(released)

    # ------------------------------------------------------------------
    # fork / dirty accounting

    def fork(self) -> "PageTable":
        """A child table sharing every frame with this one (COW).

        This is 'page map inheritance from the parent' -- O(mapped pages)
        bookkeeping, no data copies.
        """
        child = PageTable(self.store)
        child._entries = dict(self._entries)
        for frame in self._entries.values():
            self.store.incref(frame)
        return child

    def clear_dirty(self) -> None:
        """Reset the pages-written counter (called at fork and commit)."""
        self._dirty = set()

    @property
    def pages_written(self) -> int:
        """Distinct pages dirtied since the last :meth:`clear_dirty`."""
        return len(self._dirty)

    @property
    def dirty_pages(self) -> set:
        """The set of dirtied virtual page numbers."""
        return set(self._dirty)

    def private_pages(self) -> int:
        """Pages whose frames are not shared with any other table."""
        return sum(
            1 for frame in self._entries.values() if not self.store.is_shared(frame)
        )

    def shared_pages(self) -> int:
        """Pages whose frames are shared with at least one other table."""
        return len(self._entries) - self.private_pages()

    # ------------------------------------------------------------------
    # lifecycle

    def release(self) -> None:
        """Drop every frame reference (process exit or elimination)."""
        for frame in self._entries.values():
            self.store.decref(frame)
        self._entries = {}
        self._dirty = set()

    def adopt(self, other: "PageTable") -> None:
        """Atomically replace this table's map with ``other``'s.

        This is the synchronization step of ``alt_wait``: 'the parent
        process absorbs the state changes made by its child by atomically
        replacing its page pointer with that of the child'.  ``other`` is
        consumed (left empty).

        Dirty accounting is the *union* of both tables' dirty sets: pages
        this table dirtied before the adoption are still dirty afterwards
        (a nested block's commit must not launder the outer arm's earlier
        writes out of its shipback set).
        """
        if other.store is not self.store:
            raise ValueError("cannot adopt a table from a different store")
        for frame in self._entries.values():
            self.store.decref(frame)
        self._entries = other._entries
        if "adopt-replace-dirty" in _TEST_MUTATIONS:
            # Test-only regression seed: the pre-fix behaviour that
            # *replaced* the dirty set, laundering the outer arm's earlier
            # writes out of its shipback set.  Enabled solely by the model
            # checker's mutation harness to prove it detects this bug.
            self._dirty = set(other._dirty)
        else:
            self._dirty = self._dirty | other._dirty
        other._entries = {}
        other._dirty = set()

    def ensure_zero_filled(self, vpns: range) -> None:
        """Map any unmapped page in ``vpns`` to a shared zero frame.

        Used to build address spaces of a given size without allocating a
        private frame per page up front.  The references are acquired in
        one batch on the store's canonical zero frame, so fresh spaces on
        the same store share a single zero frame between them instead of
        allocating one per space.
        """
        missing = [vpn for vpn in vpns if vpn not in self._entries]
        if not missing:
            return
        zero = self.store.acquire_zero_frame(count=len(missing))
        for vpn in missing:
            self._entries[vpn] = zero
