"""Paged single-level store with copy-on-write (paper section 3.3).

All *sink* state is represented as fixed-size pages: 'we bury the entire
memory hierarchy under the page abstraction; files are named sets of pages'.
Alternatives inherit the parent's page map and share frames until they
write, at which point the written page is copied and becomes private
('copy-on-write' with 'page map inheritance from the parent').

- :class:`~repro.pages.store.PageStore` -- reference-counted physical frames.
- :class:`~repro.pages.table.PageTable` -- a process's virtual-to-physical
  map with COW fault handling and a private-dirty counter.
- :class:`~repro.pages.address_space.AddressSpace` -- byte-addressed view.
- :mod:`repro.pages.snapshot` -- diffs and the atomic commit (page-pointer
  swap) used at ``alt_wait`` synchronization.
"""

from repro.pages.address_space import AddressSpace
from repro.pages.page import DEFAULT_PAGE_SIZE, zero_page
from repro.pages.snapshot import commit, diff_pages, written_fraction
from repro.pages.store import PageStore
from repro.pages.table import PageTable

__all__ = [
    "AddressSpace",
    "DEFAULT_PAGE_SIZE",
    "PageStore",
    "PageTable",
    "commit",
    "diff_pages",
    "written_fraction",
    "zero_page",
]
