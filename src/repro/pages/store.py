"""Reference-counted physical frame store.

The store plays the role of physical memory plus backing store: a single
pool of immutable frames shared by every page table in a simulated machine.
Reference counting tells us when a frame is shared (so a write must copy)
and when it can be reclaimed.

The store is safe under concurrent children: the parallel execution
backends (``repro.core.backends``) run alternative bodies in real threads,
so every refcount mutation happens under a per-store lock.  Frames stay
immutable ``bytes``, which makes *reads* safe without the lock, and
:meth:`view` serves them as ``memoryview`` so hot-path readers never copy
a frame just to slice it.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.pages.page import DEFAULT_PAGE_SIZE, zero_page


class PageStore:
    """A pool of immutable, reference-counted page frames."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._frames: Dict[int, bytes] = {}
        self._refcounts: Dict[int, int] = {}
        self._next_frame = 0
        self._lock = threading.RLock()
        self._zero_frame: Optional[int] = None
        self.total_allocations = 0
        """Cumulative frames ever allocated (for overhead accounting)."""

    # ------------------------------------------------------------------

    def allocate(self, data: bytes = b"") -> int:
        """Allocate a new frame holding ``data`` (zero-padded to a page).

        Returns the frame id with an initial reference count of 1.
        """
        if len(data) > self.page_size:
            raise ValueError(
                f"frame data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if len(data) < self.page_size:
            data = data + zero_page(self.page_size)[len(data):]
        with self._lock:
            frame_id = self._next_frame
            self._next_frame += 1
            self._frames[frame_id] = data
            self._refcounts[frame_id] = 1
            self.total_allocations += 1
        return frame_id

    def acquire_zero_frame(self, count: int = 1) -> int:
        """Take ``count`` references on the store's shared all-zero frame.

        Every caller building a fresh address space needs its unmapped
        pages backed by zeros; instead of allocating one zero frame per
        space, the store keeps a single canonical zero frame alive for as
        long as anyone references it and hands out shared references in
        bulk.  Returns the frame id carrying ``count`` new references owned
        by the caller.
        """
        if count < 1:
            raise ValueError("must acquire at least one reference")
        with self._lock:
            frame_id = self._zero_frame
            if frame_id is not None and frame_id in self._refcounts:
                self._refcounts[frame_id] += count
                return frame_id
            frame_id = self.allocate(zero_page(self.page_size))
            if count > 1:
                self._refcounts[frame_id] += count - 1
            self._zero_frame = frame_id
            return frame_id

    def read(self, frame_id: int) -> bytes:
        """Return the immutable contents of a frame."""
        try:
            return self._frames[frame_id]
        except KeyError:
            raise KeyError(f"no such frame: {frame_id}") from None

    def view(self, frame_id: int) -> memoryview:
        """A zero-copy view of a frame's contents.

        Frames are immutable, so the view stays valid for as long as the
        caller holds a reference on the frame.
        """
        return memoryview(self.read(frame_id))

    def incref(self, frame_id: int, count: int = 1) -> None:
        """Add ``count`` references (page-table entries now point here)."""
        if count < 1:
            raise ValueError("must add at least one reference")
        with self._lock:
            if frame_id not in self._refcounts:
                raise KeyError(f"no such frame: {frame_id}")
            self._refcounts[frame_id] += count

    def decref(self, frame_id: int) -> None:
        """Drop a reference, reclaiming the frame at zero."""
        with self._lock:
            count = self._refcounts.get(frame_id)
            if count is None:
                raise KeyError(f"no such frame: {frame_id}")
            if count == 1:
                del self._refcounts[frame_id]
                del self._frames[frame_id]
                if self._zero_frame == frame_id:
                    self._zero_frame = None
            else:
                self._refcounts[frame_id] = count - 1

    def refcount(self, frame_id: int) -> int:
        """Current reference count (0 if the frame was reclaimed)."""
        return self._refcounts.get(frame_id, 0)

    def is_shared(self, frame_id: int) -> bool:
        """True when more than one page-table entry points at the frame."""
        return self.refcount(frame_id) > 1

    @property
    def live_frames(self) -> int:
        """Number of frames currently allocated."""
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        """Total bytes held by live frames."""
        return self.live_frames * self.page_size

    def __repr__(self) -> str:
        return (
            f"PageStore(page_size={self.page_size}, live_frames={self.live_frames})"
        )
