"""Reference-counted physical frame store.

The store plays the role of physical memory plus backing store: a single
pool of immutable frames shared by every page table in a simulated machine.
Reference counting tells us when a frame is shared (so a write must copy)
and when it can be reclaimed.

The store is safe under concurrent children: the parallel execution
backends (``repro.core.backends``) run alternative bodies in real threads,
so every refcount mutation happens under a per-store lock.  Frames stay
immutable ``bytes``, which makes *reads* safe without the lock, and
:meth:`view` serves them as ``memoryview`` so hot-path readers never copy
a frame just to slice it.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from repro.pages.page import DEFAULT_PAGE_SIZE, zero_page


class PageStore:
    """A pool of immutable, reference-counted page frames.

    Frames normally hold ``bytes``.  A frame may instead be *adopted*
    from an external page-sized buffer (a shared-memory slab slot, see
    :meth:`adopt_external`); such a frame serves reads through the
    external buffer with zero copies and runs a release callback when its
    refcount drains, so the buffer's owner knows the store is done.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._frames: Dict[int, object] = {}
        self._refcounts: Dict[int, int] = {}
        self._external: Dict[int, Optional[Callable[[], None]]] = {}
        self._next_frame = 0
        self._lock = threading.RLock()
        self._zero_frame: Optional[int] = None
        self.total_allocations = 0
        """Cumulative frames ever allocated (for overhead accounting)."""

    # ------------------------------------------------------------------

    def allocate(self, data: bytes = b"") -> int:
        """Allocate a new frame holding ``data`` (zero-padded to a page).

        Returns the frame id with an initial reference count of 1.
        """
        if len(data) > self.page_size:
            raise ValueError(
                f"frame data of {len(data)} bytes exceeds page size {self.page_size}"
            )
        if len(data) < self.page_size:
            data = data + zero_page(self.page_size)[len(data):]
        with self._lock:
            frame_id = self._next_frame
            self._next_frame += 1
            self._frames[frame_id] = data
            self._refcounts[frame_id] = 1
            self.total_allocations += 1
        return frame_id

    def acquire_zero_frame(self, count: int = 1) -> int:
        """Take ``count`` references on the store's shared all-zero frame.

        Every caller building a fresh address space needs its unmapped
        pages backed by zeros; instead of allocating one zero frame per
        space, the store keeps a single canonical zero frame alive for as
        long as anyone references it and hands out shared references in
        bulk.  Returns the frame id carrying ``count`` new references owned
        by the caller.
        """
        if count < 1:
            raise ValueError("must acquire at least one reference")
        with self._lock:
            frame_id = self._zero_frame
            if frame_id is not None and frame_id in self._refcounts:
                self._refcounts[frame_id] += count
                return frame_id
            frame_id = self.allocate(zero_page(self.page_size))
            if count > 1:
                self._refcounts[frame_id] += count - 1
            self._zero_frame = frame_id
            return frame_id

    def adopt_external(
        self,
        data,
        on_release: Optional[Callable[[], None]] = None,
    ) -> int:
        """Adopt an external page-sized buffer as a frame (zero-copy).

        ``data`` is any read-only buffer of exactly ``page_size`` bytes --
        in practice a shared-memory slab slot view -- and is served to
        readers as-is, never copied into the store.  The caller promises
        the buffer's contents stay frozen while the frame lives.  When
        the frame's refcount drains, the buffer is released and
        ``on_release`` runs (outside the store lock), letting the
        buffer's owner drop its pin.  This is the receiving half of the
        winner-commit pointer swap.
        """
        if len(data) != self.page_size:
            raise ValueError(
                f"external frame of {len(data)} bytes; "
                f"expected exactly page size {self.page_size}"
            )
        with self._lock:
            frame_id = self._next_frame
            self._next_frame += 1
            self._frames[frame_id] = data
            self._refcounts[frame_id] = 1
            self._external[frame_id] = on_release
            self.total_allocations += 1
        return frame_id

    def adopt_external_many(self, buffers, on_release=None) -> list:
        """Adopt many page-sized buffers under one lock acquisition.

        The batched form of :meth:`adopt_external` for multi-page
        commits: per-frame lock round-trips are what dominates a
        pointer-swap commit once the page images themselves stop being
        copied.  ``on_release`` (shared by every frame) runs once per
        frame as each drains.
        """
        for data in buffers:
            if len(data) != self.page_size:
                raise ValueError(
                    f"external frame of {len(data)} bytes; "
                    f"expected exactly page size {self.page_size}"
                )
        with self._lock:
            first = self._next_frame
            frame_ids = list(range(first, first + len(buffers)))
            self._next_frame = first + len(buffers)
            for frame_id, data in zip(frame_ids, buffers):
                self._frames[frame_id] = data
                self._refcounts[frame_id] = 1
                self._external[frame_id] = on_release
            self.total_allocations += len(buffers)
        return frame_ids

    def read(self, frame_id: int):
        """The contents of a frame: ``bytes``, or an external buffer."""
        try:
            return self._frames[frame_id]
        except KeyError:
            raise KeyError(f"no such frame: {frame_id}") from None

    def view(self, frame_id: int) -> memoryview:
        """A zero-copy view of a frame's contents.

        Frames are immutable, so the view stays valid for as long as the
        caller holds a reference on the frame.
        """
        return memoryview(self.read(frame_id))

    def incref(self, frame_id: int, count: int = 1) -> None:
        """Add ``count`` references (page-table entries now point here)."""
        if count < 1:
            raise ValueError("must add at least one reference")
        with self._lock:
            if frame_id not in self._refcounts:
                raise KeyError(f"no such frame: {frame_id}")
            self._refcounts[frame_id] += count

    def decref(self, frame_id: int) -> None:
        """Drop a reference, reclaiming the frame at zero."""
        on_release = None
        with self._lock:
            count = self._refcounts.get(frame_id)
            if count is None:
                raise KeyError(f"no such frame: {frame_id}")
            if count == 1:
                del self._refcounts[frame_id]
                data = self._frames.pop(frame_id)
                if self._zero_frame == frame_id:
                    self._zero_frame = None
                if frame_id in self._external:
                    on_release = self._external.pop(frame_id)
                    if isinstance(data, memoryview):
                        data.release()
            else:
                self._refcounts[frame_id] = count - 1
        if on_release is not None:
            # Outside the lock: the callback may release a slab, which
            # must not re-enter the store under our lock.
            on_release()

    def decref_many(self, frame_ids) -> None:
        """Drop one reference from each frame under one lock acquisition.

        The batched form of :meth:`decref` for multi-page pointer swaps;
        release callbacks of reclaimed external frames run after the
        lock is dropped, in frame order.
        """
        callbacks = []
        with self._lock:
            for frame_id in frame_ids:
                count = self._refcounts.get(frame_id)
                if count is None:
                    raise KeyError(f"no such frame: {frame_id}")
                if count == 1:
                    del self._refcounts[frame_id]
                    data = self._frames.pop(frame_id)
                    if self._zero_frame == frame_id:
                        self._zero_frame = None
                    if frame_id in self._external:
                        on_release = self._external.pop(frame_id)
                        if isinstance(data, memoryview):
                            data.release()
                        if on_release is not None:
                            callbacks.append(on_release)
                else:
                    self._refcounts[frame_id] = count - 1
        for on_release in callbacks:
            on_release()

    def refcount(self, frame_id: int) -> int:
        """Current reference count (0 if the frame was reclaimed)."""
        return self._refcounts.get(frame_id, 0)

    def is_shared(self, frame_id: int) -> bool:
        """True when more than one page-table entry points at the frame."""
        return self.refcount(frame_id) > 1

    def is_external(self, frame_id: int) -> bool:
        """True when the frame serves an adopted external buffer."""
        return frame_id in self._external

    @property
    def zero_frame_id(self) -> Optional[int]:
        """The canonical all-zero frame's id (``None`` when not live).

        Snapshot builders compare page-table entries against this to skip
        never-written pages without touching their bytes.
        """
        return self._zero_frame

    @property
    def live_frames(self) -> int:
        """Number of frames currently allocated."""
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        """Total bytes held by live frames."""
        return self.live_frames * self.page_size

    def __repr__(self) -> str:
        return (
            f"PageStore(page_size={self.page_size}, live_frames={self.live_frames})"
        )
