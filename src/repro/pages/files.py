"""Files as named sets of pages (paper section 3.1).

'All sink state can be represented in this fashion ... we bury the entire
memory hierarchy under the page abstraction; files are named sets of
pages, and thus mechanisms which are used to transparently access files
over networks [Sandberg 1985] can be utilized to hide the network through
the page management abstraction.'

A :class:`PagedFile` is a growable byte sequence over COW page tables, so
snapshots are cheap and share frames.  A :class:`FileSystem` names files
in one page store; mounting the *same* FileSystem object from several
simulated nodes models the network file system the paper's ``rfork()``
used to reduce copying.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import PageFault, ReproError
from repro.pages.store import PageStore
from repro.pages.table import PageTable


class PagedFile:
    """A growable, byte-addressed file backed by COW pages."""

    def __init__(self, name: str, store: PageStore) -> None:
        self.name = name
        self.store = store
        self.table = PageTable(store)
        self._size = 0

    @property
    def size(self) -> int:
        """Current file length in bytes."""
        return self._size

    @property
    def num_pages(self) -> int:
        """Pages currently allocated to the file."""
        return len(self.table)

    # ------------------------------------------------------------------

    def _ensure_pages(self, up_to_byte: int) -> None:
        page_size = self.store.page_size
        needed = -(-up_to_byte // page_size) if up_to_byte else 0
        self.table.ensure_zero_filled(range(needed))

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, growing the file as needed."""
        if offset < 0:
            raise PageFault("negative file offset")
        end = offset + len(data)
        self._ensure_pages(end)
        page_size = self.store.page_size
        position = offset
        start = 0
        while start < len(data):
            vpn, page_offset = divmod(position, page_size)
            take = min(len(data) - start, page_size - page_offset)
            self.table.write_page(vpn, data[start:start + take], page_offset)
            position += take
            start += take
        self._size = max(self._size, end)

    def append(self, data: bytes) -> None:
        """Write ``data`` at the end of the file."""
        self.write(self._size, data)

    def read(self, offset: int = 0, length: Optional[int] = None) -> bytes:
        """Read ``length`` bytes from ``offset`` (to EOF by default)."""
        if offset < 0:
            raise PageFault("negative file offset")
        if length is None:
            length = max(0, self._size - offset)
        end = min(offset + length, self._size)
        if offset >= end:
            return b""
        page_size = self.store.page_size
        chunks = []
        position = offset
        while position < end:
            vpn, page_offset = divmod(position, page_size)
            take = min(end - position, page_size - page_offset)
            page = self.table.read_page(vpn)
            chunks.append(page[page_offset:page_offset + take])
            position += take
        return b"".join(chunks)

    def truncate(self, size: int = 0) -> None:
        """Shrink the file to ``size`` bytes, releasing surplus pages."""
        if size < 0:
            raise PageFault("negative size")
        if size >= self._size:
            return
        page_size = self.store.page_size
        keep_pages = -(-size // page_size) if size else 0
        for vpn in list(self.table.mapped_pages()):
            if vpn >= keep_pages:
                self.table.unmap_page(vpn)
        # Zero the tail of the boundary page so stale bytes cannot
        # resurface if the file grows again later.
        boundary_offset = size % page_size
        if boundary_offset and keep_pages and self.table.is_mapped(keep_pages - 1):
            self.table.write_page(
                keep_pages - 1,
                bytes(page_size - boundary_offset),
                offset=boundary_offset,
            )
        self._size = size

    def snapshot(self, name: str) -> "PagedFile":
        """A COW copy of the file (version-control style: most pages are
        shared until one side writes)."""
        copy = PagedFile.__new__(PagedFile)
        copy.name = name
        copy.store = self.store
        copy.table = self.table.fork()
        copy._size = self._size
        return copy

    def release(self) -> None:
        """Drop every page (file deletion)."""
        self.table.release()
        self._size = 0

    def __repr__(self) -> str:
        return f"PagedFile({self.name!r}, size={self._size})"


class FileSystem:
    """Named paged files over one store; mountable from many nodes."""

    def __init__(self, name: str = "fs", page_size: int = 4096) -> None:
        self.name = name
        self.store = PageStore(page_size=page_size)
        self._files: Dict[str, PagedFile] = {}

    def create(self, path: str) -> PagedFile:
        """Create an empty file (error if it exists)."""
        if path in self._files:
            raise ReproError(f"file exists: {path!r}")
        file = PagedFile(path, self.store)
        self._files[path] = file
        return file

    def open(self, path: str) -> PagedFile:
        """Open an existing file."""
        try:
            return self._files[path]
        except KeyError:
            raise ReproError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        """True when ``path`` names a file."""
        return path in self._files

    def unlink(self, path: str) -> None:
        """Delete a file, releasing its pages."""
        file = self.open(path)
        file.release()
        del self._files[path]

    def listdir(self) -> List[str]:
        """All file paths, sorted."""
        return sorted(self._files)

    def write_file(self, path: str, data: bytes) -> PagedFile:
        """Create-or-replace ``path`` with ``data``."""
        if self.exists(path):
            self.unlink(path)
        file = self.create(path)
        file.write(0, data)
        return file

    def read_file(self, path: str) -> bytes:
        """The whole contents of ``path``."""
        return self.open(path).read()

    def __repr__(self) -> str:
        return f"FileSystem({self.name!r}, files={len(self._files)})"
