"""Byte-addressed view over a COW page table.

An :class:`AddressSpace` is what a simulated process sees: a flat array of
``size`` bytes, read and written at arbitrary offsets, backed by fixed-size
pages that are shared copy-on-write after a fork.  It also provides a tiny
named-variable layer (:meth:`put` / :meth:`get`) so application code --
recovery-block alternates, Prolog worlds -- can treat the space as a
key-value store while every byte still lives in pages and every update
still goes through the COW machinery.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Optional

from repro.errors import PageFault
from repro.pages.store import PageStore
from repro.pages.table import PageTable


class AddressSpace:
    """A fixed-size, page-backed, byte-addressable space."""

    def __init__(
        self,
        store: PageStore,
        size: int,
        table: Optional[PageTable] = None,
    ) -> None:
        if size < 0:
            raise ValueError("address space size cannot be negative")
        self.store = store
        self.size = size
        self.page_size = store.page_size
        self.table = table if table is not None else PageTable(store)
        self.table.ensure_zero_filled(range(self.num_pages))
        # The variable directory is itself serialized into the first pages
        # of the space, so forked children inherit it through the pages.
        self._vars_cache: Optional[Dict[str, Any]] = None

    @property
    def num_pages(self) -> int:
        """Pages needed to cover :attr:`size` bytes."""
        return -(-self.size // self.page_size) if self.size else 0

    # ------------------------------------------------------------------
    # raw byte access

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise PageFault(
                f"access [{offset}, {offset + length}) outside space of {self.size} bytes"
            )

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``."""
        self._check_range(offset, length)
        chunks = []
        remaining = length
        position = offset
        while remaining > 0:
            vpn, page_offset = divmod(position, self.page_size)
            take = min(remaining, self.page_size - page_offset)
            page = self.table.read_page(vpn)
            chunks.append(page[page_offset:page_offset + take])
            position += take
            remaining -= take
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, faulting pages private as needed."""
        self._check_range(offset, len(data))
        position = offset
        start = 0
        while start < len(data):
            vpn, page_offset = divmod(position, self.page_size)
            take = min(len(data) - start, self.page_size - page_offset)
            self.table.write_page(vpn, data[start:start + take], page_offset)
            position += take
            start += take
        self._vars_cache = None

    # ------------------------------------------------------------------
    # named-variable layer

    _DIRECTORY_HEADER = 8  # length prefix, big-endian

    def _load_vars(self) -> Dict[str, Any]:
        if self._vars_cache is not None:
            return self._vars_cache
        header = self.read(0, self._DIRECTORY_HEADER)
        length = int.from_bytes(header, "big")
        if length == 0:
            self._vars_cache = {}
        else:
            blob = self.read(self._DIRECTORY_HEADER, length)
            self._vars_cache = pickle.loads(blob)
        return self._vars_cache

    def _store_vars(self, variables: Dict[str, Any]) -> None:
        blob = pickle.dumps(variables, protocol=pickle.HIGHEST_PROTOCOL)
        needed = self._DIRECTORY_HEADER + len(blob)
        if needed > self.size:
            raise PageFault(
                f"variable directory of {needed} bytes exceeds "
                f"address space of {self.size} bytes"
            )
        self.write(0, len(blob).to_bytes(self._DIRECTORY_HEADER, "big") + blob)
        self._vars_cache = dict(variables)

    def put(self, name: str, value: Any) -> None:
        """Bind ``name`` to ``value`` in the space's variable directory."""
        variables = dict(self._load_vars())
        variables[name] = value
        self._store_vars(variables)

    def get(self, name: str, default: Any = None) -> Any:
        """Look up ``name`` (``default`` when absent)."""
        return self._load_vars().get(name, default)

    def delete(self, name: str) -> None:
        """Remove ``name`` from the directory (KeyError when absent)."""
        variables = dict(self._load_vars())
        del variables[name]
        self._store_vars(variables)

    def names(self) -> list:
        """Sorted variable names currently bound."""
        return sorted(self._load_vars())

    # ------------------------------------------------------------------
    # fork / commit

    def fork(self) -> "AddressSpace":
        """A child space sharing all pages COW with this one."""
        child_table = self.table.fork()
        child_table.clear_dirty()
        child = AddressSpace.__new__(AddressSpace)
        child.store = self.store
        child.size = self.size
        child.page_size = self.page_size
        child.table = child_table
        child._vars_cache = None
        return child

    def adopt(self, child: "AddressSpace") -> None:
        """Atomically take over ``child``'s pages (the commit swap)."""
        if child.size != self.size:
            raise ValueError("cannot adopt a space of a different size")
        self.table.adopt(child.table)
        self._vars_cache = None

    def release(self) -> None:
        """Release every page (process exit)."""
        self.table.release()
        self._vars_cache = None

    @property
    def pages_written(self) -> int:
        """Distinct pages dirtied since the last fork/commit."""
        return self.table.pages_written

    @property
    def cow_faults(self) -> int:
        """COW copies serviced by this space's table."""
        return self.table.cow_faults

    def __repr__(self) -> str:
        return (
            f"AddressSpace(size={self.size}, pages={self.num_pages}, "
            f"written={self.pages_written})"
        )
