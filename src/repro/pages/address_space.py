"""Byte-addressed view over a COW page table.

An :class:`AddressSpace` is what a simulated process sees: a flat array of
``size`` bytes, read and written at arbitrary offsets, backed by fixed-size
pages that are shared copy-on-write after a fork.  It also provides a tiny
named-variable layer (:meth:`put` / :meth:`get`) so application code --
recovery-block alternates, Prolog worlds -- can treat the space as a
key-value store while every byte still lives in pages and every update
still goes through the COW machinery.

The variable directory is *incremental*: bindings are appended to a
length-prefixed record log inside the first pages of the space, so the
k-th ``put`` dirties only the header page and the pages its own record
lands on.  (The previous design re-pickled the whole directory on every
``put``, which rewrote all earlier variables' bytes -- O(total variable
bytes) per call -- re-dirtied the prefix pages, and triggered spurious COW
faults in every forked child that touched a variable.)  The log is
compacted in place only when an append would overflow the space.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.check.runtime import checkpoint as _check_checkpoint
from repro.errors import PageApplyError, PageFault
from repro.obs import events as _ev
from repro.obs.tracer import active as _active_tracer
from repro.pages.store import PageStore
from repro.pages.table import PageTable
from repro.resilience.injector import active as _active_injector


class AddressSpace:
    """A fixed-size, page-backed, byte-addressable space."""

    def __init__(
        self,
        store: PageStore,
        size: int,
        table: Optional[PageTable] = None,
    ) -> None:
        if size < 0:
            raise ValueError("address space size cannot be negative")
        self.store = store
        self.size = size
        self.page_size = store.page_size
        self.table = table if table is not None else PageTable(store)
        self.table.ensure_zero_filled(range(self.num_pages))
        # The variable directory is itself serialized into the first pages
        # of the space, so forked children inherit it through the pages.
        self._vars_cache: Optional[Dict[str, Any]] = None
        self._log_tail: Optional[int] = None

    @property
    def num_pages(self) -> int:
        """Pages needed to cover :attr:`size` bytes."""
        return -(-self.size // self.page_size) if self.size else 0

    # ------------------------------------------------------------------
    # raw byte access

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.size:
            raise PageFault(
                f"access [{offset}, {offset + length}) outside space of {self.size} bytes"
            )

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``.

        Reads are served through frame ``memoryview`` slices, so a read
        performs exactly one copy (assembling the result) no matter how
        many pages it crosses.
        """
        self._check_range(offset, length)
        if length == 0:
            return b""
        vpn, page_offset = divmod(offset, self.page_size)
        if page_offset + length <= self.page_size:
            # Single-page fast path: one slice, one copy.
            view = self.table.read_page_view(vpn)
            return bytes(view[page_offset:page_offset + length])
        chunks = []
        remaining = length
        position = offset
        while remaining > 0:
            vpn, page_offset = divmod(position, self.page_size)
            take = min(remaining, self.page_size - page_offset)
            view = self.table.read_page_view(vpn)
            chunks.append(view[page_offset:page_offset + take])
            position += take
            remaining -= take
        return b"".join(chunks)

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset``, faulting pages private as needed."""
        self._check_range(offset, len(data))
        position = offset
        start = 0
        while start < len(data):
            vpn, page_offset = divmod(position, self.page_size)
            take = min(len(data) - start, self.page_size - page_offset)
            self.table.write_page(vpn, data[start:start + take], page_offset)
            position += take
            start += take
        self._invalidate_vars()

    def _invalidate_vars(self) -> None:
        self._vars_cache = None
        self._log_tail = None

    # ------------------------------------------------------------------
    # named-variable layer: an incremental record log
    #
    # byte 0..8   big-endian log length L (bytes of records after the header)
    # then L bytes of records, each: 4-byte big-endian record length,
    # followed by pickle((name, value)) for a binding or pickle((name,))
    # for a tombstone.  A zeroed header reads as an empty directory.

    _DIRECTORY_HEADER = 8  # length prefix, big-endian
    _RECORD_HEADER = 4

    def _encode_records(self, records: Iterable[Tuple]) -> bytes:
        parts = []
        for record in records:
            blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            parts.append(len(blob).to_bytes(self._RECORD_HEADER, "big"))
            parts.append(blob)
        return b"".join(parts)

    @staticmethod
    def _apply_records(variables: Dict[str, Any], records: Iterable[Tuple]) -> None:
        for record in records:
            if len(record) == 1:
                variables.pop(record[0], None)
            else:
                variables[record[0]] = record[1]

    def _replay_log(self) -> Tuple[Dict[str, Any], int]:
        """Rebuild the directory dict from the on-page log."""
        header = self.read(0, self._DIRECTORY_HEADER)
        length = int.from_bytes(header, "big")
        end = self._DIRECTORY_HEADER + length
        if length == 0:
            return {}, end
        log = self.read(self._DIRECTORY_HEADER, length)
        variables: Dict[str, Any] = {}
        offset = 0
        while offset < length:
            record_len = int.from_bytes(
                log[offset:offset + self._RECORD_HEADER], "big"
            )
            offset += self._RECORD_HEADER
            record = pickle.loads(log[offset:offset + record_len])
            offset += record_len
            self._apply_records(variables, [record])
        return variables, end

    def _load_vars(self) -> Dict[str, Any]:
        if self._vars_cache is None:
            self._vars_cache, self._log_tail = self._replay_log()
        return self._vars_cache

    def _write_compacted(self, variables: Dict[str, Any]) -> None:
        """Rewrite the log as one live record per binding (may shrink)."""
        payload = self._encode_records(
            (name, value) for name, value in variables.items()
        )
        needed = self._DIRECTORY_HEADER + len(payload)
        if needed > self.size:
            raise PageFault(
                f"variable directory of {needed} bytes exceeds "
                f"address space of {self.size} bytes"
            )
        self.write(
            0, len(payload).to_bytes(self._DIRECTORY_HEADER, "big") + payload
        )
        self._vars_cache = dict(variables)
        self._log_tail = needed

    def _append_records(self, records) -> None:
        """Append ``records`` to the log; compact (once) when out of room."""
        variables = dict(self._load_vars())
        tail = self._log_tail
        assert tail is not None
        payload = self._encode_records(records)
        if tail + len(payload) > self.size:
            self._apply_records(variables, records)
            self._write_compacted(variables)
            return
        self._apply_records(variables, records)
        # Records first, header last: a reader that observes the old
        # header simply ignores the bytes past the old tail.
        self.write(tail, payload)
        new_tail = tail + len(payload)
        log_length = new_tail - self._DIRECTORY_HEADER
        self.write(0, log_length.to_bytes(self._DIRECTORY_HEADER, "big"))
        self._vars_cache = variables
        self._log_tail = new_tail

    def put(self, name: str, value: Any) -> None:
        """Bind ``name`` to ``value`` in the space's variable directory.

        Appends one record: earlier variables' bytes are left untouched,
        so only the header page and the record's own pages are dirtied.
        """
        self._append_records([(name, value)])

    def bulk_put(self, variables: Mapping[str, Any]) -> None:
        """Bind every ``name: value`` in one append.

        All records are written in a single pass with a single header
        update -- the cheap way to preload a space, versus a loop of
        :meth:`put` paying one header rewrite per variable.
        """
        if not variables:
            return
        self._append_records([(name, value) for name, value in variables.items()])

    def get(self, name: str, default: Any = None) -> Any:
        """Look up ``name`` (``default`` when absent)."""
        return self._load_vars().get(name, default)

    def delete(self, name: str) -> None:
        """Remove ``name`` from the directory (KeyError when absent)."""
        if name not in self._load_vars():
            raise KeyError(name)
        self._append_records([(name,)])

    def names(self) -> list:
        """Sorted variable names currently bound."""
        return sorted(self._load_vars())

    # ------------------------------------------------------------------
    # fork / commit

    def fork(self) -> "AddressSpace":
        """A child space sharing all pages COW with this one."""
        child_table = self.table.fork()
        child_table.clear_dirty()
        child = AddressSpace.__new__(AddressSpace)
        child.store = self.store
        child.size = self.size
        child.page_size = self.page_size
        child.table = child_table
        child._vars_cache = None
        child._log_tail = None
        return child

    def adopt(self, child: "AddressSpace") -> None:
        """Atomically take over ``child``'s pages (the commit swap)."""
        if child.size != self.size:
            raise ValueError("cannot adopt a space of a different size")
        self.table.adopt(child.table)
        self._invalidate_vars()

    def apply_pages(self, pages: Mapping[int, bytes]) -> None:
        """Write whole-page images into this space (COW rules apply).

        This is how a fork-based execution backend ships a winning child's
        dirty pages back into the simulated address space before the
        parent's commit swap.  The images are validated *before* any of
        them is written -- a malformed shipment (or an injected
        ``page-apply-fail`` fault) raises
        :class:`~repro.errors.PageApplyError` and leaves the space
        untouched, so a failed shipback can never half-apply a winner.
        """
        _check_checkpoint("page-shipback", None)
        injector = _active_injector()
        if injector is not None and injector.draw("page-apply-fail") is not None:
            raise PageApplyError(
                "injected page-apply failure; space left untouched"
            )
        ordered = sorted(pages)
        for vpn in ordered:
            image = pages[vpn]
            if vpn < 0 or vpn >= self.num_pages:
                raise PageApplyError(
                    f"shipped page {vpn} outside space of {self.num_pages} pages"
                )
            if len(image) != self.page_size:
                raise PageApplyError(
                    f"shipped page {vpn} is {len(image)} bytes; "
                    f"expected a whole {self.page_size}-byte frame"
                )
        for vpn in ordered:
            self.table.write_page(vpn, pages[vpn], 0)
        self._invalidate_vars()
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.PAGE_SHIPBACK,
                block=getattr(self, "trace_block", None),
                pages=len(ordered),
                bytes=len(ordered) * self.page_size,
            )

    def apply_shm_pages(self, shipment) -> None:
        """Swap shared-memory slab slots into this space (zero-copy commit).

        The shm counterpart of :meth:`apply_pages`: instead of copying
        page images, each shipped ``(vpn, slot)`` pair adopts the slab
        slot as an external frame and repoints the page-table entry at it
        -- the paper's 'swap page pointers' commit.  The whole shipment
        is validated (and the ``page-apply-fail`` fault consulted) before
        any pointer moves, so a malformed shipment raises
        :class:`~repro.errors.PageApplyError` with the space untouched.
        Each adopted frame retains the slab; the slab is unlinked only
        when the last adopted frame's refcount drains.
        """
        _check_checkpoint("page-shipback", None)
        injector = _active_injector()
        if injector is not None and injector.draw("page-apply-fail") is not None:
            raise PageApplyError(
                "injected page-apply failure; space left untouched"
            )
        slab = shipment.slab
        if slab.slot_size != self.page_size:
            raise PageApplyError(
                f"slab slot size {slab.slot_size} does not match "
                f"page size {self.page_size}"
            )
        pairs = sorted(shipment.pairs)
        seen_vpns = set()
        for vpn, slot in pairs:
            if vpn < 0 or vpn >= self.num_pages:
                raise PageApplyError(
                    f"shipped page {vpn} outside space of {self.num_pages} pages"
                )
            if vpn in seen_vpns:
                raise PageApplyError(f"page {vpn} shipped twice in one commit")
            seen_vpns.add(vpn)
            if not 0 <= slot < slab.slots:
                raise PageApplyError(
                    f"shipped slot {slot} outside slab of {slab.slots} slots"
                )
        # Validated: move the pointers.  Everything below is batched --
        # one slab retain, one store adoption, one table swap pass -- so
        # an N-page commit costs N pointer moves, not 3N lock round-trips.
        slab.retain(len(pairs))
        try:
            frames = self.store.adopt_external_many(
                [slab.slot_view(slot) for _, slot in pairs],
                on_release=slab.release,
            )
        except BaseException:  # pragma: no cover - adoption cannot 1/2-fail
            slab.release_many(len(pairs))
            raise
        self.table.set_frames(
            (vpn, frame) for (vpn, _), frame in zip(pairs, frames)
        )
        self._invalidate_vars()
        tracer = _active_tracer()
        if tracer.enabled:
            tracer.emit(
                _ev.POINTER_COMMIT,
                block=getattr(self, "trace_block", None),
                pages=len(pairs),
                slab=slab.name,
                bytes=len(pairs) * self.page_size,
            )

    def release(self) -> None:
        """Release every page (process exit)."""
        self.table.release()
        self._invalidate_vars()

    @property
    def pages_written(self) -> int:
        """Distinct pages dirtied since the last fork/commit."""
        return self.table.pages_written

    @property
    def cow_faults(self) -> int:
        """COW copies serviced by this space's table."""
        return self.table.cow_faults

    def __repr__(self) -> str:
        return (
            f"AddressSpace(size={self.size}, pages={self.num_pages}, "
            f"written={self.pages_written})"
        )
