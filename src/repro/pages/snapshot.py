"""Snapshots, diffs, and the atomic commit.

These helpers sit on top of :class:`~repro.pages.table.PageTable` and are
used by the executors to reason about what an alternative changed and to
implement the ``alt_wait`` page-pointer swap.
"""

from __future__ import annotations

from typing import Dict

from repro.pages.address_space import AddressSpace
from repro.pages.page import buffers_equal
from repro.pages.table import PageTable


def diff_pages(parent: PageTable, child: PageTable) -> Dict[int, bytes]:
    """Pages on which ``child`` differs from ``parent``.

    Returns a map from virtual page number to the child's page contents.
    Pages mapped in only one of the two tables are included (missing pages
    compare as absent, and the child's contents -- or ``b''`` for an unmap
    -- are reported).

    Byte-identical pages are skipped even when they live in different
    frames (a page rewritten with its prior contents must not ship).
    Contents are compared through frame ``memoryview``s -- one C-level
    compare per page, no intermediate copies -- and only genuinely
    changed pages are materialized as ``bytes``.
    """
    changed: Dict[int, bytes] = {}
    parent_vpns = set(parent.mapped_pages())
    child_vpns = set(child.mapped_pages())
    for vpn in sorted(parent_vpns | child_vpns):
        in_parent = vpn in parent_vpns
        in_child = vpn in child_vpns
        if in_parent and in_child:
            parent_frame = parent.frame_of(vpn)
            child_frame = child.frame_of(vpn)
            if parent_frame == child_frame:
                continue  # still physically shared, provably identical
            if buffers_equal(
                parent.read_page_view(vpn), child.read_page_view(vpn)
            ):
                continue
            changed[vpn] = child.read_page(vpn)
        elif in_child:
            changed[vpn] = child.read_page(vpn)
        else:
            changed[vpn] = b""
    return changed


def written_fraction(space: AddressSpace) -> float:
    """Fraction of the space's pages dirtied since the last fork/commit.

    This is the paper's 'important independent variable' for COW overhead.
    """
    if space.num_pages == 0:
        return 0.0
    return space.pages_written / space.num_pages


def commit(parent: AddressSpace, child: AddressSpace) -> int:
    """Absorb ``child`` into ``parent`` and return pages the child wrote.

    The swap itself is atomic from the simulated program's point of view;
    the returned count is what the selection-overhead model charges for.
    """
    pages = child.pages_written
    parent.adopt(child)
    return pages
