"""Page constants and helpers.

Frames hold immutable ``bytes`` so that sharing between page tables is safe
by construction: a "write" always produces a new frame, which is exactly the
copy-on-write discipline.
"""

from __future__ import annotations

from functools import lru_cache

DEFAULT_PAGE_SIZE = 4096
"""Default page size in bytes (the HP 9000/350 used 4K pages)."""

_COMPARE_CHUNK = 1 << 16
"""Bytes compared per memoryview chunk in :func:`buffers_equal`."""

try:  # pragma: no cover - probed, never required
    import numpy as _np
except ImportError:
    _np = None  # type: ignore[assignment]


def numpy_available() -> bool:
    """True when the optional ``numpy`` fast path is importable."""
    return _np is not None


def buffers_equal(a, b) -> bool:
    """Whole-buffer equality over any two byte buffers, without copies.

    Accepts ``bytes`` or ``memoryview`` (so page-table frame views and
    shared-memory slab slots compare without materializing).  Unequal
    lengths are simply unequal.  Large buffers are compared in
    ``memoryview`` chunks -- each chunk is one C-speed ``memcmp`` -- with
    an optional ``numpy`` vectorized path behind a feature probe; for
    page-sized inputs both collapse to a single compare.
    """
    if len(a) != len(b):
        return False
    if len(a) <= _COMPARE_CHUNK:
        va = a if isinstance(a, (bytes, memoryview)) else memoryview(a)
        vb = b if isinstance(b, (bytes, memoryview)) else memoryview(b)
        return va == vb
    va, vb = memoryview(a), memoryview(b)
    if _np is not None:
        return bool(
            _np.array_equal(
                _np.frombuffer(va, dtype=_np.uint8),
                _np.frombuffer(vb, dtype=_np.uint8),
            )
        )
    for start in range(0, len(va), _COMPARE_CHUNK):
        if va[start:start + _COMPARE_CHUNK] != vb[start:start + _COMPARE_CHUNK]:
            return False
    return True


@lru_cache(maxsize=8)
def zero_page(page_size: int = DEFAULT_PAGE_SIZE) -> bytes:
    """The all-zero page of the given size (cached; pages are immutable)."""
    if page_size <= 0:
        raise ValueError("page size must be positive")
    return bytes(page_size)


def patch_page(page: bytes, offset: int, data: bytes) -> bytes:
    """Return a copy of ``page`` with ``data`` spliced in at ``offset``.

    The caller guarantees the write fits within the page.
    """
    if offset < 0 or offset + len(data) > len(page):
        raise ValueError(
            f"write of {len(data)} bytes at offset {offset} "
            f"does not fit in a {len(page)}-byte page"
        )
    if not data:
        return page
    return page[:offset] + data + page[offset + len(data):]
