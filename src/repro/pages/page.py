"""Page constants and helpers.

Frames hold immutable ``bytes`` so that sharing between page tables is safe
by construction: a "write" always produces a new frame, which is exactly the
copy-on-write discipline.
"""

from __future__ import annotations

from functools import lru_cache

DEFAULT_PAGE_SIZE = 4096
"""Default page size in bytes (the HP 9000/350 used 4K pages)."""


@lru_cache(maxsize=8)
def zero_page(page_size: int = DEFAULT_PAGE_SIZE) -> bytes:
    """The all-zero page of the given size (cached; pages are immutable)."""
    if page_size <= 0:
        raise ValueError("page size must be positive")
    return bytes(page_size)


def patch_page(page: bytes, offset: int, data: bytes) -> bytes:
    """Return a copy of ``page`` with ``data`` spliced in at ``offset``.

    The caller guarantees the write fits within the page.
    """
    if offset < 0 or offset + len(data) > len(page):
        raise ValueError(
            f"write of {len(data)} bytes at offset {offset} "
            f"does not fit in a {len(page)}-byte page"
        )
    if not data:
        return page
    return page[:offset] + data + page[offset + len(data):]
