"""Shared-memory page slabs: the zero-copy shipback fabric.

The fork-based execution backend historically shipped a winning child's
dirty pages back to the parent as pickled ``bytes`` over a pipe -- one
copy into the pickle, one copy off the pipe, one copy into a fresh frame.
A :class:`ShmSlab` removes all three: the parent allocates one
page-aligned slab of ``multiprocessing.shared_memory`` per racing arm,
the child writes its dirty page images straight into slab slots (the
mapping is inherited through ``os.fork``; pre-warmed pool workers attach
by name), and the pipe record shrinks to ``(page_no, slot)`` pairs.
Winner commit in the parent is then a *pointer swap*: each shipped slot
is adopted into the :class:`~repro.pages.store.PageStore` as an external
frame (see ``PageStore.adopt_external``) and the parent's page-table
entry is repointed at it -- the paper's 'swap page pointers' commit, with
zero page-image copies end to end.

Lifetime is reference-counted and crash-hardened:

- a slab starts with one creation reference; every adopted frame holds
  one more, released when the frame's refcount drains;
- :meth:`ShmSlab.dispose` drops the creation reference, so the segment
  is unlinked as soon as the last adopted frame lets go;
- every slab created by this process is tracked in a module registry and
  unlinked by an ``atexit`` hook, so a parent that dies between create
  and dispose leaks nothing;
- slab names carry a recognizable prefix (:data:`SLAB_PREFIX`) plus the
  creating pid, so tests (and :func:`orphaned_segments`) can audit
  ``/dev/shm`` for leaks after SIGKILL storms.

When ``shared_memory`` is unavailable (or creation fails at runtime) the
backends fall back to the pipe-pickle path transparently; nothing in
this module is required for correctness, only for speed.
"""

from __future__ import annotations

import atexit
import mmap
import os
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

try:  # pragma: no cover - exercised through shm_available()
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX builds
    _posixshmem = None  # type: ignore[assignment]

try:  # pragma: no cover - exercised through shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - minimal builds
    _shared_memory = None  # type: ignore[assignment]

SLAB_PREFIX = "repro_pf"
"""Leading component of every slab name this process creates."""

_registry_lock = threading.Lock()
_live_slabs: dict = {}
"""name -> ShmSlab for every *owned* (created-here) slab not yet unlinked."""

_name_counter = 0
_available: Optional[bool] = None


class _Segment:
    """One named POSIX shared-memory mapping, without the resource tracker.

    ``multiprocessing.shared_memory.SharedMemory`` would do the mapping,
    but it drags in the ``resource_tracker`` helper *process* -- which
    breaks the backend's no-stray-children guarantees (the hardening
    tests reap with ``waitpid(-1)``) and double-unlinks segments whose
    lifetime our refcounts govern.  So we go one layer down to the same
    primitives it uses: ``_posixshmem.shm_open`` plus ``mmap``.  Where
    ``_posixshmem`` is missing we fall back to ``SharedMemory`` with its
    tracker registration surgically balanced.
    """

    __slots__ = ("name", "size", "buf", "_mmap", "_shm")

    def __init__(self, name: str, size: int, create: bool) -> None:
        self.name = name
        if _posixshmem is not None:
            flags = os.O_RDWR | (os.O_CREAT | os.O_EXCL if create else 0)
            fd = _posixshmem.shm_open("/" + name, flags, mode=0o600)
            try:
                if create:
                    os.ftruncate(fd, size)
                else:
                    size = os.fstat(fd).st_size
                self._mmap = mmap.mmap(fd, size)
            except BaseException:
                os.close(fd)
                if create:
                    _posixshmem.shm_unlink("/" + name)
                raise
            os.close(fd)
            self.buf = memoryview(self._mmap)
            self._shm = None
        elif _shared_memory is not None:  # pragma: no cover - fallback path
            shm = _shared_memory.SharedMemory(
                name=name, create=create, size=size if create else 0
            )
            _tracker_unregister(name)
            size = shm.size
            self._mmap = None
            self._shm = shm
            self.buf = shm.buf
        else:  # pragma: no cover - minimal builds
            raise RuntimeError("POSIX shared memory is unavailable")
        self.size = size

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._shm is not None:  # pragma: no cover - fallback path
            self._shm.close()
            return
        self.buf.release()
        self._mmap.close()

    def unlink(self) -> None:
        """Remove the segment's name; memory dies with the last mapping."""
        if self._shm is not None:  # pragma: no cover - fallback path
            _tracker_register(self.name)
            self._shm.unlink()
            return
        _posixshmem.shm_unlink("/" + self.name)


def _tracker_unregister(name: str) -> None:  # pragma: no cover - fallback
    """Best-effort detach from multiprocessing's resource tracker, which
    would otherwise unlink fork-inherited slabs when the first process
    that touched them exits."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:
        pass


def _tracker_register(name: str) -> None:  # pragma: no cover - fallback
    """Re-balance the tracker before ``SharedMemory.unlink`` (which
    unregisters internally) so the tracker never logs a spurious miss."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register("/" + name, "shared_memory")
    except Exception:
        pass


def shm_available() -> bool:
    """True when POSIX shared memory actually works on this host.

    Probed once per process by creating (and immediately unlinking) a
    one-byte segment: import success alone does not prove ``/dev/shm``
    is mounted and writable.
    """
    global _available
    if _available is None:
        try:
            probe = _Segment(_next_name(), 1, create=True)
            probe.close()
            probe.unlink()
            _available = True
        except Exception:
            _available = False
    return _available


def _next_name() -> str:
    global _name_counter
    with _registry_lock:
        _name_counter += 1
        return f"{SLAB_PREFIX}_{os.getpid()}_{_name_counter}"


class ShmSlab:
    """A page-aligned array of ``slots`` page images in shared memory.

    Slots are written by at most one process (the racing child) and read
    or adopted by exactly one other (the parent); there is no concurrent
    write sharing, so no locking is needed on the data itself.  The
    refcount *is* shared-state in the parent and guarded by a lock.
    """

    def __init__(self, shm, slots: int, slot_size: int, owner: bool) -> None:
        self._shm = shm
        self.slots = slots
        self.slot_size = slot_size
        self.owner = owner
        self._lock = threading.Lock()
        self._refs = 1  # the creation (or attach) reference
        self._disposed = False
        self._closed = False

    # ------------------------------------------------------------------
    # construction

    @classmethod
    def create(cls, slots: int, slot_size: int) -> "ShmSlab":
        """Allocate a fresh slab of ``slots * slot_size`` bytes.

        Raises whatever the platform raises when shared memory is broken;
        callers probe :func:`shm_available` first and fall back to the
        pipe path on any failure.
        """
        if slots < 1 or slot_size < 1:
            raise ValueError("slab needs at least one slot of at least one byte")
        while True:
            name = _next_name()
            try:
                shm = _Segment(name, slots * slot_size, create=True)
                break
            except FileExistsError:  # pragma: no cover - pid reuse relic
                continue
        slab = cls(shm, slots, slot_size, owner=True)
        with _registry_lock:
            _live_slabs[slab.name] = slab
        return slab

    @classmethod
    def attach(cls, name: str, slots: int, slot_size: int) -> "ShmSlab":
        """Map an existing slab by name (the pool worker's entry point)."""
        shm = _Segment(name, 0, create=False)
        if shm.size < slots * slot_size:
            shm.close()
            raise ValueError(
                f"slab {name!r} is {shm.size} bytes; "
                f"expected at least {slots * slot_size}"
            )
        return cls(shm, slots, slot_size, owner=False)

    # ------------------------------------------------------------------
    # data access

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def size(self) -> int:
        return self.slots * self.slot_size

    def _range(self, slot: int) -> Tuple[int, int]:
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} outside slab of {self.slots} slots")
        start = slot * self.slot_size
        return start, start + self.slot_size

    def write_slot(self, slot: int, data) -> None:
        """Copy one page image into ``slot`` (child side; any buffer)."""
        start, end = self._range(slot)
        if len(data) != self.slot_size:
            raise ValueError(
                f"slot write of {len(data)} bytes; expected {self.slot_size}"
            )
        self._shm.buf[start:end] = data

    def slot_view(self, slot: int) -> memoryview:
        """A read-only zero-copy view of one slot's page image."""
        start, end = self._range(slot)
        return self._shm.buf[start:end].toreadonly()

    def read_slot(self, slot: int) -> bytes:
        """One slot's page image as immutable ``bytes`` (copies)."""
        start, end = self._range(slot)
        return bytes(self._shm.buf[start:end])

    # ------------------------------------------------------------------
    # lifetime

    def retain(self, count: int = 1) -> None:
        """Take ``count`` references (adopted frames now point into the
        slab); one lock acquisition regardless of the batch size."""
        if count < 1:
            raise ValueError("must retain at least one reference")
        with self._lock:
            if self._closed:
                raise RuntimeError(f"slab {self.name!r} is already closed")
            self._refs += count

    def release(self) -> None:
        """Drop one reference; close (and unlink, when owner) at zero."""
        self.release_many(1)

    def release_many(self, count: int) -> None:
        """Drop ``count`` references under one lock acquisition."""
        with self._lock:
            self._refs -= count
            if self._refs > 0:
                return
            if self._closed:
                return
            self._closed = True
        self._destroy()

    def dispose(self) -> None:
        """Drop the creation reference (idempotent).

        After this, the slab lives exactly as long as frames adopted from
        it; with none outstanding it is unlinked immediately.
        """
        with self._lock:
            if self._disposed:
                return
            self._disposed = True
        self.release()

    def _destroy(self) -> None:
        name = self.name
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - a view still exported
            # Leave the mapping; the unlink below still reclaims the name
            # and the OS reclaims memory when the last mapping dies.
            pass
        if self.owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            with _registry_lock:
                _live_slabs.pop(name, None)

    @property
    def refs(self) -> int:
        with self._lock:
            return self._refs

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __repr__(self) -> str:
        return (
            f"ShmSlab({self.name!r}, slots={self.slots}, "
            f"slot_size={self.slot_size}, refs={self.refs})"
        )


@dataclass
class ShmShipment:
    """A winning arm's dirty pages, shipped as slab slot pointers.

    ``pairs`` maps virtual page numbers to slab slots; the page images
    themselves never leave shared memory.  The shipment owns one slab
    reference per *application attempt*: ``AddressSpace.apply_shm_pages``
    retains per adopted frame, and the backend disposes the slab once the
    race (and any commit) is over.
    """

    slab: ShmSlab
    pairs: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def pages(self) -> int:
        return len(self.pairs)


def live_slab_count() -> int:
    """Owned slabs not yet unlinked (diagnostics and leak tests)."""
    with _registry_lock:
        return len(_live_slabs)


def cleanup_all_slabs() -> int:
    """Unlink every owned slab still live; returns how many were reclaimed.

    Registered at ``atexit``; also callable from tests.  Forked children
    exit through ``os._exit`` and never run this, which is exactly right:
    only the creating process may unlink a slab.
    """
    with _registry_lock:
        leaked = list(_live_slabs.values())
    for slab in leaked:
        slab._destroy()
    with _registry_lock:
        _live_slabs.clear()
    return len(leaked)


def orphaned_segments(prefix: str = SLAB_PREFIX) -> List[str]:
    """Names of ``/dev/shm`` segments carrying our prefix (leak audit).

    Returns ``[]`` on hosts without a ``/dev/shm`` to audit.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-Linux host
        return []
    return sorted(entry for entry in entries if entry.startswith(prefix))


atexit.register(cleanup_all_slabs)
