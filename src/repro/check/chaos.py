"""The PR 4 chaos scenarios as checked, replayable virtual-time runs.

The distributed race stack (`repro.net`, `repro.ipc`) is already fully
simulated-time -- no wall-clock sleeps anywhere -- so what the checker
adds is *control*: every :class:`FaultInjector` draw the scenario makes
is routed through the installed controller, recorded into a
:class:`~repro.check.schedule.Schedule`, and can be forced back during
replay regardless of injector seed.  A chaos run is thereby pinned by
its decision vector exactly like a block race, and the soak matrix
(`tests/net/test_chaos.py`) gets a virtual-time twin that covers every
scenario in a fraction of the wall-clock suite's runtime.

The oracle is the soak's acceptance gate: every scenario x seed must
converge to the serial replay's observable outcome -- same winner, same
value, same variables, byte-identical parent space -- with every lease
settled.  (Journal replay convergence, the remaining distributed
invariant, lives at the router layer and is enforced by
``tests/ipc/test_journal.py``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.check.runtime import CheckController, checking_session
from repro.check.schedule import Schedule, ScheduleRecorder

#: Mirrors the soak suite's fast-LAN fabric (tests/net/test_chaos.py).
_FAST_LAN_KWARGS = dict(
    name="fast LAN",
    fork_latency=0.001,
    page_copy_rate=100_000.0,
    page_size=2048,
    checkpoint_rate=50_000_000.0,
    network_bandwidth=10_000_000.0,
    network_latency=0.001,
    restore_rate=50_000_000.0,
)

WORKERS = ("w1", "w2", "w3")


def make_net():
    """The soak fabric: a home node and three workers on a fast LAN."""
    from repro.net.network import Network
    from repro.sim.costs import CostModel

    network = Network(cost_model=CostModel(**_FAST_LAN_KWARGS))
    network.add_node("home")
    for name in WORKERS:
        network.add_node(name)
        network.connect("home", name)
    return network


def soak_block():
    """The forced-outcome block: exactly one arm can succeed."""
    from repro.core.alternative import Alternative

    def answer(ctx):
        ctx.put("result", 42)
        return 42

    def refuse(name):
        return lambda ctx: ctx.fail(f"{name} guard")

    return [
        Alternative("guard-a", body=refuse("guard-a"), cost=0.4),
        Alternative("the-answer", body=answer, cost=0.6),
        Alternative("guard-b", body=refuse("guard-b"), cost=0.3),
    ]


@lru_cache(maxsize=None)
def serial_reference(seed: int) -> Tuple[Any, Any, bytes, Dict[str, Any]]:
    """Serial replay of the soak block: (winner, value, bytes, variables)."""
    from repro.core.selection import OrderedPolicy
    from repro.core.sequential import SequentialExecutor

    network = make_net()
    manager = network.node("home").manager
    serial = SequentialExecutor(
        policy=OrderedPolicy(), try_all=True, seed=seed, manager=manager
    )
    parent = manager.create_initial(space_size=64 * 1024)
    result = serial.run(soak_block(), parent=parent)
    return (
        result.winner.name,
        result.value,
        parent.space.read(0, parent.space.size),
        {name: parent.space.get(name) for name in parent.space.names()},
    )


@dataclass
class ChaosRunResult:
    """One checked chaos run: outcome, witness schedule, verdict."""

    scenario: str
    seed: int
    winner: Optional[str] = None
    value: Any = None
    error: Optional[str] = None
    space_bytes: bytes = b""
    variables: Dict[str, Any] = field(default_factory=dict)
    lease_states: List[str] = field(default_factory=list)
    schedule: Schedule = field(default_factory=Schedule)
    problems: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.problems)


def scenario_names() -> List[str]:
    from repro.resilience.chaos import CHAOS_SCENARIOS

    return sorted(CHAOS_SCENARIOS)


def run_scenario(
    scenario: str,
    seed: int = 0,
    schedule: Optional[Schedule] = None,
    injector_seed: Optional[int] = None,
    forced_faults: Optional[Dict[Tuple[str, Any, int], Any]] = None,
) -> ChaosRunResult:
    """Run one chaos scenario under the checker; judge it against serial.

    ``schedule`` replays a previous run's fault decisions (forced through
    the injector observer); ``injector_seed`` lets a replay deliberately
    mis-seed the injector to prove the recorded decisions -- not the RNG
    -- are authoritative.  ``forced_faults`` forces individual draws
    directly (``(point, key, call) -> rule-or-None``) -- the exploration
    driver's way of suppressing one fired fault at a time.
    """
    from repro.net.distributed import DistributedAltExecutor
    from repro.net.lease import RaceWarden
    from repro.resilience.chaos import chaos_injector
    from repro.resilience.injector import injected

    if schedule is not None and forced_faults is not None:
        raise ValueError("pass either schedule or forced_faults, not both")
    forced = (
        {(f.point, f.key, f.call): f.rule for f in schedule.faults}
        if schedule is not None
        else forced_faults
    )
    recorder = ScheduleRecorder()
    controller = CheckController(recorder=recorder, forced_faults=forced)
    network = make_net()
    warden = RaceWarden()
    dist = DistributedAltExecutor(
        network, home="home", workers=list(WORKERS), seed=seed, warden=warden
    )
    parent = dist.new_parent()
    injector = chaos_injector(
        scenario, seed=seed if injector_seed is None else injector_seed
    )
    run = ChaosRunResult(scenario=scenario, seed=seed)
    with checking_session(controller):
        with injected(injector):
            try:
                result = dist.run(soak_block(), parent=parent)
            except Exception as exc:
                run.error = type(exc).__name__
                run.problems.append(f"chaos run raised {exc!r}")
            else:
                run.winner = result.winner.name
                run.value = result.value
    run.space_bytes = parent.space.read(0, parent.space.size)
    run.variables = {
        name: parent.space.get(name) for name in parent.space.names()
    }
    run.lease_states = [lease.state for lease in warden.table.leases]
    run.schedule = recorder.snapshot(
        scenario=scenario, seed=seed, kind="chaos"
    )
    if run.error is None:
        ref_winner, ref_value, ref_bytes, ref_vars = serial_reference(seed)
        if run.winner != ref_winner:
            run.problems.append(
                f"winner diverges: {run.winner!r} != serial {ref_winner!r}"
            )
        if run.value != ref_value:
            run.problems.append(
                f"value diverges: {run.value!r} != serial {ref_value!r}"
            )
        if run.variables != ref_vars:
            run.problems.append(
                f"variables diverge: {run.variables!r} != {ref_vars!r}"
            )
        if run.space_bytes != ref_bytes:
            run.problems.append("parent space bytes diverge from serial")
        if not warden.table.all_settled:
            run.problems.append(
                f"leaked leases: states {run.lease_states!r}"
            )
    return run


def run_matrix(seed: int = 0) -> List[ChaosRunResult]:
    """Every chaos scenario once, checked; the virtual-time soak."""
    return [run_scenario(name, seed=seed) for name in scenario_names()]


# ----------------------------------------------------------------------
# bounded-exhaustive fault-tree exploration


@dataclass
class ChaosExploreReport:
    """The outcome of exhausting one scenario's fault-suppression tree."""

    scenario: str
    seed: int
    runs: int = 0
    exhausted: bool = False
    """True when the whole suppression tree was enumerated inside the
    budget -- the bounded-exhaustive guarantee."""

    distinct_outcomes: int = 0
    failure: Optional[ChaosRunResult] = None

    @property
    def found_failure(self) -> bool:
        return self.failure is not None


def explore_scenario(
    scenario: str,
    seed: int = 0,
    max_runs: int = 256,
    max_draws: int = 16,
) -> ChaosExploreReport:
    """Bounded-exhaustive exploration of one scenario's fault decisions.

    A chaos run makes *no* scheduling decisions (the distributed stack is
    fully virtual-time deterministic), so its only nondeterminism is
    which injector draws fire.  The frontier therefore enumerates
    *suppression subsets*: the natural run executes first, then every
    draw that fired (up to ``max_draws`` per run) branches a child run in
    which that draw -- on top of the parent's suppressions -- is forced
    to ``None``.  Deduplicated by suppression set; the tree drains to
    ``exhausted=True`` unless ``max_runs`` is spent first or a failing
    run is found.
    """
    report = ChaosExploreReport(scenario=scenario, seed=seed)
    frontier: List[Dict[Tuple[str, Any, int], Any]] = [{}]
    visited = set()
    outcomes = set()
    drained = False
    while True:
        if not frontier:
            drained = True
            break
        if report.runs >= max_runs:
            break
        suppression = frontier.pop(0)
        key = frozenset(suppression)
        if key in visited:
            continue
        visited.add(key)
        result = run_scenario(
            scenario,
            seed=seed,
            forced_faults=dict(suppression) if suppression else None,
        )
        report.runs += 1
        outcomes.add(
            (result.winner, result.value, result.error, result.space_bytes)
        )
        if result.failed:
            report.failure = result
            break
        fired = [
            (fault.point, fault.key, fault.call)
            for fault in result.schedule.faults
            if fault.rule is not None
            and (fault.point, fault.key, fault.call) not in suppression
        ]
        for coordinate in fired[:max_draws]:
            child = dict(suppression)
            child[coordinate] = None
            if frozenset(child) not in visited:
                frontier.append(child)
    report.exhausted = drained and report.failure is None
    report.distinct_outcomes = len(outcomes)
    return report
