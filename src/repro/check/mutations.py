"""Test-only mutations: deliberately re-introduced, historically real bugs.

A model checker that has never caught anything proves nothing.  Each
entry here re-arms one bug this repository actually shipped and fixed,
behind a flag no production configuration sets; the mutation test suite
asserts the explorer finds a failing schedule within a bounded budget.

Current roster:

- ``adopt-replace-dirty`` -- the PR 3 :meth:`PageTable.adopt` bug: the
  commit swap *replaced* the parent table's dirty set with the child's
  instead of unioning, so a nested block's commit laundered the outer
  arm's earlier writes out of its shipback set.  Byte-invisible
  in-process; detected by the sim backend's dirty-coverage invariant.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.check.schedule import CheckError

MUTATIONS = ("adopt-replace-dirty",)


@contextmanager
def mutation(name: str) -> Iterator[None]:
    """Arm one known mutation for the duration of the ``with`` block."""
    if name not in MUTATIONS:
        raise CheckError(
            f"unknown mutation {name!r}; have: {', '.join(MUTATIONS)}"
        )
    from repro.pages import table as _table

    _table._TEST_MUTATIONS.add(name)
    try:
        yield
    finally:
        _table._TEST_MUTATIONS.discard(name)
